//! Validate the fluid-model optimization against request-level reality:
//! replay Poisson arrivals through the optimized solution and through
//! reactive LRU caching, then compare empirical loads with the model's
//! predictions.
//!
//! Run with: `cargo run --release --example packet_simulation`

use jcr::core::prelude::*;
use jcr::core::report;
use jcr::sim::policy::{ReactivePolicy, Replacement, StaticPolicy};
use jcr::sim::Simulator;
use jcr::topo::{Topology, TopologyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::generate(TopologyKind::Abovenet, 5)?;
    let inst = InstanceBuilder::new(topo)
        .items(24)
        .cache_capacity(5.0)
        .zipf_demand(0.9, 40_000.0, 11)
        .link_capacity_fraction(0.015)
        .build()?;

    // Optimize once (the fluid model)...
    let solution = Alternating::new().solve(&inst)?.solution;
    println!("{}", report::solution_report(&inst, &solution));

    // ...then replay three hours of Poisson arrivals against it.
    let simulator = Simulator {
        horizon: 3.0,
        seed: 2,
        ..Simulator::default()
    };
    let optimized = simulator.run(&inst, &mut StaticPolicy::new(&solution));
    let lru = simulator.run(&inst, &mut ReactivePolicy::new(&inst, Replacement::Lru));
    let lfu = simulator.run(&inst, &mut ReactivePolicy::new(&inst, Replacement::Lfu));

    println!("fluid-model cost/hour : {:.1}", solution.cost(&inst));
    println!(
        "{:<22}{:>14}{:>12}{:>10}{:>12}",
        "policy", "cost/hour", "congestion", "hit rate", "#requests"
    );
    for (name, r) in [
        ("optimized (static)", &optimized),
        ("reactive LRU", &lru),
        ("reactive LFU", &lfu),
    ] {
        println!(
            "{:<22}{:>14.1}{:>12.2}{:>10.3}{:>12}",
            name,
            r.cost_rate(),
            r.congestion(&inst),
            r.local_hit_ratio,
            r.requests_served
        );
    }
    println!("\nthe optimized policy's empirical cost matches the fluid model, within");
    println!("Poisson noise; reactive caching trades planned capacity use for churn.");
    Ok(())
}
