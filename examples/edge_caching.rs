//! Edge caching under tight link capacities (the paper's general case,
//! §4.3 / Fig. 7): alternating optimization of placement and routing
//! versus the shortest-path baselines.
//!
//! Run with: `cargo run --release --example edge_caching`

use jcr::core::prelude::*;
use jcr::topo::{Topology, TopologyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tight links: κ = 2 % of the total request rate, with the paper's
    // origin-fallback capacity augmentation keeping the instance feasible.
    let topo = Topology::generate(TopologyKind::Abovenet, 3)?;
    let inst = InstanceBuilder::new(topo)
        .items(30)
        .cache_capacity(6.0)
        .zipf_demand(0.9, 5_000.0, 11)
        .link_capacity_fraction(0.02)
        .build()?;

    println!(
        "{} requests, {} items, IC-IR (integral caching & routing)\n",
        inst.requests.len(),
        inst.num_items()
    );

    // Our alternating optimization (§4.3.3).
    let result = Alternating::new().solve(&inst)?;
    println!("alternating optimization:");
    println!("  converged after {} iterations", result.iterations);
    for (t, (congestion, cost)) in result.history.iter().enumerate() {
        println!("  iter {t}: cost {cost:.1}, congestion {congestion:.3}");
    }
    let alt = &result.solution;

    // Baselines of [3] and [38].
    let sp = ShortestPathPlacement.solve(&inst)?;
    let sp_rnr = IoannidisYeh::sp_rnr().solve(&inst)?;
    let ksp_rnr = IoannidisYeh::ksp_rnr(10).solve(&inst)?;

    println!(
        "\n{:<22}{:>14}{:>14}",
        "algorithm", "routing cost", "congestion"
    );
    for (name, sol) in [
        ("alternating (ours)", alt),
        ("SP [38]", &sp),
        ("SP + RNR [3]", &sp_rnr),
        ("k-SP + RNR [3]", &ksp_rnr),
    ] {
        println!(
            "{:<22}{:>14.1}{:>14.2}",
            name,
            sol.cost(&inst),
            sol.congestion(&inst)
        );
    }
    println!("\ncongestion > 1 means some link carries more than its capacity;");
    println!("the baselines chase cost along origin-anchored paths and overload them.");
    Ok(())
}
