//! Quickstart: jointly optimize caching and routing on an ISP-like
//! topology and compare against serving everything from the origin.
//!
//! Run with: `cargo run --release --example quickstart`

use jcr::core::prelude::*;
use jcr::core::rnr;
use jcr::topo::{Topology, TopologyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An Abovenet-like ISP topology: 23 nodes, 31 links, a degree-1
    // origin gateway, and 6 low-degree edge nodes hosting caches.
    let topo = Topology::generate(TopologyKind::Abovenet, 7)?;
    println!(
        "topology: {} nodes, {} directed links, origin {}, {} edge nodes",
        topo.graph.node_count(),
        topo.graph.edge_count(),
        topo.origin,
        topo.edge_nodes.len()
    );

    // A catalog of 20 equal-sized items, Zipf(0.8) demand, caches of 4
    // items per edge node, uncapacitated links (§4.1's special case).
    let inst = InstanceBuilder::new(topo)
        .items(20)
        .cache_capacity(4.0)
        .zipf_demand(0.8, 1_000.0, 42)
        .build()?;

    // Baseline: no caching, every request served by the origin.
    let origin_only =
        rnr::rnr_cost(&inst, &Placement::empty(&inst)).expect("origin reaches all requesters");

    // Algorithm 1: (1 − 1/e)-approximate joint caching + routing.
    let solution = Algorithm1::new().solve(&inst)?;
    let cost = solution.cost(&inst);

    println!("origin-only routing cost : {origin_only:.1}");
    println!("Algorithm 1 routing cost : {cost:.1}");
    println!(
        "saving                   : {:.1}%",
        100.0 * (1.0 - cost / origin_only)
    );
    println!("\nplacement (edge node -> items):");
    for v in inst.cache_nodes() {
        let items: Vec<usize> = solution.placement.items_at(v).collect();
        println!("  {v} -> {items:?}");
    }
    assert!(solution.placement.is_feasible(&inst));
    assert!(solution.routing.serves_all(&inst));
    Ok(())
}
