//! Hourly re-optimization on *predicted* demand (the paper's online
//! protocol, §6): a Gaussian-process regressor forecasts the next hour's
//! request rates from a synthetic YouTube-like trace; caching/routing
//! decisions made on the forecast are then evaluated against the true
//! demand.
//!
//! Run with: `cargo run --release --example demand_prediction`

use jcr::core::prelude::*;
use jcr::topo::{Topology, TopologyKind};
use jcr::trace::gpr;
use jcr::trace::synth::{random_edge_shares, ViewTrace};
use jcr::trace::videos::top_videos;

use jcr_ctx::rng::SeedableRng;
use jcr_ctx::rng::StdRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vids = top_videos(6);
    let hours = 6;
    let trace = ViewTrace::generate(vids, 9);
    let topo = Topology::generate(TopologyKind::Abovenet, 9)?;
    let n_edges = topo.edge_nodes.len();
    let mut rng = StdRng::seed_from_u64(17);
    let shares = random_edge_shares(vids.len(), n_edges, &mut rng);

    println!("hour  decided-on    true cost  predicted-decision cost  regret");
    for h in 0..hours {
        // Forecast each video's views for hour h from its history.
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for vi in 0..vids.len() {
            let history = trace.history_until(vi, h);
            let window = &history[history.len().saturating_sub(168)..];
            let times: Vec<f64> = (0..window.len()).map(|t| t as f64).collect();
            let model = gpr::Gpr::fit_grid(&times, window)?;
            pred.push(model.predict(window.len() as f64).max(0.0));
            truth.push(trace.eval_views(vi, h));
        }
        // Demand matrices (floored so both instances share a request set).
        let expand = |views: &[f64]| -> Vec<Vec<f64>> {
            views
                .iter()
                .enumerate()
                .map(|(vi, &v)| {
                    (0..n_edges)
                        .map(|k| (v * shares[vi][k]).max(1e-6))
                        .collect()
                })
                .collect()
        };
        let build = |rates: Vec<Vec<f64>>| {
            InstanceBuilder::new(topo.clone())
                .items(vids.len())
                .cache_capacity(2.0)
                .demand_matrix(rates)
                .link_capacity_fraction(0.02)
                .build()
        };
        let inst_true = build(expand(&truth))?;
        let inst_pred = build(expand(&pred))?;
        let true_flat: Vec<f64> = expand(&truth).into_iter().flatten().collect();

        // Oracle decision (knows the truth) vs predicted decision.
        let oracle = Alternating::new().solve(&inst_true)?.solution;
        let predicted = Alternating::new().solve(&inst_pred)?.solution;
        let oracle_cost = oracle.cost(&inst_true);
        let (pred_cost, _) = predicted.evaluate_under(&inst_pred, &true_flat);
        println!(
            "{h:>4}  {:>10}  {:>11.0}  {:>23.0}  {:>5.1}%",
            "truth/GPR",
            oracle_cost,
            pred_cost,
            100.0 * (pred_cost / oracle_cost - 1.0)
        );
    }
    println!("\nregret = extra cost from optimizing against the forecast instead of the truth");
    Ok(())
}
