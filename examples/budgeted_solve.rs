//! Solving under a `SolverContext`: wall-clock/iteration budgets with a
//! feasible incumbent on interruption, and the instrumentation counters.
//!
//! ```text
//! cargo run --release --example budgeted_solve
//! ```

use std::time::Duration;

use jcr::core::prelude::*;
use jcr::core::report;
use jcr::ctx::{Budget, Phase, SolverContext};
use jcr::topo::{Topology, TopologyKind};

fn main() {
    let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 1).unwrap())
        .items(10)
        .cache_capacity(3.0)
        .zipf_demand(0.8, 1_000.0, 1)
        .link_capacity_fraction(0.05)
        .build()
        .unwrap();

    // Unbudgeted solve, instrumented: the context records what the solver did.
    let ctx = SolverContext::new();
    let sol = Alternating::new()
        .solve_with_context(&inst, &ctx)
        .expect("feasible instance");
    println!(
        "{}",
        report::solution_report_with_stats(&inst, &sol.solution, &ctx.stats())
    );

    // Interrupted solve: one alternating iteration only. The error carries
    // the best feasible iterate found before the budget tripped.
    let capped =
        SolverContext::with_budget(Budget::unlimited().with_phase_cap(Phase::Alternating, 1));
    match Alternating::new().solve_with_context(&inst, &capped) {
        Err(JcrError::BudgetExceeded {
            phase,
            best_so_far: Some(best),
        }) => {
            println!(
                "\nbudget tripped in phase `{phase}`; incumbent cost {:.3}, congestion {:.3}",
                best.cost(&inst),
                best.congestion(&inst)
            );
        }
        other => println!(
            "\nconverged within the cap: {:?}",
            other.map(|s| s.iterations)
        ),
    }

    // A zero deadline fails fast instead of hanging.
    let zero = SolverContext::with_budget(Budget::deadline(Duration::ZERO));
    let err = Algorithm1::new()
        .solve_with_context(&inst, &zero)
        .unwrap_err();
    println!("zero deadline: {err}");
}
