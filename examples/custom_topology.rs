//! Bring your own network: load a topology from a plain edge list (e.g.
//! converted from Rocketfuel / Topology Zoo data), optimize it, and
//! export a Graphviz rendering of the roles.
//!
//! Run with: `cargo run --release --example custom_topology`

use jcr::core::prelude::*;
use jcr::topo::Topology;

/// A small metro network in the loader's format:
/// `origin`/`edge` declarations plus `link u v cost_uv cost_vu [capacity]`.
const EDGE_LIST: &str = "
# metro-area network: node 0 is the origin gateway
origin 0
edge 4
edge 5
edge 6
link 0 1 120 140        # gateway uplink (origin costs in [100, 200])
link 1 2 8 7
link 1 3 12 11
link 2 4 5 6
link 2 5 9 8
link 3 5 4 4
link 3 6 10 12
link 4 5 6 6
link 5 6 7 9
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::from_edge_list(EDGE_LIST)?;
    println!(
        "loaded {} nodes / {} directed links; origin {}, edges {:?}",
        topo.graph.node_count(),
        topo.graph.edge_count(),
        topo.origin,
        topo.edge_nodes
    );

    // Export a Graphviz view (render with `dot -Tsvg`).
    let dot = topo.to_dot();
    println!("\n--- topology.dot ---\n{dot}--- end ---\n");

    // Optimize caching and routing on it.
    let inst = InstanceBuilder::new(topo)
        .items(8)
        .cache_capacity(2.0)
        .zipf_demand(1.0, 500.0, 3)
        .link_capacity_fraction(0.1)
        .build()?;
    let result = Alternating::new().solve(&inst)?;
    println!(
        "alternating optimization: cost {:.1}, congestion {:.2} ({} iterations)",
        result.solution.cost(&inst),
        result.solution.congestion(&inst),
        result.iterations
    );
    for v in inst.cache_nodes() {
        let items: Vec<usize> = result.solution.placement.items_at(v).collect();
        println!("  cache {v}: {items:?}");
    }
    Ok(())
}
