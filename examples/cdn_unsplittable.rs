//! CDN-style replica selection (the paper's binary-cache-capacity case,
//! §4.2 / Fig. 6): a geographically placed full replica plus the origin,
//! with unsplittable (single-path) routing per request.
//!
//! Shows the bicriteria trade-off of Algorithm 2: larger K means finer
//! demand rounding and hence less congestion, at no cost increase —
//! K = 2 is the prior state of the art \[33\]; route-to-nearest-replica
//! ignores capacities entirely and congests badly.
//!
//! Run with: `cargo run --release --example cdn_unsplittable`

use jcr::core::alg2;
use jcr::core::prelude::*;
use jcr::topo::{Topology, TopologyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::generate(TopologyKind::Tinet, 5)?;
    let inst = InstanceBuilder::new(topo)
        .items(40)
        .cache_capacity(40.0) // irrelevant: the replica set is fixed below
        .zipf_demand(0.7, 20_000.0, 2)
        .link_capacity_fraction(0.01)
        .build()?;

    // One edge node hosts a full catalog replica (plus the origin).
    let replica = inst.cache_nodes()[0];
    println!(
        "full replica at {replica}, origin at {}\n",
        inst.origin.unwrap()
    );

    println!(
        "{:<18}{:>14}{:>18}{:>14}",
        "algorithm", "routing cost", "vs splittable LB", "congestion"
    );
    for k in [1u32, 2, 8, 64, 1000] {
        let sol = alg2::solve_binary_caches(&inst, &[replica], k)?;
        let name = if k == 2 {
            "Alg2 K=2 ([33])".to_string()
        } else {
            format!("Alg2 K={k}")
        };
        println!(
            "{:<18}{:>14.1}{:>17.3}x{:>14.2}",
            name,
            sol.solution.cost(&inst),
            sol.solution.cost(&inst) / sol.splittable_cost,
            sol.solution.congestion(&inst)
        );
    }
    let rnr = alg2::rnr_binary(&inst, &[replica])?;
    println!(
        "{:<18}{:>14.1}{:>18}{:>14.2}",
        "RNR [3]",
        rnr.cost(&inst),
        "-",
        rnr.congestion(&inst)
    );
    println!("\nTheorem 4.7: Alg2's cost never exceeds the splittable optimum, and its");
    println!("link overload shrinks as K grows — RNR is cheapest but ignores capacity.");
    Ok(())
}
