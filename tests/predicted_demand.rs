//! The paper's online protocol (§6): decisions made on GPR-predicted
//! demand, evaluated against the true demand — the advantage over the
//! baselines must survive prediction errors (observation (ii) of §1.2).

use jcr::core::prelude::*;
use jcr_bench::{build_instance, flatten_rates, Scenario};

#[test]
fn predicted_decisions_stay_close_to_true_decisions() {
    let mut sc = Scenario::chunk_default();
    sc.n_videos = 5;
    sc.hours = 2;
    sc.gpr_window = 72;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);

    for h in 0..sc.hours {
        let true_rates = demand.true_rates(h, n_edges);
        let pred_rates = demand.predicted_rates(h, n_edges);
        let inst_true = build_instance(&sc, &true_rates);
        let inst_pred = build_instance(&sc, &pred_rates);
        let flat_true: Vec<f64> = flatten_rates(&true_rates)
            .into_iter()
            .map(|r| r.max(1e-6))
            .collect();

        let oracle = Alternating::new().solve(&inst_true).unwrap().solution;
        let predicted = Alternating::new().solve(&inst_pred).unwrap().solution;
        let oracle_cost = oracle.cost(&inst_true);
        let (pred_cost, pred_cong) = predicted.evaluate_under(&inst_pred, &flat_true);

        // The forecast is good (diurnal signal), so the regret is bounded.
        assert!(
            pred_cost <= 2.0 * oracle_cost + 1e-6,
            "hour {h}: predicted-decision cost {pred_cost} vs oracle {oracle_cost}"
        );
        assert!(
            pred_cong < 5.0,
            "hour {h}: congestion exploded: {pred_cong}"
        );
    }
}

#[test]
fn advantage_over_baselines_survives_prediction() {
    let mut sc = Scenario::chunk_default();
    sc.n_videos = 5;
    sc.hours = 1;
    sc.gpr_window = 72;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let true_rates = demand.true_rates(0, n_edges);
    let pred_rates = demand.predicted_rates(0, n_edges);
    let inst_pred = build_instance(&sc, &pred_rates);
    let flat_true: Vec<f64> = flatten_rates(&true_rates)
        .into_iter()
        .map(|r| r.max(1e-6))
        .collect();

    let ours = Alternating::new().solve(&inst_pred).unwrap().solution;
    let sp = ShortestPathPlacement.solve(&inst_pred).unwrap();
    let (_, our_congestion) = ours.evaluate_under(&inst_pred, &flat_true);
    let (_, sp_congestion) = sp.evaluate_under(&inst_pred, &flat_true);
    // Observation (i)/(ii) of §1.2: lower congestion than the baselines,
    // with or without perfect knowledge.
    assert!(
        our_congestion < sp_congestion,
        "ours {our_congestion} vs SP {sp_congestion}"
    );
}

#[test]
fn perturbed_demand_keeps_solutions_valid() {
    use jcr_ctx::rng::SeedableRng;
    let mut sc = Scenario::chunk_default();
    sc.n_videos = 4;
    sc.hours = 1;
    sc.gpr_window = 48;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let true_rates = demand.true_rates(0, n_edges);
    let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(3);
    let sigma = jcr_bench::mean(&flatten_rates(&true_rates));
    let noisy: Vec<Vec<f64>> = true_rates
        .iter()
        .map(|row| jcr::trace::synth::perturb_demand(row, sigma, &mut rng))
        .collect();
    let inst = build_instance(&sc, &noisy);
    let sol = Alternating::new().solve(&inst).unwrap().solution;
    let flat_true: Vec<f64> = flatten_rates(&true_rates)
        .into_iter()
        .map(|r| r.max(1e-6))
        .collect();
    let (cost, congestion) = sol.evaluate_under(&inst, &flat_true);
    assert!(cost.is_finite() && cost > 0.0);
    assert!(congestion.is_finite());
}
