//! End-to-end pipeline invariants on the paper's default edge-caching
//! scenario: every algorithm produces a feasible, fully-serving solution,
//! and the theoretically-required cost orderings hold.

use jcr::core::prelude::*;
use jcr::core::{alg2, fcfr, hetero, rnr};
use jcr::topo::{Topology, TopologyKind};

fn chunk_instance(seed: u64, capacitated: bool) -> Instance {
    let b = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
        .items(12)
        .cache_capacity(3.0)
        .zipf_demand(0.8, 2_000.0, seed);
    if capacitated {
        b.link_capacity_fraction(0.02)
    } else {
        b
    }
    .build()
    .unwrap()
}

#[test]
fn all_algorithms_serve_all_requests_feasibly() {
    let uncap = chunk_instance(1, false);
    let cap = chunk_instance(1, true);

    let solutions: Vec<(&str, &Instance, Solution)> = vec![
        ("Alg1", &uncap, Algorithm1::new().solve(&uncap).unwrap()),
        (
            "alternating",
            &cap,
            Alternating::new().solve(&cap).unwrap().solution,
        ),
        ("SP", &cap, ShortestPathPlacement.solve(&cap).unwrap()),
        ("SP+RNR", &cap, IoannidisYeh::sp_rnr().solve(&cap).unwrap()),
        (
            "k-SP+RNR",
            &cap,
            IoannidisYeh::ksp_rnr(5).solve(&cap).unwrap(),
        ),
    ];
    for (name, inst, sol) in &solutions {
        assert!(
            sol.placement.is_feasible(inst),
            "{name}: infeasible placement"
        );
        assert!(
            sol.routing.serves_all(inst),
            "{name}: under-served requests"
        );
        assert!(
            sol.routing.sources_valid(inst, &sol.placement),
            "{name}: path from a non-storing source"
        );
        assert!(
            sol.routing.is_integral(),
            "{name}: IC-IR requires one path per request"
        );
    }
}

#[test]
fn cost_ordering_fcfr_lower_bounds_everything() {
    // FC-FR is the LP relaxation of every other case, so its optimum
    // lower-bounds any integral solution's cost.
    let inst = InstanceBuilder::new(Topology::generate_custom(10, 13, 3, 5).unwrap())
        .items(5)
        .cache_capacity(2.0)
        .zipf_demand(0.9, 100.0, 5)
        .link_capacity_fraction(0.1)
        .build()
        .unwrap();
    let lb = fcfr::solve_fcfr(&inst).unwrap().cost;
    let alt = Alternating::new()
        .solve(&inst)
        .unwrap()
        .solution
        .cost(&inst);
    let sp = ShortestPathPlacement.solve(&inst).unwrap().cost(&inst);
    assert!(lb <= alt + 1e-6, "FC-FR {lb} > alternating {alt}");
    assert!(lb <= sp + 1e-6, "FC-FR {lb} > SP {sp}");
}

#[test]
fn rnr_cost_lower_bounds_any_feasible_routing_of_same_placement() {
    let inst = chunk_instance(3, true);
    let result = Alternating::new().solve(&inst).unwrap().solution;
    let rnr_routing = rnr::route_to_nearest_replica(&inst, &result.placement).unwrap();
    // RNR ignores capacities, so it is the cheapest routing of the
    // placement; the capacity-respecting alternating routing costs ≥.
    assert!(rnr_routing.cost(&inst) <= result.cost(&inst) + 1e-6);
}

#[test]
fn binary_cache_case_cost_between_bounds() {
    let inst = chunk_instance(4, true);
    let storer = inst.cache_nodes()[0];
    let sol = alg2::solve_binary_caches(&inst, &[storer], 16).unwrap();
    // Theorem 4.7(i): within the splittable optimum.
    assert!(sol.solution.cost(&inst) <= sol.splittable_cost + 1e-6);
    // And at least the unconstrained RNR cost (the absolute routing floor).
    let rnr_sol = alg2::rnr_binary(&inst, &[storer]).unwrap();
    assert!(sol.solution.cost(&inst) + 1e-6 >= rnr_sol.cost(&inst));
}

#[test]
fn greedy_hetero_vs_lp_on_equalized_sizes() {
    // With all sizes equal, the heterogeneous greedy and Algorithm 1 chase
    // the same objective; greedy must reach at least half of Alg1's saving.
    let inst = chunk_instance(6, false);
    let alg1 = Algorithm1::new().solve(&inst).unwrap();
    let greedy_placement = hetero::greedy_placement_rnr(&inst);
    let f1 = jcr::core::alg1::f_rnr(&inst, &alg1.placement);
    let fg = jcr::core::alg1::f_rnr(&inst, &greedy_placement);
    assert!(fg >= 0.5 * f1 - 1e-6, "greedy {fg} below half of Alg1 {f1}");
}

#[test]
fn file_level_pipeline_stays_feasible_where_baselines_overflow() {
    let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 8).unwrap())
        .item_sizes(vec![4.5, 6.1, 7.5, 3.9, 8.5, 4.3, 1.6, 7.1, 1.6, 3.1])
        .cache_capacity(9.6)
        .zipf_demand(0.8, 2_000.0, 8)
        .link_capacity_fraction(0.02)
        .build()
        .unwrap();
    let ours = Alternating::new().solve(&inst).unwrap().solution;
    assert!(ours.placement.is_feasible(&inst));
    assert!(ours.placement.max_occupancy_ratio(&inst) <= 1.0 + 1e-9);
    // The candidate-path baseline's size-oblivious rounding may overflow;
    // its occupancy is at least well-defined and reported.
    let baseline = IoannidisYeh::ksp_rnr(10).solve(&inst).unwrap();
    let _ = baseline.placement.max_occupancy_ratio(&inst);
    assert!(baseline.routing.serves_all(&inst));
}
