//! The FemtoCaching special case of §4.1.4: pure requesters one hop from
//! pure caches (a bipartite helper network) plus a distant origin server.
//! Algorithm 1 must match the structure-specific guarantees: the
//! `(1 − 1/e)` bound of \[32\] (verified against brute force) and the
//! route-to-nearest-helper behaviour.

use jcr::core::alg1::{f_rnr, Algorithm1};
use jcr::core::instance::{Instance, Request};
use jcr::core::placement::Placement;
use jcr::graph::DiGraph;
use jcr::graph::NodeId;

/// Builds the bipartite helper network: `n_helpers` caches, `n_users`
/// requesters, every helper→user link of cost `w1`, origin→user of cost
/// `w0 > w1`.
fn femto_instance(
    n_helpers: usize,
    n_users: usize,
    n_items: usize,
    zeta: f64,
    w1: f64,
    w0: f64,
    coverage: impl Fn(usize, usize) -> bool,
) -> (Instance, Vec<NodeId>) {
    let mut g = DiGraph::new();
    let origin = g.add_node();
    let helpers: Vec<_> = (0..n_helpers).map(|_| g.add_node()).collect();
    let users: Vec<_> = (0..n_users).map(|_| g.add_node()).collect();
    let mut cost = Vec::new();
    for (hi, &h) in helpers.iter().enumerate() {
        for (ui, &u) in users.iter().enumerate() {
            if coverage(hi, ui) {
                g.add_edge(h, u);
                cost.push(w1);
            }
        }
    }
    for &u in &users {
        g.add_edge(origin, u);
        cost.push(w0);
    }
    let cap = vec![f64::INFINITY; g.edge_count()];
    let mut cache_cap = vec![0.0; g.node_count()];
    for &h in &helpers {
        cache_cap[h.index()] = zeta;
    }
    // Every user requests every item, with rank-decaying rates.
    let requests: Vec<Request> = users
        .iter()
        .enumerate()
        .flat_map(|(ui, &u)| {
            (0..n_items).map(move |i| Request {
                item: i,
                node: u,
                rate: 10.0 / (1.0 + i as f64) + ui as f64 * 0.1,
            })
        })
        .collect();
    let inst = Instance::new(
        g,
        cost,
        cap,
        cache_cap,
        vec![1.0; n_items],
        requests,
        Some(origin),
    )
    .unwrap();
    (inst, helpers)
}

fn brute_force_opt(inst: &Instance) -> f64 {
    let cache_nodes = inst.cache_nodes();
    let n_items = inst.num_items();
    let slots: Vec<(usize, usize)> = cache_nodes
        .iter()
        .enumerate()
        .flat_map(|(vi, _)| (0..n_items).map(move |i| (vi, i)))
        .collect();
    assert!(slots.len() <= 16, "brute force limit");
    let mut best = f64::NEG_INFINITY;
    'mask: for mask in 0u32..(1 << slots.len()) {
        let mut p = Placement::empty(inst);
        let mut used = vec![0.0; cache_nodes.len()];
        for (b, &(vi, i)) in slots.iter().enumerate() {
            if mask & (1 << b) != 0 {
                used[vi] += 1.0;
                if used[vi] > inst.cache_cap[cache_nodes[vi].index()] + 1e-9 {
                    continue 'mask;
                }
                p.set(cache_nodes[vi], i, true);
            }
        }
        best = best.max(f_rnr(inst, &p));
    }
    best
}

#[test]
fn achieves_femtocaching_guarantee() {
    // 2 helpers × 4 items, overlapping coverage — the regime [32] studied.
    let (inst, _) = femto_instance(2, 3, 4, 2.0, 1.0, 30.0, |hi, ui| ui == hi || ui == hi + 1);
    let sol = Algorithm1::new().solve(&inst).unwrap();
    let achieved = f_rnr(&inst, &sol.placement);
    let opt = brute_force_opt(&inst);
    let bound = (1.0 - 1.0 / std::f64::consts::E) * opt;
    assert!(
        achieved >= bound - 1e-6,
        "{achieved} < (1 − 1/e)·OPT = {bound}"
    );
}

#[test]
fn uncovered_users_fall_back_to_origin() {
    // User 2 is covered by no helper: its requests must come from the
    // origin at cost w0.
    let (inst, _) = femto_instance(1, 3, 2, 1.0, 1.0, 25.0, |hi, ui| hi == ui);
    let sol = Algorithm1::new().solve(&inst).unwrap();
    let origin = inst.origin.unwrap();
    for (req, flows) in inst.requests.iter().zip(&sol.routing.per_request) {
        if req.node.index() == inst.graph.node_count() - 1 {
            assert_eq!(flows[0].path.source(&inst.graph), Some(origin));
            assert!((flows[0].path.cost(&inst.link_cost) - 25.0).abs() < 1e-9);
        }
    }
}

#[test]
fn covered_users_prefer_helpers() {
    // Full coverage with plenty of capacity: every request should be
    // served by a helper at cost w1, never the origin.
    let (inst, _) = femto_instance(2, 2, 2, 2.0, 1.5, 40.0, |_, _| true);
    let sol = Algorithm1::new().solve(&inst).unwrap();
    for flows in &sol.routing.per_request {
        assert!((flows[0].path.cost(&inst.link_cost) - 1.5).abs() < 1e-9);
    }
    assert!(sol.cost(&inst) < 40.0 * inst.total_rate());
}

#[test]
fn popular_items_replicated_when_helpers_do_not_overlap() {
    // Disjoint coverage: each helper serves its own user, so the most
    // popular items should be cached at *every* helper.
    let (inst, helpers) = femto_instance(3, 3, 5, 2.0, 1.0, 30.0, |hi, ui| hi == ui);
    let sol = Algorithm1::new().solve(&inst).unwrap();
    for &h in &helpers {
        assert!(
            sol.placement.has(h, 0),
            "the most popular item must be cached at {h}"
        );
    }
}
