//! Reproducibility guarantees: every stochastic component is seeded, so
//! identical seeds must give bit-identical experiment inputs and
//! identical solver outputs.

use jcr::core::prelude::*;
use jcr::core::serial;
use jcr_bench::{build_instance, Scenario};

fn scenario() -> Scenario {
    let mut sc = Scenario::chunk_default();
    sc.n_videos = 5;
    sc.hours = 1;
    sc.gpr_window = 48;
    sc
}

#[test]
fn scenario_instances_are_bit_identical_per_seed() {
    let sc = scenario();
    let n_edges = sc.topology().edge_nodes.len();
    let make = || {
        let demand = sc.demand(n_edges);
        let rates = demand.true_rates(0, n_edges);
        serial::to_text(&build_instance(&sc, &rates))
    };
    assert_eq!(make(), make(), "same seed must give identical instances");

    let mut other = sc.clone();
    other.share_seed ^= 1;
    let demand = other.demand(n_edges);
    let rates = demand.true_rates(0, n_edges);
    let different = serial::to_text(&build_instance(&other, &rates));
    assert_ne!(make(), different, "different share seed must change demand");
}

#[test]
fn solvers_are_deterministic_given_seeds() {
    let sc = scenario();
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let rates = demand.true_rates(0, n_edges);
    let inst = build_instance(&sc, &rates);

    let run = || {
        Alternating {
            seed: 5,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap()
        .solution
        .cost(&inst)
    };
    assert_eq!(run().to_bits(), run().to_bits());

    let alg1 = || Algorithm1::new().solve(&inst).unwrap().cost(&inst);
    assert_eq!(alg1().to_bits(), alg1().to_bits());
}

#[test]
fn gpr_predictions_are_deterministic() {
    let sc = scenario();
    let n_edges = sc.topology().edge_nodes.len();
    let a = sc.demand(n_edges).predicted_rates(0, n_edges);
    let b = sc.demand(n_edges).predicted_rates(0, n_edges);
    assert_eq!(a, b);
}
