//! The three tractable cases of §2.4 / Fig. 1 on a common instance:
//! FC-FR (exact LP) lower-bounds IC-FR, which lower-bounds IC-IR *when the
//! placement is held fixed* (fractional routing relaxes integral routing).

use jcr::core::alternating::{Alternating, RoutingMethod};
use jcr::core::fcfr;
use jcr::core::prelude::*;
use jcr::topo::Topology;

fn small_instance(seed: u64) -> Instance {
    InstanceBuilder::new(Topology::generate_custom(10, 13, 3, seed).unwrap())
        .items(5)
        .cache_capacity(2.0)
        .zipf_demand(0.9, 200.0, seed)
        .link_capacity_fraction(0.05)
        .build()
        .unwrap()
}

#[test]
fn fcfr_lower_bounds_capacity_feasible_solutions() {
    for seed in 0..3 {
        let inst = small_instance(seed);
        let fcfr_cost = fcfr::solve_fcfr(&inst).unwrap().cost;
        // IC-FR routes fractionally (MMSFP), so it always respects
        // capacities and the LP bound applies unconditionally.
        let icfr = Alternating {
            integral_routing: false,
            seed,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap();
        assert!(icfr.solution.congestion(&inst) <= 1.0 + 1e-6, "seed {seed}");
        assert!(
            fcfr_cost <= icfr.solution.cost(&inst) + 1e-6,
            "seed {seed}: FC-FR {} > IC-FR {}",
            fcfr_cost,
            icfr.solution.cost(&inst)
        );
        // IC-IR's randomized rounding may overload links; the bound
        // applies only when the rounded routing stays within capacity —
        // an undercut *requires* a capacity violation.
        let icir = Alternating {
            seed,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap();
        let cost = icir.solution.cost(&inst);
        if cost + 1e-6 < fcfr_cost {
            assert!(
                icir.solution.congestion(&inst) > 1.0,
                "seed {seed}: IC-IR {cost} beats the LP bound {fcfr_cost} while feasible"
            );
        }
    }
}

#[test]
fn fractional_routing_of_fixed_placement_never_costs_more() {
    // Hold the placement fixed: the routing subproblem relaxation chain
    // MMSFP ≤ randomized-rounded MMUFP ≤ greedy MMUFP is a true ordering
    // for the first inequality and a typical one for the second.
    for seed in 0..3 {
        let inst = small_instance(seed);
        let placement = Alternating {
            seed,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap()
        .solution
        .placement;

        let fractional = Alternating {
            integral_routing: false,
            seed,
            ..Alternating::default()
        }
        .route_given_placement(&inst, &placement)
        .unwrap();
        let rounded = Alternating {
            seed,
            ..Alternating::default()
        }
        .route_given_placement(&inst, &placement)
        .unwrap();
        // The fractional optimum lower-bounds every *capacity-feasible*
        // integral routing; a cheaper rounded routing must be overloaded.
        if rounded.cost(&inst) + 1e-6 < fractional.cost(&inst) {
            assert!(
                rounded.congestion(&inst) > 1.0,
                "seed {seed}: rounded {} beats MMSFP {} while feasible",
                rounded.cost(&inst),
                fractional.cost(&inst)
            );
        }
        // Fractional routing always fits the capacities.
        assert!(fractional.congestion(&inst) <= 1.0 + 1e-6);
        assert!(fractional.serves_all(&inst));
        assert!(rounded.serves_all(&inst));
    }
}

#[test]
fn greedy_routing_serves_all_within_reasonable_cost() {
    for seed in 0..3 {
        let inst = small_instance(seed);
        let placement = Placement::empty(&inst);
        let lp_cfg = Alternating {
            seed,
            ..Alternating::default()
        };
        let greedy_cfg = Alternating {
            routing: RoutingMethod::GreedySequential,
            seed,
            ..Alternating::default()
        };
        let lp_routing = lp_cfg.route_given_placement(&inst, &placement).unwrap();
        let greedy_routing = greedy_cfg.route_given_placement(&inst, &placement).unwrap();
        assert!(greedy_routing.serves_all(&inst));
        assert!(greedy_routing.is_integral());
        // Greedy is a heuristic; it should stay within a small factor of
        // the LP-based routing on these benign instances.
        assert!(
            greedy_routing.cost(&inst) <= 3.0 * lp_routing.cost(&inst) + 1e-6,
            "seed {seed}"
        );
    }
}
