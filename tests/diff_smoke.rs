//! Tier-1 smoke tests for the differential profiler: a snapshot diffed
//! against itself reports zero deltas, a deliberately slowed span is
//! ranked #1 by the attribution report, and a workers=1 vs workers=8
//! bench-style run attributes ≥90% of the wall-clock delta to named
//! spans — the acceptance contract of `experiments diff`.

use jcr_bench::diff::{self, DiffOpts};
use jcr_ctx::obs::wire::WireSnapshot;
use jcr_ctx::obs::Unit;
use jcr_ctx::SolverContext;

/// A small instrumented workload: a prep span, a `hot` span that spins
/// for `spin_ms`, and a counter/histogram pair.
fn fixture(spin_ms: u64, workers: usize) -> WireSnapshot {
    let ctx = SolverContext::new().with_workers(workers);
    {
        let _p = ctx.span("prep");
        ctx.obs().add_counter("fixture.preps", 1);
    }
    {
        let _h = ctx.span("hot");
        let t0 = std::time::Instant::now();
        while t0.elapsed().as_millis() < u128::from(spin_ms) {
            std::hint::spin_loop();
        }
        ctx.obs().record("fixture.sizes", Unit::Count, spin_ms + 1);
    }
    let mut wire = WireSnapshot::from_snapshot(&ctx.obs_snapshot());
    wire.meta.insert("workers".into(), workers.to_string());
    wire
}

#[test]
fn self_diff_reports_zero_deltas_and_succeeds() {
    let dir = std::env::temp_dir().join("jcr_diff_smoke_self");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("OBS_SELF.json");
    std::fs::write(&path, fixture(0, 1).render()).unwrap();
    let path = path.to_str().unwrap();

    // The library contract behind `experiments diff a a`: exit 0.
    diff::run(path, path, &DiffOpts::default()).expect("self-diff exits 0");

    let snap = diff::load(path).unwrap();
    let report = diff::diff_snapshots(&snap, &snap, None).unwrap();
    assert!(report.is_zero(), "self-diff must report zero deltas");
    assert!(report.spans.is_empty());
    assert!(report.counters.is_empty());
    assert!(report.histograms.is_empty());
    assert_eq!(report.wall_delta_ns(), 0);
}

#[test]
fn deliberately_slowed_span_is_ranked_first() {
    let fast = fixture(0, 1);
    let slow = fixture(25, 1);
    let report = diff::diff_snapshots(&fast, &slow, None).unwrap();
    assert_eq!(
        report.spans[0].path,
        "hot",
        "the slowed span must top the attribution: {:?}",
        report.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
    assert!(report.wall_delta_ns() > 20_000_000, "25ms spin dominates");
    // Flat fixture: the signed self-deltas attribute the delta exactly.
    assert!(report.attributed_fraction() >= 0.9);
}

/// A bench-style parallel workload at a given width: fan a seeded batch
/// of chunks over the pool under a named span.
fn pool_run(workers: usize) -> WireSnapshot {
    let ctx = SolverContext::new().with_workers(workers);
    let items: Vec<u64> = (0..512).collect();
    {
        let _s = ctx.span("batch");
        let sums = jcr_ctx::par::par_map(&ctx, &items, |_wctx, _, &x| {
            // Enough arithmetic per item that the region has real wall
            // time to attribute at both widths.
            let mut acc = x;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        });
        ctx.obs().add_counter("batch.items", sums.len() as u64);
    }
    let mut wire = WireSnapshot::from_snapshot(&ctx.obs_snapshot());
    wire.meta.insert("workers".into(), workers.to_string());
    wire
}

#[test]
fn width_vs_width_diff_attributes_at_least_90_percent_of_wall_delta() {
    let w1 = pool_run(1);
    let w8 = pool_run(8);
    let report = diff::diff_snapshots(&w1, &w8, None).unwrap();
    // Every span in these snapshots is named, so the attribution rows
    // must cover the wall-clock delta: the attributed span movement is
    // at least 90% of the wall movement in magnitude. (Parallel regions
    // graft per-worker chunk time, so attribution can legitimately
    // exceed 100% of a small wall delta — under-attribution is the
    // failure mode being pinned.)
    let attributed = report.attributed_ns().unsigned_abs();
    let wall = report.wall_delta_ns().unsigned_abs();
    assert!(
        attributed as f64 >= 0.9 * wall as f64,
        "attributed {attributed} ns of a {wall} ns wall delta"
    );
    for span in &report.spans {
        assert!(!span.path.is_empty(), "attribution rows are named spans");
    }
}
