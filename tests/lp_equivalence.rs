//! LP-equivalence corpus: the committed reference objectives in
//! `tests/data/lp_equivalence.json` were recorded with the pre-refactor
//! *dense* basis-inverse simplex. The current solver (sparse LU with eta
//! updates and Devex pricing) must reproduce every outcome — the same
//! optimal/infeasible/unbounded classification, and objective values
//! equal to certificate tolerance — even though its pivot sequences are
//! completely different.
//!
//! The corpus spans the LP shapes the stack actually solves:
//!
//! * column-generation masters on the four paper topologies
//!   (Abovenet/Abvt/Tinet/Deltacom), tight-capacity multicommodity flow;
//! * the five adversarial instance families of `experiments adversary`
//!   (degenerate ties, zero-cost cycles, 1e±9 cost dynamic range,
//!   near-redundant capacities, hostile Zipf tails);
//! * placement-style maximization LPs (coverage `z ≤ Σ x` rows under
//!   knapsack capacity rows), the alternating step's LP shape;
//! * degenerate transportation grids and seeded random box LPs.
//!
//! CI runs this suite inside the `JCR_WORKERS={1,2,8}` determinism
//! matrix: every corpus value is bit-identical at any pool width (the
//! multicommodity solver's determinism contract), so the reference file
//! needs no per-width variants.
//!
//! Re-recording (only legitimate when the *reference semantics* change,
//! e.g. a new corpus entry — never to paper over a solver regression):
//!
//! ```text
//! JCR_RECORD_LP_EQUIVALENCE=1 cargo test --test lp_equivalence
//! ```

use jcr::ctx::rng::{Rng, SeedableRng, StdRng};
use jcr::ctx::SolverContext;
use jcr::flow::multicommodity::{min_cost_multicommodity_with_context, Commodity};
use jcr::flow::FlowError;
use jcr::graph::{DiGraph, NodeId};
use jcr::lp::{LpError, Model, Sense};
use jcr::topo::{Topology, TopologyKind};
use jcr_bench::adversary::{build_case, FAMILIES};
use jcr_bench::json::Json;

/// One corpus entry: a named LP instance and its recorded outcome.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    /// Solved to optimality with this objective value.
    Optimal(f64),
    /// No feasible point (solver-independent classification).
    Infeasible,
    /// Unbounded in the optimization direction.
    Unbounded,
    /// Any other typed error, keyed by a stable kind string.
    Error(String),
}

impl Outcome {
    fn to_json(&self) -> Json {
        match self {
            Outcome::Optimal(v) => Json::obj([
                ("outcome", Json::Str("optimal".into())),
                ("objective", Json::Num(*v)),
            ]),
            Outcome::Infeasible => Json::obj([("outcome", Json::Str("infeasible".into()))]),
            Outcome::Unbounded => Json::obj([("outcome", Json::Str("unbounded".into()))]),
            Outcome::Error(kind) => Json::obj([
                ("outcome", Json::Str("error".into())),
                ("kind", Json::Str(kind.clone())),
            ]),
        }
    }

    fn from_json(doc: &Json) -> Option<Outcome> {
        match doc.get("outcome")?.as_str()? {
            "optimal" => Some(Outcome::Optimal(doc.get("objective")?.as_f64()?)),
            "infeasible" => Some(Outcome::Infeasible),
            "unbounded" => Some(Outcome::Unbounded),
            "error" => Some(Outcome::Error(doc.get("kind")?.as_str()?.to_string())),
            _ => None,
        }
    }
}

fn lp_outcome(result: Result<jcr::lp::Solution, LpError>) -> Outcome {
    match result {
        Ok(sol) => Outcome::Optimal(sol.objective),
        Err(LpError::Infeasible) => Outcome::Infeasible,
        Err(LpError::Unbounded) => Outcome::Unbounded,
        Err(LpError::Numerical(_)) => Outcome::Error("numerical".into()),
        Err(LpError::NumericalBreakdown(_)) => Outcome::Error("breakdown".into()),
        Err(LpError::Budget(_)) => Outcome::Error("budget".into()),
    }
}

fn mcf_outcome(g: &DiGraph, cost: &[f64], cap: &[f64], commodities: &[Commodity]) -> Outcome {
    let ctx = SolverContext::new();
    match min_cost_multicommodity_with_context(g, cost, cap, commodities, &ctx) {
        Ok(sol) => Outcome::Optimal(sol.cost),
        Err(FlowError::Infeasible) => Outcome::Infeasible,
        Err(FlowError::Numerical(_)) => Outcome::Error("numerical".into()),
        Err(FlowError::NumericalBreakdown(_)) => Outcome::Error("breakdown".into()),
        Err(FlowError::Budget(_)) => Outcome::Error("budget".into()),
    }
}

/// Column-generation master on a paper topology: every edge node demands
/// flow from the origin under uniformly tight link capacities.
fn paper_topology_entry(kind: TopologyKind, seed: u64) -> (String, Outcome) {
    let topo = Topology::generate(kind, seed).expect("paper topology generates");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
    let commodities: Vec<Commodity> = topo
        .edge_nodes
        .iter()
        .map(|&dest| Commodity {
            source: topo.origin,
            dest,
            demand: rng.gen_range(0.5..2.0),
        })
        .collect();
    let total: f64 = commodities.iter().map(|c| c.demand).sum();
    // Ample capacity on the origin's gateway links (all demand must leave
    // the origin), tight capacity in the core so the master has to split
    // flow and re-price.
    let mut cap = vec![total / 3.0; topo.graph.edge_count()];
    for (e, _) in topo.graph.out_pairs(topo.origin) {
        cap[e.index()] = total;
    }
    let name = format!("paper/{:?}/seed{}", kind, seed);
    (
        name,
        mcf_outcome(&topo.graph, &topo.cost, &cap, &commodities),
    )
}

/// Multicommodity LP derived from one adversarial fuzzer instance:
/// per-node aggregate demand routed from the origin under the instance's
/// own hostile link costs and capacities.
fn adversary_entry(family: jcr_bench::adversary::Family, seed: u64) -> (String, Outcome) {
    let name = format!("adversary/{}/seed{}", family.name(), seed);
    let inst = match build_case(family, seed) {
        Ok(inst) => inst,
        Err(_) => return (name, Outcome::Error("build".into())),
    };
    let origin = inst.origin.expect("fuzzer instances have an origin");
    // Aggregate request rates per node, in first-seen node order.
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut demand: Vec<f64> = Vec::new();
    for r in &inst.requests {
        match nodes.iter().position(|&v| v == r.node) {
            Some(i) => demand[i] += r.rate,
            None => {
                nodes.push(r.node);
                demand.push(r.rate);
            }
        }
    }
    // Scale the aggregate demand to fit under the origin's out-capacity
    // so a reasonable share of the hostile cases stays feasible; the
    // hostile *costs* (ties, zero cycles, 1e±9 range) are the point.
    let cap_out: f64 = inst
        .graph
        .out_pairs(origin)
        .map(|(e, _)| inst.link_cap[e.index()])
        .sum();
    let total: f64 = demand.iter().sum();
    let scale = if cap_out.is_finite() && total > 0.45 * cap_out {
        0.45 * cap_out / total
    } else {
        1.0
    };
    let commodities: Vec<Commodity> = nodes
        .iter()
        .zip(&demand)
        .map(|(&dest, &d)| Commodity {
            source: origin,
            dest,
            demand: d * scale,
        })
        .collect();
    (
        name,
        mcf_outcome(&inst.graph, &inst.link_cost, &inst.link_cap, &commodities),
    )
}

/// Placement-style LP: maximize Σ w_s·z_s with coverage rows
/// `z_s − Σ_{(v,i)∈S_s} x_{v,i} ≤ 0` and per-node knapsack rows
/// `Σ_i x_{v,i} ≤ c_v` — the exact shape of the alternating placement
/// step, at paper-ish dimensions.
fn placement_style_entry(seed: u64) -> (String, Outcome) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x517c_c1b7).wrapping_add(3));
    let n_nodes = 6usize;
    let n_items = 8usize;
    let n_segments = 40;
    let mut m = Model::new(Sense::Maximize);
    let x: Vec<Vec<jcr::lp::VarId>> = (0..n_nodes)
        .map(|_| (0..n_items).map(|_| m.add_var(0.0, 1.0, 0.0)).collect())
        .collect();
    for row in &x {
        let entries: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        m.add_row(f64::NEG_INFINITY, rng.gen_range(1.5..3.5), &entries);
    }
    for _ in 0..n_segments {
        let w = rng.gen_range(0.1..5.0);
        let z = m.add_var(0.0, 1.0, w);
        let item = rng.gen_range(0..n_items);
        let picks = rng.gen_range(1..4usize);
        let mut entries = vec![(z, 1.0)];
        for _ in 0..picks {
            let v = rng.gen_range(0..n_nodes);
            entries.push((x[v][item], -1.0));
        }
        m.add_row(f64::NEG_INFINITY, 0.0, &entries);
    }
    (format!("placement/seed{}", seed), lp_outcome(m.solve()))
}

/// Degenerate transportation grid with tied costs: every basis is
/// massively degenerate, the classic cycling playground.
fn transportation_entry(side: usize) -> (String, Outcome) {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<Vec<jcr::lp::VarId>> = (0..side)
        .map(|i| {
            (0..side)
                .map(|j| m.add_var(0.0, f64::INFINITY, ((i + j) % 3) as f64 + 1.0))
                .collect()
        })
        .collect();
    for row in &vars {
        let entries: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        m.add_row(10.0, 10.0, &entries);
    }
    for j in 0..side {
        let entries: Vec<_> = vars.iter().map(|row| (row[j], 1.0)).collect();
        m.add_row(10.0, 10.0, &entries);
    }
    (
        format!("transport/{}x{}", side, side),
        lp_outcome(m.solve()),
    )
}

/// Seeded random bounded-variable LP, always feasible at x = 0.
fn random_box_entry(seed: u64) -> (String, Outcome) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(6_364_136_223_846_793_005));
    let n = rng.gen_range(8..16);
    let rows = rng.gen_range(4..10);
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|_| m.add_var(0.0, rng.gen_range(0.5..4.0), rng.gen_range(-2.0..3.0)))
        .collect();
    for _ in 0..rows {
        let entries: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.0..2.0))).collect();
        m.add_row(f64::NEG_INFINITY, rng.gen_range(1.0..6.0), &entries);
    }
    (format!("randbox/seed{}", seed), lp_outcome(m.solve()))
}

/// Builds the whole corpus, in a fixed deterministic order.
fn corpus() -> Vec<(String, Outcome)> {
    let mut entries = Vec::new();
    for kind in [
        TopologyKind::Abovenet,
        TopologyKind::Abvt,
        TopologyKind::Tinet,
        TopologyKind::Deltacom,
    ] {
        for seed in [1, 2] {
            entries.push(paper_topology_entry(kind, seed));
        }
    }
    for &family in &FAMILIES {
        for seed in [3, 7] {
            entries.push(adversary_entry(family, seed));
        }
    }
    for seed in [5, 6, 7] {
        entries.push(placement_style_entry(seed));
    }
    for side in [4, 6] {
        entries.push(transportation_entry(side));
    }
    for seed in [11, 12, 13] {
        entries.push(random_box_entry(seed));
    }
    entries
}

fn data_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/lp_equivalence.json")
}

/// Objective agreement tolerance. Direct LP objectives agree to the
/// certificate's duality-gap scale; column-generation costs additionally
/// absorb the pricing-termination threshold, so multicommodity entries
/// get an order of magnitude more headroom.
fn tolerance(name: &str, reference: f64) -> f64 {
    let rel = if name.starts_with("paper/") || name.starts_with("adversary/") {
        1e-5
    } else {
        1e-6
    };
    rel * (1.0 + reference.abs())
}

#[test]
fn corpus_matches_committed_reference() {
    let fresh = corpus();
    let path = data_path();

    if std::env::var("JCR_RECORD_LP_EQUIVALENCE").is_ok() {
        let doc = Json::Arr(
            fresh
                .iter()
                .map(|(name, out)| {
                    let mut obj = out.to_json();
                    if let Json::Obj(map) = &mut obj {
                        map.insert("name".into(), Json::Str(name.clone()));
                    }
                    obj
                })
                .collect(),
        );
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, doc.render()).unwrap();
        eprintln!(
            "[lp_equivalence] recorded {} entries to {:?}",
            fresh.len(),
            path
        );
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing committed reference {path:?} ({e}); record it with \
             JCR_RECORD_LP_EQUIVALENCE=1 cargo test --test lp_equivalence"
        )
    });
    let doc = Json::parse(&text).expect("reference parses");
    let refs = doc.as_arr().expect("reference is an array");
    assert_eq!(
        refs.len(),
        fresh.len(),
        "corpus size changed: re-record the reference (and justify why)"
    );

    let mut failures = Vec::new();
    for ((name, got), reference) in fresh.iter().zip(refs) {
        let ref_name = reference.get("name").and_then(Json::as_str).unwrap_or("?");
        assert_eq!(name, ref_name, "corpus order drifted from the reference");
        let want = Outcome::from_json(reference)
            .unwrap_or_else(|| panic!("malformed reference entry {name}"));
        match (&want, got) {
            (Outcome::Optimal(a), Outcome::Optimal(b)) => {
                let tol = tolerance(name, *a);
                if (a - b).abs() > tol {
                    failures.push(format!(
                        "{name}: objective {b:.12e} != reference {a:.12e} (|Δ| = {:.3e} > {tol:.3e})",
                        (a - b).abs()
                    ));
                }
            }
            (a, b) if a == b => {}
            (a, b) => failures.push(format!("{name}: outcome {b:?} != reference {a:?}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus divergence(s) from the dense-simplex reference:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}

/// The corpus itself must be deterministic — identical on repeated
/// construction within one process (seeded RNGs, no ambient state).
#[test]
fn corpus_construction_is_deterministic() {
    let a = corpus();
    let b = corpus();
    assert_eq!(a.len(), b.len());
    for ((na, oa), (nb, ob)) in a.iter().zip(&b) {
        assert_eq!(na, nb);
        match (oa, ob) {
            (Outcome::Optimal(x), Outcome::Optimal(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{na}: nondeterministic objective")
            }
            (x, y) => assert_eq!(x, y, "{na}"),
        }
    }
}
