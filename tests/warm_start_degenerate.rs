//! Degenerate warm-start scenarios: every one must fall back (or repair)
//! cleanly — a stale or hostile [`jcr::lp::Basis`] is never an error, at
//! worst a cold solve.
//!
//! Covered:
//! * a basis snapshotted from a model whose presolve-removable column was
//!   since dropped (dimension mismatch → cold fallback);
//! * a basis saved from an *infeasible* prior hour, restored into a
//!   feasible model of the same shape (phase 1 repairs feasibility);
//! * an online simulation whose topology is perturbed hour-over-hour by
//!   the fault injector, so the carried basis no longer matches the next
//!   hour's LP shape.

use jcr::core::prelude::*;
use jcr::ctx::{Budget, SolverContext};
use jcr::lp::{presolve, Model, Sense};
use jcr::sim::faults::{FaultConfig, FaultEvent, FaultInjector};
use jcr::topo::{Topology, TopologyKind};

/// min x0 + 2*x1 (+ 7*fixed) s.t. x0 + x1 >= 4, with `fixed` pinned at 3.
/// The pinned column is exactly what presolve eliminates.
fn model_with_fixed_column() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x0 = m.add_var(0.0, 10.0, 1.0);
    let x1 = m.add_var(0.0, 10.0, 2.0);
    let _fixed = m.add_var(3.0, 3.0, 7.0);
    m.add_row(4.0, f64::INFINITY, &[(x0, 1.0), (x1, 1.0)]);
    m
}

/// The presolve-reduced equivalent of [`model_with_fixed_column`]: the
/// fixed column substituted out, one variable fewer.
fn reduced_model() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x0 = m.add_var(0.0, 10.0, 1.0);
    let x1 = m.add_var(0.0, 10.0, 2.0);
    m.add_row(4.0, f64::INFINITY, &[(x0, 1.0), (x1, 1.0)]);
    m
}

#[test]
fn stale_basis_from_presolve_removed_column_falls_back_cold() {
    // The full model really does carry a presolve-removable column.
    let (_, info) = presolve::solve_with_info(&model_with_fixed_column()).unwrap();
    assert!(info.fixed_vars >= 1, "fixture must have a fixed column");

    // Snapshot a basis against the full (3-variable) model…
    let mut full = model_with_fixed_column().into_solver();
    full.solve().unwrap();
    let stale = full.basis().expect("solved model exposes a basis");

    // …then warm-start the reduced (2-variable) model from it. The
    // dimension gate must reject the snapshot and fall back cold, with
    // no error and the exact cold objective (determinism contract: the
    // fallback path is bit-identical to a cold solve).
    let ctx = SolverContext::new();
    let mut reduced = reduced_model().into_solver();
    let warm = reduced.solve_from_basis(&stale, &ctx).unwrap();
    let cold = reduced_model().into_solver().solve().unwrap();
    assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    assert_eq!(warm.x, cold.x);

    let counters = ctx.obs().snapshot().counters;
    assert_eq!(counters.get("lp.warm_fallback"), Some(&1));
    assert_eq!(counters.get("lp.warm_start"), None);
}

#[test]
fn basis_from_infeasible_prior_hour_is_repaired_not_an_error() {
    // Prior "hour": same shape, but the row demands more than the bounds
    // allow — infeasible. The solver still retains its simplex (and thus
    // a basis) after the failed solve.
    let mut prior = Model::new(Sense::Minimize);
    let x = prior.add_var(0.0, 2.0, 1.0);
    prior.add_row(5.0, f64::INFINITY, &[(x, 1.0)]);
    let mut prior_solver = prior.into_solver();
    prior_solver.solve().expect_err("prior hour is infeasible");
    let hostile = prior_solver
        .basis()
        .expect("basis survives an infeasible solve");

    // This hour: identical shape, feasible. Restoring the hostile basis
    // must not error — phase 1 repairs feasibility if the restore is
    // accepted, and a rejected restore falls back cold. Either way the
    // optimum is x = 5.
    let mut this_hour = Model::new(Sense::Minimize);
    let x = this_hour.add_var(0.0, 10.0, 1.0);
    this_hour.add_row(5.0, f64::INFINITY, &[(x, 1.0)]);
    let ctx = SolverContext::new();
    let sol = this_hour
        .into_solver()
        .solve_from_basis(&hostile, &ctx)
        .expect("degenerate warm start must not error");
    assert!((sol.objective - 5.0).abs() < 1e-9);
    assert!((sol.x[0] - 5.0).abs() < 1e-9);

    // Exactly one warm-start attempt was recorded, as a start or a
    // fallback — never silently neither.
    let counters = ctx.obs().snapshot().counters;
    let started = counters.get("lp.warm_start").copied().unwrap_or(0);
    let fell_back = counters.get("lp.warm_fallback").copied().unwrap_or(0);
    assert_eq!(started + fell_back, 1);
}

fn base_instance() -> Instance {
    let topo = Topology::generate(TopologyKind::Abovenet, 5).unwrap();
    let n_edges = topo.edge_nodes.len();
    let rates: Vec<Vec<f64>> = (0..6)
        .map(|i| {
            (0..n_edges)
                .map(|k| 100.0 * (1.0 + ((i * 7 + k * 3) % 5) as f64))
                .collect()
        })
        .collect();
    InstanceBuilder::new(topo)
        .items(6)
        .cache_capacity(2.0)
        .demand_matrix(rates)
        .link_capacity_fraction(0.05)
        .build()
        .unwrap()
}

#[test]
fn warm_start_survives_fault_injector_topology_delta() {
    let base = base_instance();
    let truth: Vec<f64> = base.requests.iter().map(|r| r.rate).collect();
    let mut sim = OnlineSimulator::new(Alternating::new());

    // Hour 0 on the pristine instance seeds the carried basis.
    sim.step(&base, &truth).unwrap();

    // Find an injector hour that commits a *structural* fault (a killed
    // link or node), so the next hour's LP genuinely changes shape.
    let injector = FaultInjector::new(FaultConfig::uniform(42, 0.9));
    let faulted = (0..64)
        .map(|h| injector.inject(h, &base, Budget::unlimited()))
        .find(|hour| {
            hour.events.iter().any(|e| {
                matches!(
                    e,
                    FaultEvent::LinkFailed { .. } | FaultEvent::NodeFailed { .. }
                )
            })
        })
        .expect("a 0.9 fault rate must produce a structural fault in 64 hours");

    // The carried basis no longer matches the faulted hour's LP. The
    // step must still succeed — cold fallback, never an error.
    let faulted_truth: Vec<f64> = faulted.instance.requests.iter().map(|r| r.rate).collect();
    let outcome = sim.step(&faulted.instance, &faulted_truth).unwrap();
    assert!(outcome.solution.placement.is_feasible(&faulted.instance));

    // And the hour after, back on the pristine topology, also succeeds:
    // whatever basis the faulted hour committed is again just a hint.
    let outcome = sim.step(&base, &truth).unwrap();
    assert!(outcome.solution.placement.is_feasible(&base));
    assert_eq!(sim.hour(), 3);
}
