//! Cross-crate capacity planning: the topology augmentation of §6 must
//! make every instance splittably feasible, certified by the flow layer's
//! feasibility diagnostics.

use jcr::core::prelude::*;
use jcr::flow::feasibility::{check_single_source, min_uniform_capacity};
use jcr::topo::{Topology, TopologyKind};

#[test]
fn augmented_instances_are_always_feasible() {
    for seed in 0..5 {
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
            .items(8)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 5_000.0, seed)
            .link_capacity_fraction(0.007)
            .build()
            .unwrap();
        // Aggregate demands per requester; everything must be routable
        // from the origin alone (the paper's "last resort" guarantee).
        let origin = inst.origin.unwrap();
        let mut per_node = vec![0.0; inst.graph.node_count()];
        for r in &inst.requests {
            per_node[r.node.index()] += r.rate * inst.item_size[r.item];
        }
        let demands: Vec<_> = inst
            .graph
            .nodes()
            .filter(|v| per_node[v.index()] > 0.0)
            .map(|v| (v, per_node[v.index()]))
            .collect();
        let f = check_single_source(&inst.graph, &inst.link_cap, origin, &demands);
        assert!(
            f.feasible,
            "seed {seed}: deficit {} with binding cut {:?}",
            f.deficit(),
            f.binding_cut
        );
    }
}

#[test]
fn unaugmented_uniform_capacity_is_insufficient() {
    // Without augmentation, κ = 0.7 % of total demand cannot carry
    // everything from the origin (its single uplink alone needs 100 %).
    let topo = Topology::generate(TopologyKind::Abovenet, 3).unwrap();
    let n_edges = topo.edge_nodes.len();
    let demand_per_edge = 100.0;
    let demands: Vec<_> = topo
        .edge_nodes
        .iter()
        .map(|&v| (v, demand_per_edge))
        .collect();
    let total = demand_per_edge * n_edges as f64;
    let kappa = 0.007 * total;
    let cap = vec![kappa; topo.graph.edge_count()];
    let f = check_single_source(&topo.graph, &cap, topo.origin, &demands);
    assert!(!f.feasible);
    assert!(!f.binding_cut.is_empty());
    // The minimal uniform capacity is the origin uplink's full burden.
    let k_star = min_uniform_capacity(&topo.graph, topo.origin, &demands, 1e-6).unwrap();
    assert!(
        (k_star - total).abs() < 1e-3 * total,
        "origin uplink must carry all demand: κ* = {k_star}, total = {total}"
    );
}
