//! The deterministic-pool contract, end to end: every parallelized hot
//! path — all-pairs Dijkstra, column-generation pricing, Monte-Carlo
//! sweeps — produces bit-identical outputs for any worker count, and a
//! budget tripping inside a worker cancels the pool while the caller
//! still gets its validated incumbent.

use std::time::Duration;

use jcr::core::prelude::*;
use jcr::core::validate::validate_solution;
use jcr::ctx::{Budget, Counter, Phase, SolverContext};
use jcr::flow::multicommodity::{min_cost_multicommodity_with_context, Commodity};
use jcr::graph::{shortest, DiGraph, NodeId};
use jcr::topo::{Topology, TopologyKind};

use jcr_bench::exp::{evaluate, Algo, ExpConfig, Metrics};
use jcr_bench::Scenario;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn capped_instance(seed: u64) -> Instance {
    InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
        .items(8)
        .cache_capacity(2.0)
        .zipf_demand(0.8, 500.0, seed)
        .link_capacity_fraction(0.05)
        .build()
        .unwrap()
}

/// A seeded multicommodity workload on the Abovenet topology's graph.
fn flow_workload() -> (DiGraph, Vec<f64>, Vec<f64>, Vec<Commodity>) {
    let inst = capped_instance(11);
    let g = inst.graph.clone();
    let cost = inst.link_cost.clone();
    let n = g.node_count();
    let commodities: Vec<Commodity> = (0..12)
        .map(|k| Commodity {
            source: NodeId::new((k * 5 + 1) % n),
            dest: NodeId::new((k * 7 + 3) % n),
            demand: 0.5 + 0.25 * (k % 4) as f64,
        })
        .filter(|c| c.source != c.dest)
        .collect();
    let total: f64 = commodities.iter().map(|c| c.demand).sum();
    let cap = vec![total; g.edge_count()];
    (g, cost, cap, commodities)
}

#[test]
fn all_pairs_costs_bit_identical_across_worker_counts() {
    let inst = capped_instance(9);
    let g = &inst.graph;
    let cost = &inst.link_cost;
    let baseline = shortest::all_pairs(g, cost);
    for workers in WORKER_COUNTS {
        let ctx = SolverContext::new().with_workers(workers);
        let rows = shortest::all_pairs_with_context(g, cost, &ctx);
        assert_eq!(rows.len(), baseline.len());
        for (row, expect) in rows.iter().zip(&baseline) {
            for (a, b) in row.iter().zip(expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers = {workers}");
            }
        }
        // Counters are sums and thus worker-count independent too.
        assert_eq!(
            ctx.stats().dijkstra_calls,
            g.node_count() as u64,
            "workers = {workers}"
        );
    }
}

#[test]
fn column_generation_objective_bit_identical_across_worker_counts() {
    let (g, cost, cap, commodities) = flow_workload();
    let mut baseline = None;
    for workers in WORKER_COUNTS {
        let ctx = SolverContext::new().with_workers(workers);
        let sol = min_cost_multicommodity_with_context(&g, &cost, &cap, &commodities, &ctx)
            .expect("workload is feasible");
        let stats = ctx.stats();
        let fingerprint = (
            sol.cost.to_bits(),
            sol.path_flows
                .iter()
                .map(|flows| {
                    flows
                        .iter()
                        .map(|pf| (pf.amount.to_bits(), pf.path.edges().to_vec()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
            stats.counter(Counter::CgColumns),
            stats.counter(Counter::DijkstraCalls),
            stats.counter(Counter::SimplexPivots),
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(expect) => assert_eq!(&fingerprint, expect, "workers = {workers}"),
        }
    }
}

#[test]
fn monte_carlo_aggregates_bit_identical_across_worker_counts() {
    let mut sc = Scenario::chunk_default();
    sc.n_videos = 6;
    let algos: Vec<Algo> = vec![
        Algo {
            name: "SP".into(),
            run: Box::new(|inst, ctx| ShortestPathPlacement.solve_with_context(inst, ctx)),
        },
        Algo {
            name: "SP+RNR".into(),
            run: Box::new(|inst, ctx| IoannidisYeh::sp_rnr().solve_with_context(inst, ctx)),
        },
    ];
    let bits = |ms: &[Metrics]| {
        ms.iter()
            .flat_map(|m| {
                [
                    m.cost_true.to_bits(),
                    m.congestion_true.to_bits(),
                    m.occupancy_true.to_bits(),
                    m.cost_pred.to_bits(),
                    m.congestion_pred.to_bits(),
                    m.occupancy_pred.to_bits(),
                ]
            })
            .collect::<Vec<_>>()
    };
    let mut baseline = None;
    for workers in WORKER_COUNTS {
        let cfg = ExpConfig {
            runs: 3,
            hours: 1,
            workers,
            ..ExpConfig::default()
        };
        let metrics = bits(&evaluate(&sc, &algos, cfg));
        match &baseline {
            None => baseline = Some(metrics),
            Some(expect) => assert_eq!(&metrics, expect, "workers = {workers}"),
        }
    }
}

#[test]
fn budget_exceeded_in_a_worker_cancels_the_pool() {
    // Every worker sees the already-spent deadline; the pool cancels and
    // the smallest-index error surfaces, exactly like the serial path.
    let items: Vec<u32> = (0..512).collect();
    for workers in WORKER_COUNTS {
        let ctx =
            SolverContext::with_budget(Budget::deadline(Duration::ZERO)).with_workers(workers);
        let err = jcr::ctx::par::try_par_map(&ctx, &items, |wctx, _, _| {
            wctx.check_deadline(Phase::Dijkstra)?;
            Ok::<(), jcr::ctx::BudgetExceeded>(())
        })
        .expect_err("spent deadline must cancel the pool");
        assert_eq!(err.phase, Phase::Dijkstra, "workers = {workers}");
    }
}

#[test]
fn budget_trip_still_returns_validated_incumbent_under_parallel_pool() {
    let inst = capped_instance(7);
    for workers in WORKER_COUNTS {
        let ctx =
            SolverContext::with_budget(Budget::unlimited().with_phase_cap(Phase::Alternating, 1))
                .with_workers(workers);
        let err = Alternating::new()
            .solve_with_context(&inst, &ctx)
            .expect_err("a 1-iteration cap must interrupt the alternation");
        match err {
            JcrError::BudgetExceeded { phase, best_so_far } => {
                assert_eq!(phase, Phase::Alternating, "workers = {workers}");
                let incumbent = *best_so_far.expect("one full iterate completed");
                let violations = validate_solution(&inst, &incumbent);
                assert!(
                    violations.is_empty(),
                    "workers = {workers}: incumbent infeasible: {violations:?}"
                );
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }
}

#[test]
fn full_alternating_solve_bit_identical_across_worker_counts() {
    let mut baseline = None;
    for workers in WORKER_COUNTS {
        // Fresh instances per worker count: the all-pairs cache must be
        // recomputed under each pool width to prove bit-identity.
        let inst = capped_instance(4);
        let ctx = SolverContext::new().with_workers(workers);
        let sol = Alternating::new()
            .solve_with_context(&inst, &ctx)
            .expect("solvable instance");
        let cost = sol.solution.cost(&inst).to_bits();
        match baseline {
            None => baseline = Some(cost),
            Some(expect) => assert_eq!(cost, expect, "workers = {workers}"),
        }
    }
}
