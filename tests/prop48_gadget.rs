//! Proposition 4.8: the alternating optimization's approximation ratio is
//! unbounded — verified on the paper's Fig. 9 gadget. The bad placement is
//! a Nash equilibrium (neither the placement step nor the routing step
//! improves it), while its cost exceeds the optimum by Θ(1/ε).

use jcr::core::instance::{Instance, Request};
use jcr::core::placement::Placement;
use jcr::core::placement_opt;
use jcr::core::prelude::*;
use jcr::core::rnr;
use jcr::graph::DiGraph;

/// Builds the Fig. 9 gadget: client `s` requests item 0 at rate λ and
/// item 1 at rate ε; caches of size 1 at `v1`, `v2`; `vs` (capacity 2 =
/// |C|) acts as the origin.
fn gadget(eps: f64) -> (Instance, [jcr::graph::NodeId; 4]) {
    let lambda = 1.0;
    let w = 1.0;
    let mut g = DiGraph::new();
    let vs = g.add_node();
    let v1 = g.add_node();
    let v2 = g.add_node();
    let s = g.add_node();
    let mut cost = Vec::new();
    let mut cap = Vec::new();
    for (u, v, c) in [(vs, v1, w), (vs, v2, w), (v1, s, eps), (v2, s, w)] {
        g.add_edge(u, v);
        cost.push(c);
        cap.push(lambda + eps); // every link fits all the demand
    }
    let mut cache_cap = vec![0.0; 4];
    cache_cap[v1.index()] = 1.0;
    cache_cap[v2.index()] = 1.0;
    let inst = Instance::new(
        g,
        cost,
        cap,
        cache_cap,
        vec![1.0, 1.0],
        vec![
            Request {
                item: 0,
                node: s,
                rate: lambda,
            },
            Request {
                item: 1,
                node: s,
                rate: eps,
            },
        ],
        Some(vs),
    )
    .unwrap();
    (inst, [vs, v1, v2, s])
}

#[test]
fn bad_equilibrium_costs_match_the_proof() {
    for eps in [0.1, 0.01] {
        let (inst, [_, v1, v2, _]) = gadget(eps);
        // Bad NE: item 0 at v2, item 1 at v1.
        let mut ne = Placement::empty(&inst);
        ne.set(v2, 0, true);
        ne.set(v1, 1, true);
        let ne_cost = rnr::route_to_nearest_replica(&inst, &ne)
            .unwrap()
            .cost(&inst);
        // λw + ε² from the proof of Proposition 4.8.
        assert!(
            (ne_cost - (1.0 + eps * eps)).abs() < 1e-9,
            "eps={eps}: {ne_cost}"
        );

        // Optimum: item 0 at v1, item 1 at v2 → ε(λ + w).
        let mut opt = Placement::empty(&inst);
        opt.set(v1, 0, true);
        opt.set(v2, 1, true);
        let opt_cost = rnr::route_to_nearest_replica(&inst, &opt)
            .unwrap()
            .cost(&inst);
        assert!((opt_cost - eps * 2.0).abs() < 1e-9, "eps={eps}: {opt_cost}");

        // The ratio diverges as ε → 0.
        assert!(ne_cost / opt_cost > 0.4 / eps);
    }
}

#[test]
fn bad_equilibrium_is_a_fixed_point_of_the_placement_step() {
    let (inst, [_, v1, v2, _]) = gadget(0.01);
    let mut ne = Placement::empty(&inst);
    ne.set(v2, 0, true);
    ne.set(v1, 1, true);
    let ne_routing = rnr::route_to_nearest_replica(&inst, &ne).unwrap();
    // Under the NE routing (single-hop paths v2→s and v1→s), no placement
    // can save anything — the path sources are never in a truncation
    // prefix — so the placement step cannot improve the cost.
    let re_placed = placement_opt::optimize_placement(&inst, &ne_routing).unwrap();
    let f = placement_opt::f_given_routing(&inst, &ne_routing, &re_placed);
    assert!(
        f.abs() < 1e-9,
        "no placement saves anything under the NE routing"
    );
    // And the cost of the routing is exactly the NE cost regardless of x.
    let cost = placement_opt::cost_given_routing(&inst, &ne_routing, &re_placed);
    assert!((cost - ne_routing.cost(&inst)).abs() < 1e-9);
}

#[test]
fn driver_with_origin_init_escapes_the_trap() {
    // Our driver always starts from origin-routing, whose multi-hop paths
    // expose v1 to the placement step — so it finds the near-optimal
    // solution on this gadget even though adversarial initializations
    // stall (Proposition 4.8 concerns worst-case initialization).
    for eps in [0.1, 0.01] {
        let (inst, _) = gadget(eps);
        let result = Alternating::new().solve(&inst).unwrap();
        let cost = result.solution.cost(&inst);
        let opt = eps * 2.0;
        assert!(
            cost <= opt * 1.5 + 1e-9,
            "eps={eps}: driver cost {cost} far from optimum {opt}"
        );
    }
}
