//! Stress-scale smoke test (tier 1, runs on every CI push): a 1000-node
//! `Stress` topology with a 10⁵-chunk Zipf catalog solves end to end —
//! oracle priming, greedy placement, route-to-nearest-replica cost —
//! without ever materializing a dense |V|² distance matrix, and the
//! resulting cost is bit-identical across worker counts.
//!
//! This is the beyond-paper scale the flat-memory refactor exists for:
//! the dense block would be 1000² × (8 + 4) bytes ≈ 12 MB per oracle and
//! a dense rate matrix 10⁵ × 64 × 8 bytes ≈ 51 MB; the sparse path holds
//! a few dozen cached rows and a few hundred request triples instead.

use jcr::core::prelude::*;
use jcr::ctx::SolverContext;
use jcr::graph::NodeId;
use jcr::topo::{Topology, TopologyKind};
use jcr::trace::zipf::zipf_demand_sparse;
use jcr_ctx::rng::{SeedableRng, StdRng};

const N_ITEMS: usize = 100_000;
const ACTIVE: usize = 96;
const PER_ITEM: usize = 2;
// Smaller than any edge node's active-item count, so placement cannot
// cover all demand locally and the nearest-replica search has to route.
const ZETA: usize = 1;

fn stress_instance() -> (Instance, Vec<NodeId>) {
    let topo = Topology::generate(TopologyKind::Stress, 7).expect("stress family generates");
    assert_eq!(topo.graph.node_count(), 1000);
    assert!(topo.graph.edge_count() >= 10_000);
    let mut rng = StdRng::seed_from_u64(11);
    let triples = zipf_demand_sparse(
        N_ITEMS,
        topo.edge_nodes.len(),
        0.8,
        1000.0,
        ACTIVE,
        PER_ITEM,
        &mut rng,
    );
    let requests: Vec<Request> = triples
        .iter()
        .map(|&(item, s, rate)| Request {
            item,
            node: topo.edge_nodes[s],
            rate,
        })
        .collect();
    let mut cache_cap = vec![0.0; topo.graph.node_count()];
    for &v in &topo.edge_nodes {
        cache_cap[v.index()] = ZETA as f64;
    }
    let edge_count = topo.graph.edge_count();
    let edge_nodes = topo.edge_nodes.clone();
    let inst = Instance::new(
        topo.graph,
        topo.cost,
        vec![f64::INFINITY; edge_count],
        cache_cap,
        vec![1.0; N_ITEMS],
        requests,
        Some(topo.origin),
    )
    .expect("stress instance is valid")
    // Force on-demand rows regardless of the environment: the point of
    // this test is that the dense |V|² block is never allocated.
    .with_oracle_dense_max(0);
    (inst, edge_nodes)
}

/// Greedy placement + nearest-replica cost through the instance's own
/// oracle; returns (cost, placement size).
fn solve(inst: &Instance, edge_nodes: &[NodeId], ctx: &SolverContext) -> (f64, usize) {
    let ap = inst.all_pairs_with_context(ctx);
    let oracle = ap.oracle();
    assert!(
        !oracle.is_dense(),
        "stress instance must not hold a dense |V|² matrix"
    );
    let origin = inst.origin.expect("stress topology has an origin");
    let mut sources: Vec<NodeId> = edge_nodes.to_vec();
    sources.push(origin);
    oracle.prime_rows_with_context(&sources, ctx);
    assert_eq!(oracle.rows_computed(), sources.len() as u64);

    // Each edge node caches the top-ζ items of its own demand.
    let mut placement = Placement::empty(inst);
    for &v in edge_nodes {
        let mut local: Vec<(usize, f64)> = inst
            .requests
            .iter()
            .filter(|r| r.node == v)
            .map(|r| (r.item, r.rate))
            .collect();
        local.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for &(item, _) in local.iter().take(ZETA) {
            placement.set(v, item, true);
        }
    }
    assert!(placement.is_feasible(inst));

    let mut cost = 0.0;
    for r in &inst.requests {
        let row = oracle.row(r.node);
        let mut best = row.dist(origin);
        for &v in edge_nodes.iter() {
            if placement.has(v, r.item) {
                best = best.min(row.dist(v));
            }
        }
        assert!(best.is_finite(), "request {r:?} unservable");
        cost += r.rate * best;
    }
    (cost, placement.len())
}

#[test]
fn thousand_node_catalog_solves_without_dense_matrix() {
    let (inst, edge_nodes) = stress_instance();
    assert_eq!(inst.num_items(), N_ITEMS);
    assert_eq!(inst.requests.len(), ACTIVE * PER_ITEM);

    let ctx = SolverContext::new().with_workers(1);
    let (cost, placed) = solve(&inst, &edge_nodes, &ctx);
    assert!(cost.is_finite() && cost > 0.0);
    assert!(placed > 0);

    // Caching must beat the no-cache (origin-only) cost.
    let origin = inst.origin.unwrap();
    let ap = inst.all_pairs();
    let origin_only: f64 = inst
        .requests
        .iter()
        .map(|r| r.rate * ap.dist(r.node, origin))
        .sum();
    assert!(cost < origin_only);
}

#[test]
fn stress_cost_is_bit_identical_across_widths() {
    let (inst, edge_nodes) = stress_instance();
    let mut seen: Option<(u64, usize)> = None;
    for workers in [1usize, 2, 8] {
        // A fresh clone per width: the oracle's row cache starts cold.
        let inst = inst.clone();
        let ctx = SolverContext::new().with_workers(workers);
        let (cost, placed) = solve(&inst, &edge_nodes, &ctx);
        match seen {
            None => seen = Some((cost.to_bits(), placed)),
            Some(expect) => assert_eq!(
                (cost.to_bits(), placed),
                expect,
                "stress cost diverged at {workers} workers"
            ),
        }
    }
}
