//! End-to-end checks of the [`jcr::ctx::SolverContext`] threading: the
//! instrumentation counters are populated and deterministic, iteration
//! budgets surface [`JcrError::BudgetExceeded`] with a feasible incumbent,
//! and a zero deadline fails fast on every solver entry point.

use std::time::Duration;

use jcr::core::prelude::*;
use jcr::core::validate::validate_solution;
use jcr::core::{alg2, fcfr};
use jcr::ctx::{Budget, Counter, Phase, SolverContext};
use jcr::topo::{Topology, TopologyKind};

fn capped_instance(seed: u64) -> Instance {
    InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
        .items(8)
        .cache_capacity(2.0)
        .zipf_demand(0.8, 500.0, seed)
        .link_capacity_fraction(0.05)
        .build()
        .unwrap()
}

#[test]
fn stats_counters_nonzero_and_reproducible() {
    let inst = capped_instance(5);
    // All-pairs distances are computed once per instance and cached; warm
    // the cache so both solves below charge identical Dijkstra work to
    // their own contexts.
    inst.all_pairs();
    let solve = || {
        let ctx = SolverContext::new();
        let sol = Alternating::new().solve_with_context(&inst, &ctx).unwrap();
        (sol, ctx.stats())
    };
    let (sol_a, stats_a) = solve();
    let (sol_b, stats_b) = solve();

    // The alternating pipeline exercises the simplex, the column
    // generation pricing Dijkstras, and the rounding passes.
    for counter in [
        Counter::SimplexPivots,
        Counter::DijkstraCalls,
        Counter::RoundingPasses,
    ] {
        assert!(
            stats_a.counter(counter) > 0,
            "{} stayed zero over a full alternating solve",
            counter.name()
        );
    }
    // Same instance, same seed, fresh context: identical work and result.
    assert_eq!(
        stats_a.counters(),
        stats_b.counters(),
        "solver work not reproducible"
    );
    assert_eq!(sol_a.solution, sol_b.solution, "solution not reproducible");

    // Phase timers saw the phases the counters saw.
    assert!(stats_a.phase_time(Phase::Simplex) > Duration::ZERO);
}

#[test]
fn stats_flow_through_the_report() {
    let inst = capped_instance(2);
    let ctx = SolverContext::new();
    let sol = Algorithm1::new().solve_with_context(&inst, &ctx).unwrap();
    let text = jcr::core::report::solution_report_with_stats(&inst, &sol, &ctx.stats());
    assert!(text.contains("-- solver stats --"));
    assert!(text.contains("simplex pivots"));
}

#[test]
fn one_iteration_budget_returns_feasible_incumbent() {
    let inst = capped_instance(7);
    let ctx = SolverContext::with_budget(Budget::unlimited().with_phase_cap(Phase::Alternating, 1));
    let err = Alternating::new()
        .solve_with_context(&inst, &ctx)
        .expect_err("a 1-iteration cap must interrupt the alternation");
    match err {
        JcrError::BudgetExceeded { phase, best_so_far } => {
            assert_eq!(phase, Phase::Alternating);
            let incumbent = *best_so_far.expect("one full iterate completed");
            let violations = validate_solution(&inst, &incumbent);
            assert!(
                violations.is_empty(),
                "incumbent infeasible: {violations:?}"
            );
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn zero_deadline_fails_fast_everywhere() {
    let inst = capped_instance(3);
    let storer = inst.cache_nodes()[0];
    let ctx = SolverContext::with_budget(Budget::deadline(Duration::ZERO));

    let alg1 = Algorithm1::new().solve_with_context(&inst, &ctx);
    assert!(
        matches!(alg1, Err(JcrError::BudgetExceeded { .. })),
        "{alg1:?}"
    );

    let alt = Alternating::new().solve_with_context(&inst, &ctx);
    assert!(
        matches!(alt, Err(JcrError::BudgetExceeded { .. })),
        "{alt:?}"
    );

    let bin = alg2::solve_binary_caches_with_context(&inst, &[storer], 4, &ctx);
    assert!(
        matches!(bin, Err(JcrError::BudgetExceeded { .. })),
        "{:?}",
        bin.err()
    );

    let lp = fcfr::solve_fcfr_with_context(&inst, &ctx);
    assert!(
        matches!(lp, Err(JcrError::BudgetExceeded { .. })),
        "{:?}",
        lp.err()
    );

    let cg = fcfr::solve_fcfr_cg_with_context(&inst, &ctx);
    assert!(
        matches!(cg, Err(JcrError::BudgetExceeded { .. })),
        "{:?}",
        cg.err()
    );

    let iy = IoannidisYeh::ksp_rnr(3).solve_with_context(&inst, &ctx);
    assert!(
        matches!(iy, Err(JcrError::BudgetExceeded { .. })),
        "{:?}",
        iy.err()
    );
}

#[test]
fn default_context_reproduces_plain_entry_points() {
    let inst = capped_instance(4);
    let plain = Algorithm1::new().solve(&inst).unwrap();
    let ctxed = Algorithm1::new()
        .solve_with_context(&inst, &SolverContext::new())
        .unwrap();
    assert_eq!(plain, ctxed);
}
