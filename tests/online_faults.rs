//! End-to-end checks of the fault-tolerant anytime online loop: under
//! injected faults the [`OnlineSimulator::step_anytime`] ladder serves
//! every hour of a servable instance with a `validate_solution`-clean
//! decision tagged with its degradation rung, carried solutions are
//! repaired around failed links, and budget sabotage degrades to the
//! incumbent or carry-forward rungs instead of erroring.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;
use std::time::Duration;

use jcr::core::prelude::*;
use jcr::core::validate::validate_solution;
use jcr::ctx::probe::JsonLinesProbe;
use jcr::ctx::{Budget, Phase, Probe};
use jcr::graph::EdgeId;
use jcr::sim::faults::{FaultConfig, FaultInjector};
use jcr::topo::{Topology, TopologyKind};

/// A shared in-memory sink: the probe consumes its writer, so the test
/// keeps a second handle to read the emitted JSON lines.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.borrow().clone()).unwrap()
    }
}

fn base_instance(seed: u64) -> Instance {
    InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
        .items(6)
        .cache_capacity(2.0)
        .zipf_demand(0.8, 300.0, seed)
        .link_capacity_fraction(0.1)
        .build()
        .unwrap()
}

fn truth(inst: &Instance) -> Vec<f64> {
    inst.requests.iter().map(|r| r.rate).collect()
}

/// The acceptance criterion of the anytime mode: with every fault class
/// firing aggressively, the loop never errors — each hour yields a
/// validate-clean outcome tagged with its rung — and the rung
/// transitions stream through the JSON-lines probe.
#[test]
fn ladder_serves_every_hour_under_heavy_faults() {
    let base = base_instance(17);
    let injector = FaultInjector::new(FaultConfig::uniform(99, 0.6));
    let buf = SharedBuf::default();
    let probe: Rc<dyn Probe> = Rc::new(JsonLinesProbe::new(buf.clone()));
    let cfg_budget = Budget::deadline(Duration::from_secs(30));

    let mut sim = OnlineSimulator::new(Alternating::new());
    let mut faults_seen = 0;
    let mut rungs = Vec::new();
    for hour in 0..8 {
        let faulted = injector.inject(hour, &base, cfg_budget);
        faults_seen += faulted.events.len();
        let cfg = AnytimeConfig::new()
            .with_budget(faulted.budget)
            .with_probe(Rc::clone(&probe));
        let outcome = sim
            .step_anytime(&faulted.instance, &truth(&faulted.instance), &cfg)
            .unwrap_or_else(|e| panic!("hour {hour} not served: {e} ({:?})", faulted.events));
        let violations = validate_solution(&faulted.instance, &outcome.solution);
        assert!(violations.is_empty(), "hour {hour}: {violations:?}");
        rungs.push(outcome.rung);
    }
    assert_eq!(sim.hour(), 8);
    assert!(faults_seen > 0, "rate 0.6 over 8 hours injected nothing");

    // Every served hour announced its rung through the probe.
    let log = buf.contents();
    for (hour, rung) in rungs.iter().enumerate() {
        // Each line leads with the probe's monotonic `ts_us` stamp, so
        // match from the event key onward.
        let needle = format!(
            "\"event\":\"rung\",\"hour\":\"{hour}\",\"rung\":\"{rung}\",\"status\":\"served\""
        );
        assert!(log.contains(&needle), "missing {needle} in:\n{log}");
    }
}

/// Failing a loaded-but-expendable link and denying any re-solve time
/// forces the carry-forward rung, whose repair must drop the dead-link
/// flows and re-route around them.
#[test]
fn link_failure_forces_repair_on_carry_forward() {
    let base = base_instance(23);
    let mut sim = OnlineSimulator::new(Alternating::new());
    let first = sim.step(&base, &truth(&base)).unwrap();

    // The most loaded link whose removal keeps the origin connected to
    // every requester (the fault injector's survivability guard).
    let loads = first.solution.routing.link_loads(&base);
    let mut candidates: Vec<EdgeId> = base
        .graph
        .edges()
        .filter(|e| loads[e.index()] > 0.0)
        .collect();
    candidates.sort_by(|a, b| loads[b.index()].partial_cmp(&loads[a.index()]).unwrap());
    let victim = candidates
        .into_iter()
        .find(|&e| {
            let tree = jcr::graph::shortest::dijkstra_filtered(
                &base.graph,
                base.origin.unwrap(),
                &base.link_cost,
                |f| f != e && base.link_cap[f.index()] > 0.0,
            );
            base.requests.iter().all(|r| tree.path(r.node).is_some())
        })
        .expect("some loaded link is expendable");
    let mut cost = base.link_cost.clone();
    let mut cap = base.link_cap.clone();
    cost[victim.index()] = f64::INFINITY;
    cap[victim.index()] = 0.0;
    // Headroom on the surviving links so re-routed flows fit.
    for c in cap.iter_mut().filter(|c| c.is_finite()) {
        *c *= 4.0;
    }
    let faulted = Instance::new(
        base.graph.clone(),
        cost,
        cap,
        base.cache_cap.clone(),
        base.item_size.clone(),
        base.requests.clone(),
        base.origin,
    )
    .unwrap();

    let cfg = AnytimeConfig::new().with_budget(Budget::deadline(Duration::ZERO));
    let outcome = sim.step_anytime(&faulted, &truth(&faulted), &cfg).unwrap();
    assert_eq!(outcome.rung, Rung::CarryForward);
    let stats = outcome.repair.expect("carry-forward always repairs");
    assert!(stats.changed(), "{stats:?}");
    assert!(validate_solution(&faulted, &outcome.solution).is_empty());
    let new_loads = outcome.solution.routing.link_loads(&faulted);
    assert_eq!(new_loads[victim.index()], 0.0, "dead link still loaded");
}

/// A one-iteration alternating cap trips the full solve mid-flight; the
/// ladder serves the interrupted solve's incumbent (rung 2) instead of
/// failing the hour.
#[test]
fn budget_trip_falls_back_to_the_incumbent() {
    let base = base_instance(31);
    let mut sim = OnlineSimulator::new(Alternating::new());
    let cfg =
        AnytimeConfig::new().with_budget(Budget::unlimited().with_phase_cap(Phase::Alternating, 1));
    let outcome = sim.step_anytime(&base, &truth(&base), &cfg).unwrap();
    assert_eq!(outcome.rung, Rung::Incumbent);
    assert!(validate_solution(&base, &outcome.solution).is_empty());
}

/// Repeated zero-budget hours keep carrying the first hour's solution
/// forward; state stays consistent and every hour validates clean.
#[test]
fn repeated_failures_keep_carrying_forward() {
    let base = base_instance(41);
    let rates = truth(&base);
    let mut sim = OnlineSimulator::new(Alternating::new());
    let first = sim.step(&base, &rates).unwrap();
    let cfg = AnytimeConfig::new().with_budget(Budget::deadline(Duration::ZERO));
    for hour in 1..4 {
        let outcome = sim.step_anytime(&base, &rates, &cfg).unwrap();
        assert_eq!(outcome.rung, Rung::CarryForward, "hour {hour}");
        assert!(validate_solution(&base, &outcome.solution).is_empty());
        // The carried solution was already clean for this instance, so
        // repair passes it through and churn stays zero.
        assert_eq!(outcome.placement_churn, 0, "hour {hour}");
        assert_eq!(outcome.solution.placement, first.solution.placement);
        assert_eq!(sim.hour(), hour + 1);
    }
}

/// Satellite coverage for the compound-fault hour: a whole-node failure
/// (every incident link dead) *and* a capacity cut land in the same
/// hour. `Placement::repair` must evict down to the slashed cache
/// capacities, and the full `repair_solution` pass must also route
/// around the dead node — the repaired solution validates clean against
/// the compound-faulted instance.
#[test]
fn repair_survives_node_failure_and_capacity_cut_in_one_hour() {
    use jcr::sim::faults::FaultEvent;

    let base = base_instance(23);
    let rates = truth(&base);

    // Hour 0: a clean solve whose solution we then carry into the fault.
    let mut sim = OnlineSimulator::new(Alternating::new());
    let carried = sim.step(&base, &rates).unwrap();
    assert!(!carried.solution.placement.is_empty());

    // Deterministically fire exactly the two fault classes under test.
    let mut fcfg = FaultConfig::uniform(23, 0.0);
    fcfg.node_failure = 1.0;
    fcfg.capacity_cut = 1.0;
    fcfg.cut_factor = 0.4;
    let injector = FaultInjector::new(fcfg);
    let (faulted, dead_node) = (1..32)
        .find_map(|hour| {
            let f = injector.inject(hour, &base, Budget::unlimited());
            let dead = f.events.iter().find_map(|e| match e {
                FaultEvent::NodeFailed { node, .. } => Some(*node),
                _ => None,
            })?;
            let cut = f
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::CapacityCut { .. }));
            cut.then_some((f, dead))
        })
        .expect("some hour fires a survivable node failure plus a capacity cut");

    // Compound the link-level faults with a cache-capacity cut so the
    // placement half of the repair has real work to do.
    let cache_cap: Vec<f64> = faulted.instance.cache_cap.iter().map(|c| c * 0.5).collect();
    let compound = Instance::new(
        faulted.instance.graph.clone(),
        faulted.instance.link_cost.clone(),
        faulted.instance.link_cap.clone(),
        cache_cap,
        faulted.instance.item_size.clone(),
        faulted.instance.requests.clone(),
        faulted.instance.origin,
    )
    .unwrap();

    // The carried placement overflows the halved caches; repair must
    // evict (not reset: dimensions still match) back to feasibility.
    let mut placement = carried.solution.placement.clone();
    assert!(!placement.is_feasible(&compound));
    let evicted = placement.repair(&compound);
    assert!(evicted > 0, "halved caches force evictions");
    assert!(placement.is_feasible(&compound));
    assert!(
        !placement.is_empty(),
        "dims match, so repair evicts rather than resets"
    );

    // The full carry-forward repair: placement trimmed *and* routing
    // steered off the dead node's links, clean against the compound
    // instance.
    let (repaired, stats) = repair_solution(&compound, &carried.solution);
    assert!(stats.evicted > 0 || stats.rerouted > 0);
    assert!(
        validate_solution(&compound, &repaired).is_empty(),
        "repair under node failure + capacity cut must validate clean"
    );
    let loads = repaired.routing.link_loads(&compound);
    for e in compound
        .graph
        .out_edges(dead_node)
        .iter()
        .chain(compound.graph.in_edges(dead_node))
    {
        assert_eq!(loads[e.index()], 0.0, "no flow may cross the failed node");
    }

    // And the online ladder serves the compound hour end to end.
    let outcome = sim
        .step_anytime(&compound, &truth(&compound), &AnytimeConfig::new())
        .unwrap();
    assert!(validate_solution(&compound, &outcome.solution).is_empty());
}
