//! Property-based tests across the whole stack: random edge-caching
//! instances must yield feasible, fully-serving solutions from every
//! algorithm, with the structural cost relations the theory requires.

use proptest::prelude::*;

use jcr::core::prelude::*;
use jcr::core::{alg1, alg2, rnr};
use jcr::topo::Topology;

#[derive(Debug, Clone)]
struct RandomInstance {
    topo_seed: u64,
    demand_seed: u64,
    n_items: usize,
    zeta: f64,
    alpha: f64,
    kappa_fraction: Option<f64>,
}

fn random_instance() -> impl Strategy<Value = RandomInstance> {
    (
        0u64..200,
        0u64..200,
        2usize..10,
        1.0f64..4.0,
        0.2f64..1.5,
        prop_oneof![Just(None), (0.02f64..0.2).prop_map(Some)],
    )
        .prop_map(|(topo_seed, demand_seed, n_items, zeta, alpha, kappa_fraction)| {
            RandomInstance { topo_seed, demand_seed, n_items, zeta, alpha, kappa_fraction }
        })
}

fn build(ri: &RandomInstance) -> Instance {
    let topo = Topology::generate_custom(12, 16, 3, ri.topo_seed).unwrap();
    let mut b = InstanceBuilder::new(topo)
        .items(ri.n_items)
        .cache_capacity(ri.zeta)
        .zipf_demand(ri.alpha, 500.0, ri.demand_seed);
    b = match ri.kappa_fraction {
        Some(fr) => b.link_capacity_fraction(fr),
        None => b.unlimited_links(),
    };
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1 always yields a feasible solution at least as good as
    /// origin-only serving, with RNR-consistent routing.
    #[test]
    fn alg1_invariants(ri in random_instance()) {
        let inst = build(&ri);
        let sol = Algorithm1::new().solve(&inst).unwrap();
        prop_assert!(sol.placement.is_feasible(&inst));
        prop_assert!(sol.routing.serves_all(&inst));
        prop_assert!(sol.routing.sources_valid(&inst, &sol.placement));
        let origin_only = rnr::rnr_cost(&inst, &Placement::empty(&inst)).unwrap();
        prop_assert!(sol.cost(&inst) <= origin_only + 1e-6);
        // RNR of the final placement IS the routing Alg1 returns.
        let rnr_cost = rnr::rnr_cost(&inst, &sol.placement).unwrap();
        prop_assert!((sol.cost(&inst) - rnr_cost).abs() < 1e-6);
        // Monotonicity of the saving objective: caching helped or tied.
        prop_assert!(alg1::f_rnr(&inst, &sol.placement)
            >= alg1::f_rnr(&inst, &Placement::empty(&inst)) - 1e-9);
    }

    /// The alternating optimization stays feasible, serves everything, and
    /// never ends above the origin-only cost.
    #[test]
    fn alternating_invariants(ri in random_instance()) {
        let mut ri = ri;
        // Alternating needs capacities to be interesting but must stay
        // feasible: the builder's augmentation guarantees that.
        if ri.kappa_fraction.is_none() {
            ri.kappa_fraction = Some(0.05);
        }
        let inst = build(&ri);
        let result = Alternating { seed: ri.demand_seed, ..Alternating::default() }
            .solve(&inst)
            .unwrap();
        let sol = &result.solution;
        prop_assert!(sol.placement.is_feasible(&inst));
        prop_assert!(sol.routing.serves_all(&inst));
        prop_assert!(sol.routing.sources_valid(&inst, &sol.placement));
        prop_assert!(sol.routing.is_integral());
        // History is non-increasing in cost and starts at the initial
        // solution.
        for w in result.history.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    /// Binary-cache Algorithm 2 obeys Theorem 4.7's cost bound for random
    /// storers and K.
    #[test]
    fn alg2_invariants(ri in random_instance(), k in 1u32..8, storer_pick in 0usize..3) {
        let mut ri = ri;
        ri.kappa_fraction = Some(ri.kappa_fraction.map_or(0.05, |f| f.max(0.03)));
        let inst = build(&ri);
        let cache_nodes = inst.cache_nodes();
        let storer = cache_nodes[storer_pick % cache_nodes.len()];
        let sol = alg2::solve_binary_caches(&inst, &[storer], k).unwrap();
        prop_assert!(sol.solution.routing.serves_all(&inst));
        prop_assert!(sol.solution.cost(&inst) <= sol.splittable_cost + 1e-6);
        // The unconstrained RNR cost floors everything.
        let floor = alg2::rnr_binary(&inst, &[storer]).unwrap().cost(&inst);
        prop_assert!(sol.solution.cost(&inst) + 1e-6 >= floor);
    }

    /// Serialization round-trips preserve solver behaviour.
    #[test]
    fn serialization_round_trip(ri in random_instance()) {
        let inst = build(&ri);
        let back = jcr::core::serial::from_text(&jcr::core::serial::to_text(&inst)).unwrap();
        let a = Algorithm1::new().solve(&inst).unwrap().cost(&inst);
        let b = Algorithm1::new().solve(&back).unwrap().cost(&back);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }
}
