//! Randomized property tests across the whole stack: random edge-caching
//! instances must yield feasible, fully-serving solutions from every
//! algorithm, with the structural cost relations the theory requires.
//! Cases come from the in-tree seeded PRNG, so every run is identical.

use jcr::core::prelude::*;
use jcr::core::{alg1, alg2, rnr};
use jcr::ctx::rng::{Rng, SeedableRng, StdRng};
use jcr::topo::Topology;

const CASES: u64 = 24;

#[derive(Debug, Clone)]
struct RandomInstance {
    topo_seed: u64,
    demand_seed: u64,
    n_items: usize,
    zeta: f64,
    alpha: f64,
    kappa_fraction: Option<f64>,
}

fn random_instance(rng: &mut StdRng) -> RandomInstance {
    RandomInstance {
        topo_seed: rng.gen_range(0..200u64),
        demand_seed: rng.gen_range(0..200u64),
        n_items: rng.gen_range(2..10usize),
        zeta: rng.gen_range(1.0..4.0),
        alpha: rng.gen_range(0.2..1.5),
        kappa_fraction: if rng.gen_bool(0.5) {
            None
        } else {
            Some(rng.gen_range(0.02..0.2))
        },
    }
}

fn build(ri: &RandomInstance) -> Instance {
    let topo = Topology::generate_custom(12, 16, 3, ri.topo_seed).unwrap();
    let mut b = InstanceBuilder::new(topo)
        .items(ri.n_items)
        .cache_capacity(ri.zeta)
        .zipf_demand(ri.alpha, 500.0, ri.demand_seed);
    b = match ri.kappa_fraction {
        Some(fr) => b.link_capacity_fraction(fr),
        None => b.unlimited_links(),
    };
    b.build().unwrap()
}

/// Algorithm 1 always yields a feasible solution at least as good as
/// origin-only serving, with RNR-consistent routing.
#[test]
fn alg1_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x636f_3031 + case);
        let ri = random_instance(&mut rng);
        let inst = build(&ri);
        let sol = Algorithm1::new().solve(&inst).unwrap();
        assert!(sol.placement.is_feasible(&inst), "case {case}");
        assert!(sol.routing.serves_all(&inst), "case {case}");
        assert!(
            sol.routing.sources_valid(&inst, &sol.placement),
            "case {case}"
        );
        let origin_only = rnr::rnr_cost(&inst, &Placement::empty(&inst)).unwrap();
        assert!(sol.cost(&inst) <= origin_only + 1e-6, "case {case}");
        // RNR of the final placement IS the routing Alg1 returns.
        let rnr_cost = rnr::rnr_cost(&inst, &sol.placement).unwrap();
        assert!((sol.cost(&inst) - rnr_cost).abs() < 1e-6, "case {case}");
        // Monotonicity of the saving objective: caching helped or tied.
        assert!(
            alg1::f_rnr(&inst, &sol.placement)
                >= alg1::f_rnr(&inst, &Placement::empty(&inst)) - 1e-9,
            "case {case}"
        );
    }
}

/// The alternating optimization stays feasible, serves everything, and
/// never ends above the origin-only cost.
#[test]
fn alternating_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x636f_3032 + case);
        let mut ri = random_instance(&mut rng);
        // Alternating needs capacities to be interesting but must stay
        // feasible: the builder's augmentation guarantees that.
        if ri.kappa_fraction.is_none() {
            ri.kappa_fraction = Some(0.05);
        }
        let inst = build(&ri);
        let result = Alternating {
            seed: ri.demand_seed,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap();
        let sol = &result.solution;
        assert!(sol.placement.is_feasible(&inst), "case {case}");
        assert!(sol.routing.serves_all(&inst), "case {case}");
        assert!(
            sol.routing.sources_valid(&inst, &sol.placement),
            "case {case}"
        );
        assert!(sol.routing.is_integral(), "case {case}");
        // History is non-increasing in cost and starts at the initial
        // solution.
        for w in result.history.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "case {case}");
        }
    }
}

/// Binary-cache Algorithm 2 obeys Theorem 4.7's cost bound for random
/// storers and K.
#[test]
fn alg2_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x636f_3033 + case);
        let mut ri = random_instance(&mut rng);
        let k = rng.gen_range(1..8u32);
        let storer_pick = rng.gen_range(0..3usize);
        ri.kappa_fraction = Some(ri.kappa_fraction.map_or(0.05, |f| f.max(0.03)));
        let inst = build(&ri);
        let cache_nodes = inst.cache_nodes();
        let storer = cache_nodes[storer_pick % cache_nodes.len()];
        let sol = alg2::solve_binary_caches(&inst, &[storer], k).unwrap();
        assert!(sol.solution.routing.serves_all(&inst), "case {case}");
        // Paths are chosen optimally for the Eq. (11) rounded-down demands
        // (each within a factor 2^{1/K} of the original), so routing the
        // original demands costs at most 2^{1/K} × the splittable optimum.
        let bound = 2f64.powf(1.0 / k as f64) * sol.splittable_cost;
        assert!(
            sol.solution.cost(&inst) <= bound + 1e-6,
            "case {case}: cost {} vs 2^(1/{k})·splittable = {bound}",
            sol.solution.cost(&inst)
        );
        // The unconstrained RNR cost floors everything.
        let floor = alg2::rnr_binary(&inst, &[storer]).unwrap().cost(&inst);
        assert!(sol.solution.cost(&inst) + 1e-6 >= floor, "case {case}");
    }
}

/// Serialization round-trips preserve solver behaviour.
#[test]
fn serialization_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x636f_3034 + case);
        let ri = random_instance(&mut rng);
        let inst = build(&ri);
        let back = jcr::core::serial::from_text(&jcr::core::serial::to_text(&inst)).unwrap();
        let a = Algorithm1::new().solve(&inst).unwrap().cost(&inst);
        let b = Algorithm1::new().solve(&back).unwrap().cost(&back);
        assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "case {case}");
    }
}
