//! Replays the committed regression corpus (`proptest-regressions/`) so
//! seeds that once exposed a bug run on every `cargo test` — a fixed
//! failure can never silently come back. See
//! `proptest-regressions/README.md` for the file formats and the
//! append-on-find workflow.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jcr::core::prelude::*;
use jcr::ctx::rng::{Rng, SeedableRng, StdRng};
use jcr::topo::Topology;
use jcr_bench::adversary;

/// Reads a corpus file, stripping `#` comments and blank lines.
fn corpus_lines(name: &str) -> Vec<String> {
    let path = format!("{}/proptest-regressions/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading corpus {path}: {e}"))
        .lines()
        .filter_map(|l| {
            let l = l.split('#').next().unwrap_or("").trim();
            (!l.is_empty()).then(|| l.to_string())
        })
        .collect()
}

/// Every `adversary.txt` entry replays panic-free with no unverified
/// claim (typed solver errors are acceptable — they are the contract).
#[test]
fn adversary_corpus_stays_fixed() {
    let lines = corpus_lines("adversary.txt");
    assert!(!lines.is_empty(), "adversary corpus must not be empty");
    for line in &lines {
        let (name, seed) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("corpus line {line:?}: want `<family> <seed>`"));
        let family = adversary::Family::by_name(name)
            .unwrap_or_else(|| panic!("corpus line {line:?}: unknown family {name:?}"));
        let seed: u64 = seed
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("corpus line {line:?}: bad seed: {e}"));
        match catch_unwind(AssertUnwindSafe(|| adversary::replay(family, seed))) {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => panic!("corpus {line}: unverified claim came back: {msg}"),
            Err(_) => panic!("corpus {line}: panic came back"),
        }
    }
}

/// Builds the same random edge-caching instance shape as
/// `tests/proptest_core.rs` from one corpus seed.
fn build_from_seed(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo_seed = rng.gen_range(0..200u64);
    let demand_seed = rng.gen_range(0..200u64);
    let n_items = rng.gen_range(2..10usize);
    let zeta = rng.gen_range(1.0..4.0f64);
    let alpha = rng.gen_range(0.2..1.5f64);
    let kappa: Option<f64> = if rng.gen_bool(0.5) {
        None
    } else {
        Some(rng.gen_range(0.02..0.2))
    };
    let topo = Topology::generate_custom(12, 16, 3, topo_seed).expect("shape is generator-valid");
    let mut b = InstanceBuilder::new(topo)
        .items(n_items)
        .cache_capacity(zeta)
        .zipf_demand(alpha, 500.0, demand_seed);
    b = match kappa {
        Some(fr) => b.link_capacity_fraction(fr),
        None => b.unlimited_links(),
    };
    b.build().expect("builder scenarios are feasible")
}

/// Every `core.txt` seed solves feasibly with verified certificates
/// through both Algorithm 1 and the alternating solver.
#[test]
fn core_corpus_stays_fixed() {
    let lines = corpus_lines("core.txt");
    assert!(!lines.is_empty(), "core corpus must not be empty");
    for line in &lines {
        let seed: u64 = line
            .parse()
            .unwrap_or_else(|e| panic!("corpus line {line:?}: bad seed: {e}"));
        let inst = build_from_seed(seed);

        let sol = Algorithm1::new()
            .solve(&inst)
            .unwrap_or_else(|e| panic!("seed {seed}: alg1 failed: {e}"));
        assert!(sol.placement.is_feasible(&inst), "seed {seed}");
        assert!(sol.routing.serves_all(&inst), "seed {seed}");
        let cert = certify_solution(&inst, &sol, false);
        assert!(
            cert.verified(),
            "seed {seed}: alg1 certificate: {}",
            cert.failure_summary()
        );

        let alt = Alternating {
            seed,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap_or_else(|e| panic!("seed {seed}: alternating failed: {e}"));
        assert!(
            alt.certificate.verified(),
            "seed {seed}: alternating certificate: {}",
            alt.certificate.failure_summary()
        );
    }
}
