//! Paper-scale end-to-end stress tests (`--ignored` by default; run with
//! `cargo test --release -- --ignored`): the full default chunk-level
//! setting (|C| = 54, ζ = 12, Abovenet-like) and the largest topology
//! (Deltacom-like, 113 nodes).

use jcr::core::alg2;
use jcr::core::prelude::*;
use jcr::topo::TopologyKind;
use jcr_bench::{build_instance, Scenario};

fn default_instance(kind: TopologyKind) -> Instance {
    let mut sc = Scenario::chunk_default();
    sc.kind = kind;
    sc.hours = 1;
    sc.gpr_window = 48;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    build_instance(&sc, &demand.true_rates(0, n_edges))
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn full_chunk_scale_abovenet() {
    let inst = default_instance(TopologyKind::Abovenet);
    assert_eq!(inst.num_items(), 54);
    assert_eq!(inst.requests.len(), 54 * 6);

    let alt = Alternating::new().solve(&inst).unwrap();
    assert!(alt.solution.routing.serves_all(&inst));
    assert!(alt.solution.placement.is_feasible(&inst));
    assert!(alt.solution.congestion(&inst) < 3.0);

    let mut sc = Scenario::chunk_default();
    sc.kappa_fraction = None;
    sc.hours = 1;
    sc.gpr_window = 48;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let uncap = build_instance(&sc, &demand.true_rates(0, n_edges));
    let alg1 = Algorithm1::new().solve(&uncap).unwrap();
    let sp = ShortestPathPlacement.solve(&uncap).unwrap();
    let ksp = IoannidisYeh::k_shortest(10).solve(&uncap).unwrap();
    assert!(alg1.cost(&uncap) <= ksp.cost(&uncap) + 1e-6);
    assert!(alg1.cost(&uncap) <= sp.cost(&uncap) + 1e-6);
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn full_chunk_scale_deltacom() {
    let inst = default_instance(TopologyKind::Deltacom);
    let alt = Alternating::new().solve(&inst).unwrap();
    assert!(alt.solution.routing.serves_all(&inst));
    assert!(alt.solution.placement.is_feasible(&inst));

    let storer = inst.cache_nodes()[0];
    let a2 = alg2::solve_binary_caches(&inst, &[storer], 1000).unwrap();
    assert!(a2.solution.cost(&inst) <= a2.splittable_cost + 1e-6);
    let rnr = alg2::rnr_binary(&inst, &[storer]).unwrap();
    assert!(
        a2.solution.congestion(&inst) < rnr.congestion(&inst),
        "Algorithm 2 must beat RNR's congestion at scale"
    );
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn multiple_full_replicas() {
    // §4.2 models "predetermined, geographically distributed backup
    // servers": several storers at once.
    let inst = default_instance(TopologyKind::Tinet);
    let storers: Vec<_> = inst.cache_nodes().into_iter().take(3).collect();
    let multi = alg2::solve_binary_caches(&inst, &storers, 100).unwrap();
    let single = alg2::solve_binary_caches(&inst, &storers[..1], 100).unwrap();
    assert!(multi.solution.routing.serves_all(&inst));
    // More replicas can only reduce the splittable optimum.
    assert!(multi.splittable_cost <= single.splittable_cost + 1e-6);
}
