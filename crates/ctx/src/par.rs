//! A deterministic chunked thread pool for the solver hot paths.
//!
//! The paper's evaluation is dominated by embarrassingly parallel work:
//! per-source all-pairs Dijkstra runs, per-commodity column-generation
//! pricing, and Monte-Carlo sweeps over seeds. This module fans such work
//! out over scoped threads (`std::thread::scope` + an mpsc channel, no
//! external dependencies) while keeping every observable output
//! **bit-identical for any worker count**:
//!
//! * each input index is mapped by a pure function of `(index, item)` —
//!   per-worker state carries only reusable buffers and instrumentation;
//! * results are merged **by input index**, never by completion order;
//! * work is claimed in chunks whose boundaries depend only on the item
//!   count ([`chunk_len`]), never on the worker count, so per-chunk
//!   spans and histograms are reproducible across `JCR_WORKERS`;
//! * a worker count of 1 (or a single item) takes the exact serial path:
//!   the closure runs on the calling thread against the caller's own
//!   [`SolverContext`], with no threads, channels, or atomics involved
//!   (it still walks the same chunk partition, entering the same
//!   [`CHUNK_SPAN`] spans, so traces keep one shape).
//!
//! Worker threads receive a context forked from the caller's
//! ([`SolverContext::fork_seed`]): same budget and deadline clock, private
//! counters and scratch arena. After the fan-out the caller absorbs every
//! worker's [`SolverStats`](crate::SolverStats) and observability
//! snapshot (spans graft under the span open at the call site — see
//! [`obs`](crate::obs)), so counter totals and span-tree shape are
//! identical to the serial path (both merge as order-independent sums).
//!
//! Errors cancel the pool: the first `Err` flips a shared flag, in-flight
//! workers stop at their next item, and the error with the **smallest
//! input index** is returned — so a tripped budget
//! ([`BudgetExceeded`](crate::BudgetExceeded)) surfaces promptly and the
//! caller can return its validated incumbent, exactly as on the serial
//! path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use crate::SolverContext;

/// Target number of chunks a fan-out is partitioned into, **independent
/// of the worker count**: chunk boundaries are a pure function of the
/// item count, so the `pool.chunk` span count and per-chunk latency
/// histogram are bit-identical across `JCR_WORKERS` settings. 64 chunks
/// keeps chunks small enough to balance uneven item costs at any
/// plausible worker count (the old `workers × 4` rule gave 4–64 chunks
/// depending on the machine) while still amortizing the atomic fetch;
/// see DESIGN.md §8 for the profile behind the change.
const POOL_CHUNKS: usize = 64;

/// Span entered around each chunk of a fan-out (on the worker context in
/// the parallel path, on the caller's context in the serial path).
pub const CHUNK_SPAN: &str = "pool.chunk";

/// `Nanos` histogram recording per-chunk wall time.
pub const CHUNK_NS: &str = "pool.chunk_ns";

/// The chunk length used for `n` items (`⌈n / 64⌉`, at least 1).
pub fn chunk_len(n: usize) -> usize {
    n.div_ceil(POOL_CHUNKS).max(1)
}

fn elapsed_nanos(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Maps `f` over `items`, merging results by input index.
///
/// Runs on `ctx.workers()` threads (clamped to the item count); a worker
/// count of 1 runs serially on the calling thread under `ctx` itself.
pub fn par_map<T, R, F>(ctx: &SolverContext, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&SolverContext, usize, &T) -> R + Sync,
{
    par_map_init(ctx, items, || (), |(), wctx, i, item| f(wctx, i, item))
}

/// [`par_map`] with per-worker state: `init` runs once on each worker
/// thread (scratch buffers, arenas) and the state is threaded through
/// every call that worker makes. State must not influence results.
pub fn par_map_init<T, R, S, I, F>(ctx: &SolverContext, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &SolverContext, usize, &T) -> R + Sync,
{
    let result: Result<Vec<R>, Unreachable> =
        try_par_map_init(ctx, items, init, |state, wctx, i, item| {
            Ok(f(state, wctx, i, item))
        });
    match result {
        Ok(out) => out,
        Err(never) => match never {},
    }
}

/// Fallible [`par_map`]: the first error cancels the pool and the error
/// with the smallest input index is returned.
///
/// # Errors
///
/// The lowest-index error any worker produced.
pub fn try_par_map<T, R, E, F>(ctx: &SolverContext, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&SolverContext, usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_init(ctx, items, || (), |(), wctx, i, item| f(wctx, i, item))
}

/// Fallible [`par_map_init`]: per-worker state plus cancel-on-error.
///
/// # Errors
///
/// The lowest-index error any worker produced.
pub fn try_par_map_init<T, R, E, S, I, F>(
    ctx: &SolverContext,
    items: &[T],
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &SolverContext, usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = ctx.workers().min(n.max(1));
    if workers <= 1 {
        // Exact serial path: same closure, caller's context, input order
        // — but iterated chunk-by-chunk through the same partition the
        // parallel path uses, entering the same per-chunk spans, so the
        // span tree shape matches for any worker count.
        let chunk = chunk_len(n);
        let mut state = init();
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let t0 = Instant::now();
            {
                let _chunk_span = ctx.span(CHUNK_SPAN);
                for (i, item) in items[start..end].iter().enumerate() {
                    out.push(f(&mut state, ctx, start + i, item)?);
                }
            }
            ctx.metric_nanos(CHUNK_NS, elapsed_nanos(t0));
            start = end;
        }
        return Ok(out);
    }

    let chunk = chunk_len(n);
    let cursor = AtomicUsize::new(0);
    let cancel = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let tx = tx.clone();
            let seed = ctx.fork_seed().for_worker(w as u32 + 1);
            let (cursor, cancel, init, f) = (&cursor, &cancel, &init, &f);
            handles.push(scope.spawn(move || {
                let wctx = seed.context();
                let mut state = init();
                let mut first_err: Option<(usize, E)> = None;
                'work: while !cancel.load(Ordering::Relaxed) {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    {
                        let _chunk_span = wctx.span(CHUNK_SPAN);
                        for (i, item) in items
                            .iter()
                            .enumerate()
                            .take((start + chunk).min(n))
                            .skip(start)
                        {
                            if cancel.load(Ordering::Relaxed) {
                                break 'work;
                            }
                            match f(&mut state, &wctx, i, item) {
                                Ok(r) => {
                                    // The receiver outlives every sender;
                                    // a send only fails after a
                                    // main-thread panic.
                                    let _ = tx.send((i, r));
                                }
                                Err(e) => {
                                    cancel.store(true, Ordering::Relaxed);
                                    first_err = Some((i, e));
                                    break 'work;
                                }
                            }
                        }
                    }
                    wctx.metric_nanos(CHUNK_NS, elapsed_nanos(t0));
                }
                (wctx.stats(), wctx.obs_snapshot(), first_err)
            }));
        }
        drop(tx);

        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        let mut err: Option<(usize, E)> = None;
        for handle in handles {
            let (stats, obs, worker_err) = match handle.join() {
                Ok(triple) => triple,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            ctx.absorb_stats(&stats);
            ctx.absorb_obs(&obs);
            if let Some((i, e)) = worker_err {
                if err.as_ref().is_none_or(|(j, _)| i < *j) {
                    err = Some((i, e));
                }
            }
        }
        match err {
            Some((_, e)) => Err(e),
            // No error and no cancellation: the cursor covered 0..n, so
            // every index was computed and sent exactly once.
            None => Ok(out
                .into_iter()
                .map(|slot| slot.expect("every index mapped"))
                .collect()),
        }
    })
}

/// An uninhabited error type for routing the infallible wrappers through
/// the fallible core (`std::convert::Infallible` under a local name so
/// the `match never {}` reads clearly).
enum Unreachable {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, BudgetExceeded, Counter, Phase};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn ctx_with(workers: usize) -> SolverContext {
        SolverContext::new().with_workers(workers)
    }

    #[test]
    fn results_merge_by_input_index_for_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let ctx = ctx_with(workers);
            let out = par_map(&ctx, &items, |_, i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let ctx = ctx_with(8);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&ctx, &empty, |_, _, &x| x).is_empty());
        assert_eq!(par_map(&ctx, &[41], |_, _, &x| x + 1), vec![42]);
    }

    #[test]
    fn worker_counters_are_absorbed_into_the_caller() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 4] {
            let ctx = ctx_with(workers);
            par_map(&ctx, &items, |wctx, _, _| {
                wctx.count(Counter::DijkstraCalls, 1);
            });
            assert_eq!(ctx.stats().dijkstra_calls, 100, "workers = {workers}");
        }
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        let items: Vec<u32> = (0..64).collect();
        let ctx = ctx_with(4);
        // Each worker's state counts its own calls; totals must cover all
        // items exactly once even though states are independent.
        let calls = AtomicU64::new(0);
        let out = par_map_init(
            &ctx,
            &items,
            || 0u64,
            |seen, _, _, &x| {
                *seen += 1;
                calls.fetch_add(1, Ordering::Relaxed);
                (x, *seen >= 1)
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert!(out.iter().all(|&(_, state_used)| state_used));
        assert_eq!(out.iter().map(|&(x, _)| x).sum::<u32>(), (0..64).sum());
    }

    #[test]
    fn lowest_index_error_wins_and_results_are_discarded() {
        let items: Vec<u32> = (0..500).collect();
        for workers in [1, 2, 8] {
            let ctx = ctx_with(workers);
            let err = try_par_map(
                &ctx,
                &items,
                |_, i, _| {
                    if i >= 250 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                },
            )
            .expect_err("half the items fail");
            // Serial stops at the first failing index; parallel workers may
            // each report one, but the smallest reported index is returned
            // and 250 is always reported by whichever worker owns it first.
            assert!(err >= 250, "workers = {workers}, err = {err}");
        }
        // Serial is exact.
        let ctx = ctx_with(1);
        let err = try_par_map(
            &ctx,
            &items,
            |_, i, _| if i >= 250 { Err(i) } else { Ok(i) },
        )
        .expect_err("fails");
        assert_eq!(err, 250);
    }

    #[test]
    fn budget_exceeded_in_a_worker_cancels_the_pool() {
        let items: Vec<u32> = (0..1000).collect();
        let ctx = SolverContext::with_budget(Budget::deadline(Duration::ZERO)).with_workers(8);
        let err: BudgetExceeded = try_par_map(&ctx, &items, |wctx, _, _| {
            wctx.check_deadline(Phase::Dijkstra)?;
            Ok(())
        })
        .expect_err("spent deadline trips every worker");
        assert_eq!(err.phase, Phase::Dijkstra);
    }

    #[test]
    fn serial_path_uses_the_callers_context_directly() {
        let ctx = ctx_with(1);
        let items = [1u32, 2, 3];
        par_map(&ctx, &items, |wctx, _, _| {
            // With one worker the closure sees the caller's context, so
            // iteration charges land on it directly.
            wctx.check(Phase::Rounding).unwrap();
        });
        assert_eq!(ctx.iterations(Phase::Rounding), 3);
    }
}
