//! A deterministic chunked thread pool for the solver hot paths.
//!
//! The paper's evaluation is dominated by embarrassingly parallel work:
//! per-source all-pairs Dijkstra runs, per-commodity column-generation
//! pricing, and Monte-Carlo sweeps over seeds. This module fans such work
//! out over scoped threads (`std::thread::scope` + an mpsc channel, no
//! external dependencies) while keeping every observable output
//! **bit-identical for any worker count**:
//!
//! * each input index is mapped by a pure function of `(index, item)` —
//!   per-worker state carries only reusable buffers and instrumentation;
//! * results are merged **by input index**, never by completion order;
//! * work is claimed in chunks whose boundaries depend only on the item
//!   count ([`chunk_len`]), never on the worker count, so per-chunk
//!   spans and histograms are reproducible across `JCR_WORKERS`;
//! * a worker count of 1 (or a single item) takes the exact serial path:
//!   the closure runs on the calling thread against the caller's own
//!   [`SolverContext`], with no threads, channels, or atomics involved
//!   (it still walks the same chunk partition, entering the same
//!   [`CHUNK_SPAN`] spans, so traces keep one shape).
//!
//! Worker threads receive a context forked from the caller's
//! ([`SolverContext::fork_seed`]): same budget and deadline clock, private
//! counters and scratch arena. After the fan-out the caller absorbs every
//! worker's [`SolverStats`](crate::SolverStats) and observability
//! snapshot (spans graft under the span open at the call site — see
//! [`obs`](crate::obs)), so counter totals and span-tree shape are
//! identical to the serial path (both merge as order-independent sums).
//!
//! Errors cancel the pool: the first `Err` flips a shared flag, in-flight
//! workers stop at their next item, and the error with the **smallest
//! input index** is returned — so a tripped budget
//! ([`BudgetExceeded`](crate::BudgetExceeded)) surfaces promptly and the
//! caller can return its validated incumbent, exactly as on the serial
//! path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use crate::SolverContext;

/// Target number of chunks a fan-out is partitioned into, **independent
/// of the worker count**: chunk boundaries are a pure function of the
/// item count, so the `pool.chunk` span count and per-chunk latency
/// histogram are bit-identical across `JCR_WORKERS` settings. 64 chunks
/// keeps chunks small enough to balance uneven item costs at any
/// plausible worker count (the old `workers × 4` rule gave 4–64 chunks
/// depending on the machine) while still amortizing the atomic fetch;
/// see DESIGN.md §8 for the profile behind the change.
const POOL_CHUNKS: usize = 64;

/// Span entered around each chunk of a fan-out (on the worker context in
/// the parallel path, on the caller's context in the serial path).
pub const CHUNK_SPAN: &str = "pool.chunk";

/// `Nanos` histogram recording per-chunk wall time.
pub const CHUNK_NS: &str = "pool.chunk_ns";

// Per-region accounting, recorded under whatever span is open at the
// call site (worker metrics graft there with the worker's span tree).
// The `Count` metrics below depend only on the item count — the chunk
// partition is a pure function of `n` — so they are part of the
// `shape()` determinism contract across `JCR_WORKERS`; the `Nanos`
// histograms and gauges measure wall clock and are not.

/// Counter: parallel regions entered (one per fan-out, serial or not).
pub const REGIONS: &str = "pool.regions";

/// Counter: chunks the region partitions produced.
pub const CHUNKS: &str = "pool.chunks";

/// Counter: items fanned out.
pub const ITEMS: &str = "pool.items";

/// `Count` histogram: items per chunk (width-independent).
pub const CHUNK_LEN: &str = "pool.chunk_len";

/// `Nanos` histogram: per-chunk start offset from its region's start.
pub const CHUNK_START_NS: &str = "pool.chunk_start_ns";

/// `Nanos` histogram: per-chunk end offset from its region's start.
pub const CHUNK_END_NS: &str = "pool.chunk_end_ns";

/// `Nanos` histogram: per-worker busy time (sum of its chunk
/// durations) per region. One observation per worker per region.
pub const WORKER_BUSY_NS: &str = "pool.worker_busy_ns";

/// `Nanos` histogram: per-worker idle tail per region — region wall
/// minus busy minus steal-wait. One observation per worker per region.
pub const WORKER_IDLE_NS: &str = "pool.worker_idle_ns";

/// `Nanos` histogram: per-worker time spent between chunks claiming
/// work at the shared cursor. One observation per worker per region;
/// exactly 0 on the serial path.
pub const STEAL_WAIT_NS: &str = "pool.steal_wait_ns";

/// `Nanos` histogram: wall clock of each region (spawn to last join).
pub const REGION_WALL_NS: &str = "pool.region_wall_ns";

/// Gauge (max-merged): worst region imbalance seen, max worker busy ÷
/// mean worker busy. 1.0 is perfectly balanced; `workers` is one
/// worker doing everything.
pub const IMBALANCE: &str = "pool.imbalance";

/// Gauge (max-merged): longest single chunk seen, nanoseconds — the
/// critical-path lower bound no worker width can beat.
pub const CRITICAL_CHUNK_NS: &str = "pool.critical_chunk_ns";

/// The chunk length used for `n` items (`⌈n / 64⌉`, at least 1).
pub fn chunk_len(n: usize) -> usize {
    n.div_ceil(POOL_CHUNKS).max(1)
}

fn elapsed_nanos(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn nanos_between(a: Instant, b: Instant) -> u64 {
    b.saturating_duration_since(a)
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// What one worker (or the serial path) did inside a region; the
/// caller folds these into the region summary after the joins.
#[derive(Clone, Copy, Default)]
struct WorkerLog {
    busy_ns: u64,
    steal_ns: u64,
    max_chunk_ns: u64,
}

/// Records the caller-side region summary: region wall, per-worker
/// idle tails, and the max-merged imbalance / critical-chunk gauges.
fn finish_region(ctx: &SolverContext, region_t0: Instant, logs: &[WorkerLog]) {
    let wall = elapsed_nanos(region_t0);
    ctx.metric_nanos(REGION_WALL_NS, wall);
    let mut max_busy = 0u64;
    let mut total_busy = 0u64;
    let mut max_chunk = 0u64;
    for log in logs {
        ctx.metric_nanos(
            WORKER_IDLE_NS,
            wall.saturating_sub(log.busy_ns + log.steal_ns),
        );
        max_busy = max_busy.max(log.busy_ns);
        total_busy += log.busy_ns;
        max_chunk = max_chunk.max(log.max_chunk_ns);
    }
    let mean_busy = total_busy as f64 / logs.len().max(1) as f64;
    let imbalance = if total_busy == 0 {
        1.0
    } else {
        max_busy as f64 / mean_busy
    };
    ctx.obs().set_gauge_max(IMBALANCE, imbalance);
    ctx.obs().set_gauge_max(CRITICAL_CHUNK_NS, max_chunk as f64);
}

/// Maps `f` over `items`, merging results by input index.
///
/// Runs on `ctx.workers()` threads (clamped to the item count); a worker
/// count of 1 runs serially on the calling thread under `ctx` itself.
pub fn par_map<T, R, F>(ctx: &SolverContext, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&SolverContext, usize, &T) -> R + Sync,
{
    par_map_init(ctx, items, || (), |(), wctx, i, item| f(wctx, i, item))
}

/// [`par_map`] with per-worker state: `init` runs once on each worker
/// thread (scratch buffers, arenas) and the state is threaded through
/// every call that worker makes. State must not influence results.
pub fn par_map_init<T, R, S, I, F>(ctx: &SolverContext, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &SolverContext, usize, &T) -> R + Sync,
{
    let result: Result<Vec<R>, Unreachable> =
        try_par_map_init(ctx, items, init, |state, wctx, i, item| {
            Ok(f(state, wctx, i, item))
        });
    match result {
        Ok(out) => out,
        Err(never) => match never {},
    }
}

/// Fallible [`par_map`]: the first error cancels the pool and the error
/// with the smallest input index is returned.
///
/// # Errors
///
/// The lowest-index error any worker produced.
pub fn try_par_map<T, R, E, F>(ctx: &SolverContext, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&SolverContext, usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_init(ctx, items, || (), |(), wctx, i, item| f(wctx, i, item))
}

/// Fallible [`par_map_init`]: per-worker state plus cancel-on-error.
///
/// # Errors
///
/// The lowest-index error any worker produced.
pub fn try_par_map_init<T, R, E, S, I, F>(
    ctx: &SolverContext,
    items: &[T],
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &SolverContext, usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let workers = ctx.workers().min(n.max(1));
    let chunk = chunk_len(n);
    let region_t0 = Instant::now();
    // Region counters are pure functions of the item count, recorded on
    // the caller before any work starts so they land identically at
    // every width (and on the error path).
    ctx.obs().add_counter(REGIONS, 1);
    ctx.obs()
        .add_counter(CHUNKS, n.div_ceil(chunk.max(1)) as u64);
    ctx.obs().add_counter(ITEMS, n as u64);
    if workers <= 1 {
        // Exact serial path: same closure, caller's context, input order
        // — but iterated chunk-by-chunk through the same partition the
        // parallel path uses, entering the same per-chunk spans and
        // recording the same per-chunk/per-worker accounting (one
        // "worker": the caller, with zero steal-wait), so the span tree
        // shape and the Count metrics match for any worker count.
        let mut state = init();
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        let mut log = WorkerLog::default();
        let mut err: Option<E> = None;
        'chunks: while start < n {
            let end = (start + chunk).min(n);
            ctx.metric_value(CHUNK_LEN, (end - start) as u64);
            let t0 = Instant::now();
            ctx.metric_nanos(CHUNK_START_NS, nanos_between(region_t0, t0));
            {
                let _chunk_span = ctx.span(CHUNK_SPAN);
                for (i, item) in items[start..end].iter().enumerate() {
                    match f(&mut state, ctx, start + i, item) {
                        Ok(r) => out.push(r),
                        Err(e) => {
                            err = Some(e);
                            break 'chunks;
                        }
                    }
                }
            }
            let t1 = Instant::now();
            let dur = nanos_between(t0, t1);
            ctx.metric_nanos(CHUNK_NS, dur);
            ctx.metric_nanos(CHUNK_END_NS, nanos_between(region_t0, t1));
            log.busy_ns += dur;
            log.max_chunk_ns = log.max_chunk_ns.max(dur);
            start = end;
        }
        ctx.metric_nanos(WORKER_BUSY_NS, log.busy_ns);
        ctx.metric_nanos(STEAL_WAIT_NS, log.steal_ns);
        finish_region(ctx, region_t0, &[log]);
        return match err {
            Some(e) => Err(e),
            None => Ok(out),
        };
    }

    let cursor = AtomicUsize::new(0);
    let cancel = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let tx = tx.clone();
            let seed = ctx.fork_seed().for_worker(w as u32 + 1);
            let (cursor, cancel, init, f) = (&cursor, &cancel, &init, &f);
            handles.push(scope.spawn(move || {
                let wctx = seed.context();
                let mut state = init();
                let mut first_err: Option<(usize, E)> = None;
                let mut log = WorkerLog::default();
                // Time between finishing one chunk and starting the next
                // is steal-wait (cursor contention + spawn latency).
                let mut last_end = Instant::now();
                'work: while !cancel.load(Ordering::Relaxed) {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let t0 = Instant::now();
                    log.steal_ns += nanos_between(last_end, t0);
                    wctx.metric_value(CHUNK_LEN, (end - start) as u64);
                    wctx.metric_nanos(CHUNK_START_NS, nanos_between(region_t0, t0));
                    {
                        let _chunk_span = wctx.span(CHUNK_SPAN);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            if cancel.load(Ordering::Relaxed) {
                                break 'work;
                            }
                            match f(&mut state, &wctx, i, item) {
                                Ok(r) => {
                                    // The receiver outlives every sender;
                                    // a send only fails after a
                                    // main-thread panic.
                                    let _ = tx.send((i, r));
                                }
                                Err(e) => {
                                    cancel.store(true, Ordering::Relaxed);
                                    first_err = Some((i, e));
                                    break 'work;
                                }
                            }
                        }
                    }
                    let t1 = Instant::now();
                    let dur = nanos_between(t0, t1);
                    wctx.metric_nanos(CHUNK_NS, dur);
                    wctx.metric_nanos(CHUNK_END_NS, nanos_between(region_t0, t1));
                    log.busy_ns += dur;
                    log.max_chunk_ns = log.max_chunk_ns.max(dur);
                    last_end = t1;
                }
                wctx.metric_nanos(WORKER_BUSY_NS, log.busy_ns);
                wctx.metric_nanos(STEAL_WAIT_NS, log.steal_ns);
                (wctx.stats(), wctx.obs_snapshot(), first_err, log)
            }));
        }
        drop(tx);

        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        let mut err: Option<(usize, E)> = None;
        let mut logs = Vec::with_capacity(workers);
        for handle in handles {
            let (stats, obs, worker_err, log) = match handle.join() {
                Ok(tuple) => tuple,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            ctx.absorb_stats(&stats);
            ctx.absorb_obs(&obs);
            logs.push(log);
            if let Some((i, e)) = worker_err {
                if err.as_ref().is_none_or(|(j, _)| i < *j) {
                    err = Some((i, e));
                }
            }
        }
        finish_region(ctx, region_t0, &logs);
        match err {
            Some((_, e)) => Err(e),
            // No error and no cancellation: the cursor covered 0..n, so
            // every index was computed and sent exactly once.
            None => Ok(out
                .into_iter()
                .map(|slot| slot.expect("every index mapped"))
                .collect()),
        }
    })
}

/// An uninhabited error type for routing the infallible wrappers through
/// the fallible core (`std::convert::Infallible` under a local name so
/// the `match never {}` reads clearly).
enum Unreachable {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Unit;
    use crate::{Budget, BudgetExceeded, Counter, Phase};
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn ctx_with(workers: usize) -> SolverContext {
        SolverContext::new().with_workers(workers)
    }

    #[test]
    fn results_merge_by_input_index_for_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let ctx = ctx_with(workers);
            let out = par_map(&ctx, &items, |_, i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let ctx = ctx_with(8);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&ctx, &empty, |_, _, &x| x).is_empty());
        assert_eq!(par_map(&ctx, &[41], |_, _, &x| x + 1), vec![42]);
    }

    #[test]
    fn worker_counters_are_absorbed_into_the_caller() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 4] {
            let ctx = ctx_with(workers);
            par_map(&ctx, &items, |wctx, _, _| {
                wctx.count(Counter::DijkstraCalls, 1);
            });
            assert_eq!(ctx.stats().dijkstra_calls, 100, "workers = {workers}");
        }
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        let items: Vec<u32> = (0..64).collect();
        let ctx = ctx_with(4);
        // Each worker's state counts its own calls; totals must cover all
        // items exactly once even though states are independent.
        let calls = AtomicU64::new(0);
        let out = par_map_init(
            &ctx,
            &items,
            || 0u64,
            |seen, _, _, &x| {
                *seen += 1;
                calls.fetch_add(1, Ordering::Relaxed);
                (x, *seen >= 1)
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 64);
        assert!(out.iter().all(|&(_, state_used)| state_used));
        assert_eq!(out.iter().map(|&(x, _)| x).sum::<u32>(), (0..64).sum());
    }

    #[test]
    fn lowest_index_error_wins_and_results_are_discarded() {
        let items: Vec<u32> = (0..500).collect();
        for workers in [1, 2, 8] {
            let ctx = ctx_with(workers);
            let err = try_par_map(
                &ctx,
                &items,
                |_, i, _| {
                    if i >= 250 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                },
            )
            .expect_err("half the items fail");
            // Serial stops at the first failing index; parallel workers may
            // each report one, but the smallest reported index is returned
            // and 250 is always reported by whichever worker owns it first.
            assert!(err >= 250, "workers = {workers}, err = {err}");
        }
        // Serial is exact.
        let ctx = ctx_with(1);
        let err = try_par_map(
            &ctx,
            &items,
            |_, i, _| if i >= 250 { Err(i) } else { Ok(i) },
        )
        .expect_err("fails");
        assert_eq!(err, 250);
    }

    #[test]
    fn budget_exceeded_in_a_worker_cancels_the_pool() {
        let items: Vec<u32> = (0..1000).collect();
        let ctx = SolverContext::with_budget(Budget::deadline(Duration::ZERO)).with_workers(8);
        let err: BudgetExceeded = try_par_map(&ctx, &items, |wctx, _, _| {
            wctx.check_deadline(Phase::Dijkstra)?;
            Ok(())
        })
        .expect_err("spent deadline trips every worker");
        assert_eq!(err.phase, Phase::Dijkstra);
    }

    #[test]
    fn pool_accounting_is_width_independent_in_shape() {
        let items: Vec<u64> = (0..257).collect();
        let run = |workers: usize| {
            let ctx = ctx_with(workers);
            {
                let _s = ctx.span("fanout");
                par_map(&ctx, &items, |_, _, &x| x + 1);
            }
            ctx.obs_snapshot()
        };
        let shapes: Vec<String> = [1, 2, 8].iter().map(|&w| run(w).shape()).collect();
        assert_eq!(shapes[0], shapes[1]);
        assert_eq!(shapes[1], shapes[2]);
        let snap = run(8);
        // The deterministic Count side: one region, 64 chunks of ⌈257/64⌉
        // = 5 items (the last one short), 257 items.
        assert_eq!(snap.counters[REGIONS], 1);
        assert_eq!(snap.counters[CHUNKS], 52, "257 items in chunks of 5");
        assert_eq!(snap.counters[ITEMS], 257);
        let lens = &snap.histograms[CHUNK_LEN];
        assert_eq!(lens.unit(), Unit::Count);
        assert_eq!(lens.count(), 52);
        assert_eq!(lens.sum(), 257);
        // The wall-clock side exists at every width with one observation
        // per worker per region (8 workers here), plus the region wall
        // and the max-merged gauges.
        for name in [WORKER_BUSY_NS, WORKER_IDLE_NS, STEAL_WAIT_NS] {
            assert_eq!(snap.histograms[name].count(), 8, "{name}");
            assert_eq!(snap.histograms[name].unit(), Unit::Nanos);
        }
        assert_eq!(snap.histograms[REGION_WALL_NS].count(), 1);
        assert_eq!(snap.histograms[CHUNK_START_NS].count(), 52);
        assert_eq!(snap.histograms[CHUNK_END_NS].count(), 52);
        assert!(snap.gauges[IMBALANCE] >= 1.0);
        assert!(snap.gauges.contains_key(CRITICAL_CHUNK_NS));
        // Serial records the same accounting for its single "worker".
        let serial = run(1);
        assert_eq!(serial.histograms[WORKER_BUSY_NS].count(), 1);
        assert_eq!(serial.histograms[STEAL_WAIT_NS].sum(), 0);
        assert_eq!(serial.gauges[IMBALANCE], 1.0);
    }

    #[test]
    fn region_accounting_covers_the_error_path() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 4] {
            let ctx = ctx_with(workers);
            let _ = try_par_map(
                &ctx,
                &items,
                |_, i, _| {
                    if i == 7 {
                        Err("boom")
                    } else {
                        Ok(i)
                    }
                },
            );
            let snap = ctx.obs_snapshot();
            assert_eq!(snap.counters[REGIONS], 1, "workers = {workers}");
            assert_eq!(snap.histograms[REGION_WALL_NS].count(), 1);
        }
    }

    #[test]
    fn serial_path_uses_the_callers_context_directly() {
        let ctx = ctx_with(1);
        let items = [1u32, 2, 3];
        par_map(&ctx, &items, |wctx, _, _| {
            // With one worker the closure sees the caller's context, so
            // iteration charges land on it directly.
            wctx.check(Phase::Rounding).unwrap();
        });
        assert_eq!(ctx.iterations(Phase::Rounding), 3);
    }
}
