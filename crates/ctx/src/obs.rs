//! Hierarchical span tracing and a metrics registry for the solver stack.
//!
//! The flat [`Counter`](crate::Counter)/[`Phase`](crate::Phase) stream
//! answers *whether* a solve stayed within budget; this module answers
//! *where the time went*. Three pieces:
//!
//! * **Spans** — [`SolverContext::span`](crate::SolverContext::span)
//!   returns an RAII guard; guards nest, forming a tree. Two records are
//!   kept per context: a deterministic **aggregate tree** (one node per
//!   distinct `parent → name` edge, accumulating call count, total time,
//!   and child time so self-time falls out as `total − child`) and a flat
//!   **event log** of completed spans for Chrome-trace export. Tree
//!   *shape* and call counts are reproducible for any worker count — only
//!   durations vary — because [`par`](crate::par) partitions work into
//!   chunks independently of the worker count and worker trees are merged
//!   into the spawning span by name (a commutative sum).
//! * **Metrics** — named monotonic counters, gauges (merge = max), and
//!   fixed-bucket log₂ histograms ([`Histogram`]): one bucket per power
//!   of two, so recording is a handful of arithmetic ops and merging is a
//!   bucket-wise sum. Histograms carry a [`Unit`]; `Count` histograms are
//!   deterministic, `Nanos` histograms measure wall clock and are not.
//! * **Snapshots** — [`ObsSnapshot`] is a `Send` copy of everything
//!   above. Worker threads return one and the caller grafts it under its
//!   currently open span ([`SolverContext::absorb_obs`]); exporters
//!   (Chrome Trace Event JSON, collapsed stacks — see `jcr_bench`) render
//!   snapshots without touching the live context.
//!
//! Overhead: a span is two `Instant::now` calls plus an arena update and
//! one event-log push; a histogram record is a `BTreeMap` probe over a
//! handful of short static keys. Both are kept on in release builds; the
//! event log is capped ([`MAX_EVENTS`]) so long online runs degrade to
//! aggregate-only recording instead of growing without bound.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::SolverContext;

#[path = "wire.rs"]
pub mod wire;

/// Completed-span event-log cap per context. Beyond this, spans still
/// feed the aggregate tree but no longer append events;
/// [`ObsSnapshot::dropped_events`] counts the overflow.
pub const MAX_EVENTS: usize = 1 << 20;

/// What a histogram's values measure. `Count` histograms are
/// deterministic for a deterministic solve; `Nanos` histograms record
/// wall clock and are excluded from reproducibility assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Dimensionless counts (heap pops, fill-in, …).
    Count,
    /// Wall-clock nanoseconds.
    Nanos,
}

impl Unit {
    /// Stable name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanos => "nanos",
        }
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k)`, and bucket 64 tops out at
/// `u64::MAX`.
pub const NBUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram. Recording is branch-free arithmetic on
/// a 65-slot array; merging is a bucket-wise sum, so parallel snapshots
/// combine commutatively.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    unit: Unit,
    buckets: [u64; NBUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// The bucket index for `value`: 0 for 0, otherwise one past the index
/// of the highest set bit (`64 − leading_zeros`).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The smallest value bucket `i` admits.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// The largest value bucket `i` admits.
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram measuring `unit`.
    pub fn new(unit: Unit) -> Self {
        Histogram {
            unit,
            buckets: [0; NBUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Accumulates another histogram (units must match).
    pub fn absorb(&mut self, other: &Histogram) {
        debug_assert_eq!(self.unit, other.unit);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The unit of recorded values.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts, indexed by [`bucket_index`].
    pub fn buckets(&self) -> &[u64; NBUCKETS] {
        &self.buckets
    }

    /// An upper bound on the `q`-quantile. The edge contract is exact:
    /// `q ≤ 0` returns the recorded minimum and `q ≥ 1` the recorded
    /// maximum — real observed values, never a bucket bound — and an
    /// empty histogram returns 0 for every `q`. Interior quantiles
    /// return the upper edge of the first bucket whose cumulative count
    /// reaches `q · count`, clamped into `[min, max]`. Deterministic
    /// given bucket counts.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Reassembles a histogram from serialized parts, validating that
    /// the bucket mass matches `count` and that `min ≤ max` when
    /// non-empty. `min` is the *reported* minimum (0 for an empty
    /// histogram, as [`Histogram::min`] returns it).
    pub fn from_parts(
        unit: Unit,
        buckets: [u64; NBUCKETS],
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Result<Histogram, String> {
        let mass: u128 = buckets.iter().map(|&c| c as u128).sum();
        if mass != count as u128 {
            return Err(format!("histogram bucket mass {mass} != count {count}"));
        }
        if count > 0 && min > max {
            return Err(format!("histogram min {min} > max {max}"));
        }
        Ok(Histogram {
            unit,
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max: if count == 0 { 0 } else { max },
        })
    }
}

/// One node of the aggregate span tree. Node 0 is the synthetic root
/// (the context itself); every other node is a distinct `parent → name`
/// edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (the root's is `""`).
    pub name: &'static str,
    /// Child node indices, in first-entry order.
    pub children: Vec<usize>,
    /// Completed entries into this span.
    pub count: u64,
    /// Total wall time spent inside, nanoseconds.
    pub total_nanos: u64,
    /// Wall time attributed to direct children, nanoseconds. Self time
    /// is `total_nanos − child_nanos` (saturating).
    pub child_nanos: u64,
}

impl SpanNode {
    fn new(name: &'static str) -> Self {
        SpanNode {
            name,
            children: Vec::new(),
            count: 0,
            total_nanos: 0,
            child_nanos: 0,
        }
    }

    /// Wall time not attributed to any child span, nanoseconds.
    pub fn self_nanos(&self) -> u64 {
        self.total_nanos.saturating_sub(self.child_nanos)
    }
}

/// One completed span in the flat event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: &'static str,
    /// Start, nanoseconds since the root context's epoch.
    pub start_nanos: u64,
    /// End, nanoseconds since the root context's epoch.
    pub end_nanos: u64,
    /// Thread lane: 0 for the spawning context, worker index + 1 for
    /// pool workers.
    pub tid: u32,
}

/// The live observability state owned by a [`SolverContext`].
#[derive(Debug)]
pub struct Obs {
    epoch: Instant,
    tid: u32,
    inner: RefCell<ObsInner>,
}

#[derive(Debug)]
struct ObsInner {
    nodes: Vec<SpanNode>,
    /// Indices of the currently open spans, innermost last. The implicit
    /// root (node 0) is always open.
    stack: Vec<usize>,
    events: Vec<SpanEvent>,
    dropped_events: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Obs {
    /// Fresh state; `epoch` anchors event timestamps and `tid` labels the
    /// lane events from this context belong to.
    pub fn new(epoch: Instant, tid: u32) -> Self {
        Obs {
            epoch,
            tid,
            inner: RefCell::new(ObsInner {
                nodes: vec![SpanNode::new("")],
                stack: vec![0],
                events: Vec::new(),
                dropped_events: 0,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    /// The event-timestamp epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Opens a span named `name` under the innermost open span, returning
    /// the node index for [`Obs::exit`].
    pub fn enter(&self, name: &'static str) -> usize {
        let mut inner = self.inner.borrow_mut();
        let parent = *inner.stack.last().expect("root always open");
        let node = match inner.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| inner.nodes[c].name == name)
        {
            Some(existing) => existing,
            None => {
                let idx = inner.nodes.len();
                inner.nodes.push(SpanNode::new(name));
                inner.nodes[parent].children.push(idx);
                idx
            }
        };
        inner.stack.push(node);
        node
    }

    /// Closes the span opened as `node`, charging `start..end` (both in
    /// nanoseconds since the epoch) to it and to its parent's child time.
    pub fn exit(&self, node: usize, start_nanos: u64, end_nanos: u64) {
        let mut inner = self.inner.borrow_mut();
        let popped = inner.stack.pop().expect("span stack underflow");
        debug_assert_eq!(popped, node, "span guards must drop in LIFO order");
        let nanos = end_nanos.saturating_sub(start_nanos);
        let entry = &mut inner.nodes[node];
        entry.count += 1;
        entry.total_nanos += nanos;
        let parent = *inner.stack.last().expect("root always open");
        inner.nodes[parent].child_nanos += nanos;
        if inner.events.len() < MAX_EVENTS {
            let name = inner.nodes[node].name;
            let tid = self.tid;
            inner.events.push(SpanEvent {
                name,
                start_nanos,
                end_nanos,
                tid,
            });
        } else {
            inner.dropped_events += 1;
        }
    }

    /// Advances the named monotonic counter.
    pub fn add_counter(&self, name: &'static str, by: u64) {
        *self.inner.borrow_mut().counters.entry(name).or_insert(0) += by;
    }

    /// Sets the named gauge (merges as max across snapshots).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        self.inner.borrow_mut().gauges.insert(name, value);
    }

    /// Raises the named gauge to `value` if it exceeds the current
    /// reading — the in-context analogue of the max-merge snapshots use,
    /// for gauges that should keep the worst observation (e.g. the most
    /// imbalanced parallel region) rather than the latest.
    pub fn set_gauge_max(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.borrow_mut();
        let slot = inner.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    }

    /// Records one observation into the named histogram.
    pub fn record(&self, name: &'static str, unit: Unit, value: u64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(unit))
            .record(value);
    }

    /// A `Send` copy of everything recorded so far. Open spans are not
    /// included — snapshot at a quiescent point (top level, or between
    /// chunks on a worker after its last guard dropped).
    pub fn snapshot(&self) -> ObsSnapshot {
        let inner = self.inner.borrow();
        ObsSnapshot {
            epoch: self.epoch,
            nodes: inner.nodes.clone(),
            events: inner.events.clone(),
            dropped_events: inner.dropped_events,
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Grafts `snap` into this state: the snapshot root's children merge
    /// (by name, recursively) under the innermost open span; counters and
    /// histograms sum, gauges take the max; events re-base onto this
    /// epoch, and lane 0 events inherit this context's lane (a snapshot
    /// absorbed by a pool worker ran *on* that worker's thread).
    pub fn absorb(&self, snap: &ObsSnapshot) {
        let mut inner = self.inner.borrow_mut();
        let under = *inner.stack.last().expect("root always open");
        graft(&mut inner.nodes, under, &snap.nodes, 0);
        let offset = snap
            .epoch
            .checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        for (taken, ev) in snap.events.iter().enumerate() {
            if inner.events.len() >= MAX_EVENTS {
                inner.dropped_events += (snap.events.len() - taken) as u64;
                break;
            }
            inner.events.push(SpanEvent {
                name: ev.name,
                start_nanos: ev.start_nanos.saturating_add(offset),
                end_nanos: ev.end_nanos.saturating_add(offset),
                tid: if ev.tid == 0 { self.tid } else { ev.tid },
            });
        }
        inner.dropped_events += snap.dropped_events;
        for (&name, &by) in &snap.counters {
            *inner.counters.entry(name).or_insert(0) += by;
        }
        for (&name, &value) in &snap.gauges {
            let slot = inner.gauges.entry(name).or_insert(f64::NEG_INFINITY);
            if value > *slot {
                *slot = value;
            }
        }
        for (&name, hist) in &snap.histograms {
            inner
                .histograms
                .entry(name)
                .or_insert_with(|| Histogram::new(hist.unit()))
                .absorb(hist);
        }
    }
}

/// Merges the subtree of `src[src_node]`'s children under `dst[under]`,
/// matching children by name and summing their statistics.
fn graft(dst: &mut Vec<SpanNode>, under: usize, src: &[SpanNode], src_node: usize) {
    for &sc in &src[src_node].children.clone() {
        let name = src[sc].name;
        let target = match dst[under]
            .children
            .iter()
            .copied()
            .find(|&c| dst[c].name == name)
        {
            Some(existing) => existing,
            None => {
                let idx = dst.len();
                dst.push(SpanNode::new(name));
                dst[under].children.push(idx);
                idx
            }
        };
        dst[target].count += src[sc].count;
        dst[target].total_nanos += src[sc].total_nanos;
        // child_nanos is NOT copied: the recursive call's trailing line
        // reconstructs it from the grafted children's totals (the two are
        // equal by the exit() invariant), avoiding a double count.
        graft(dst, target, src, sc);
    }
    // Grafted child time counts toward the receiving span's child time,
    // mirroring what direct execution under it would have recorded.
    dst[under].child_nanos += src[src_node]
        .children
        .iter()
        .map(|&c| src[c].total_nanos)
        .sum::<u64>();
}

/// A `Send` snapshot of a context's spans, events, and metrics.
#[derive(Clone, Debug)]
pub struct ObsSnapshot {
    /// Epoch the event timestamps are relative to.
    pub epoch: Instant,
    /// Aggregate span tree; node 0 is the synthetic root.
    pub nodes: Vec<SpanNode>,
    /// Flat log of completed spans (capped at [`MAX_EVENTS`]).
    pub events: Vec<SpanEvent>,
    /// Spans that completed after the event log filled up.
    pub dropped_events: u64,
    /// Named monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named gauges.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Named histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl ObsSnapshot {
    /// A canonical description of the deterministic part of the
    /// snapshot: the span tree (names and counts, children sorted by
    /// name), named counters, and `Count`-unit histograms. Two solves
    /// are reproducibility-equivalent iff their shapes are equal;
    /// durations, gauges, and `Nanos` histograms are excluded.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        self.shape_node(0, 0, &mut out);
        for (name, by) in &self.counters {
            let _ = writeln!(out, "counter {name} = {by}");
        }
        for (name, hist) in &self.histograms {
            if hist.unit() == Unit::Count {
                let _ = write!(out, "hist {name} n={} sum={}", hist.count(), hist.sum());
                for (i, &c) in hist.buckets().iter().enumerate() {
                    if c > 0 {
                        let _ = write!(out, " b{i}:{c}");
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    fn shape_node(&self, node: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[node];
        let label = if n.name.is_empty() { "<root>" } else { n.name };
        let _ = writeln!(
            out,
            "{:indent$}{label} x{}",
            "",
            n.count,
            indent = depth * 2
        );
        let mut kids = n.children.clone();
        kids.sort_by_key(|&c| self.nodes[c].name);
        for c in kids {
            self.shape_node(c, depth + 1, out);
        }
    }

    /// Total wall time recorded at the root's direct children (the
    /// top-level spans), nanoseconds.
    pub fn total_span_nanos(&self) -> u64 {
        self.nodes[0]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_nanos)
            .sum()
    }

    /// Canonical, versioned serialization of the aggregate state —
    /// span tree, counters, gauges (exact f64 bits), and histograms.
    /// The event log is *not* serialized; export it via the
    /// Chrome-trace path instead. See [`wire`] for the format.
    pub fn to_wire(&self) -> String {
        wire::WireSnapshot::from_snapshot(self).render()
    }

    /// Deterministic deep equality on the aggregate state: the span
    /// tree (canonically ordered, exact counts and nanosecond totals),
    /// counters, gauge bit patterns, and full histogram contents. The
    /// event log and epoch are excluded — use [`ObsSnapshot::shape`]
    /// for the width-independent determinism contract instead.
    pub fn deep_eq(&self, other: &ObsSnapshot) -> bool {
        wire::WireSnapshot::from_snapshot(self) == wire::WireSnapshot::from_snapshot(other)
    }
}

/// RAII guard returned by [`SolverContext::span`]; closes the span when
/// dropped.
pub struct SpanGuard<'a> {
    ctx: &'a SolverContext,
    node: usize,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(ctx: &'a SolverContext, name: &'static str) -> Self {
        let node = ctx.obs().enter(name);
        SpanGuard {
            ctx,
            node,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let obs = self.ctx.obs();
        let end = Instant::now();
        let nanos_since = |t: Instant| {
            t.checked_duration_since(obs.epoch())
                .map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64)
        };
        obs.exit(self.node, nanos_since(self.start), nanos_since(end));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolverContext;

    #[test]
    fn spans_nest_and_aggregate() {
        let ctx = SolverContext::default();
        {
            let _outer = ctx.span("outer");
            for _ in 0..3 {
                let _inner = ctx.span("inner");
            }
        }
        {
            let _outer = ctx.span("outer");
        }
        let snap = ctx.obs_snapshot();
        let root = &snap.nodes[0];
        assert_eq!(root.children.len(), 1);
        let outer = &snap.nodes[root.children[0]];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 2);
        assert_eq!(outer.children.len(), 1);
        let inner = &snap.nodes[outer.children[0]];
        assert_eq!((inner.name, inner.count), ("inner", 3));
        assert!(outer.total_nanos >= outer.child_nanos);
        assert_eq!(inner.self_nanos(), inner.total_nanos);
        assert_eq!(snap.events.len(), 5, "three inner + two outer");
        // Events close in LIFO order: all inner events precede the first
        // outer event.
        assert!(snap.events[..3].iter().all(|e| e.name == "inner"));
    }

    #[test]
    fn absorb_grafts_under_the_open_span() {
        let parent = SolverContext::default();
        let child = SolverContext::default();
        {
            let _s = child.span("work");
        }
        child.obs().add_counter("widgets", 2);
        child.obs().record("sizes", Unit::Count, 8);
        let snap = child.obs_snapshot();
        {
            let _fan = parent.span("fanout");
            parent.absorb_obs(&snap);
            parent.absorb_obs(&snap);
        }
        let merged = parent.obs_snapshot();
        assert_eq!(merged.shape(), {
            let mut s = String::from("<root> x0\n  fanout x1\n    work x2\n");
            s.push_str("counter widgets = 4\n");
            s.push_str("hist sizes n=2 sum=16 b4:2\n");
            s
        });
    }

    #[test]
    fn histogram_buckets_cover_all_values() {
        let mut h = Histogram::new(Unit::Count);
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.buckets().iter().sum::<u64>(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[10], 1); // 1023
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.buckets()[64], 1); // u64::MAX
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new(Unit::Count);
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert!((95..=100).contains(&p95), "p95 = {p95}");
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(Histogram::new(Unit::Count).quantile(0.5), 0);
    }

    #[test]
    fn quantile_edges_return_recorded_extremes_exactly() {
        // The edge contract: q ≤ 0 is the exact recorded min, q ≥ 1 the
        // exact recorded max — never a bucket bound. 5 and 1000 are both
        // strictly inside their buckets ([4,8) and [512,1024)), so a
        // bucket-edge answer would be visibly wrong here.
        let mut h = Histogram::new(Unit::Count);
        for v in [5u64, 17, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(-1.0), 5);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(2.0), 1000);
        // Interior quantiles stay within the recorded range.
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let v = h.quantile(q);
            assert!((5..=1000).contains(&v), "q={q} -> {v}");
        }
        // A single observation answers every quantile with itself.
        let mut one = Histogram::new(Unit::Nanos);
        one.record(6);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(one.quantile(q), 6, "q={q}");
        }
        // Empty histograms return 0 for every q, including the edges.
        let empty = Histogram::new(Unit::Count);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0);
        }
    }

    #[test]
    fn histogram_from_parts_validates_and_round_trips() {
        let mut h = Histogram::new(Unit::Count);
        for v in [0u64, 3, 99, 1 << 40] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(h.unit(), *h.buckets(), h.count(), h.sum(), h.min(), h.max())
                .expect("valid parts");
        assert_eq!(rebuilt, h);
        // Empty round-trip: the reported min is 0, internal sentinel
        // must be restored so later records still track the true min.
        let empty = Histogram::new(Unit::Nanos);
        let mut rebuilt = Histogram::from_parts(
            empty.unit(),
            *empty.buckets(),
            empty.count(),
            empty.sum(),
            empty.min(),
            empty.max(),
        )
        .expect("empty parts");
        assert_eq!(rebuilt, empty);
        rebuilt.record(7);
        assert_eq!(rebuilt.min(), 7);
        // Mass/count mismatch is rejected.
        let mut buckets = [0u64; NBUCKETS];
        buckets[3] = 2;
        assert!(Histogram::from_parts(Unit::Count, buckets, 3, 10, 4, 7).is_err());
        // min > max on a non-empty histogram is rejected.
        buckets[3] = 3;
        assert!(Histogram::from_parts(Unit::Count, buckets, 3, 10, 9, 7).is_err());
    }

    #[test]
    fn set_gauge_max_keeps_the_worst_reading() {
        let ctx = SolverContext::default();
        ctx.obs().set_gauge_max("imb", 1.5);
        ctx.obs().set_gauge_max("imb", 1.2);
        assert_eq!(ctx.obs_snapshot().gauges["imb"], 1.5);
        ctx.obs().set_gauge_max("imb", 2.5);
        assert_eq!(ctx.obs_snapshot().gauges["imb"], 2.5);
    }

    #[test]
    fn gauges_merge_as_max() {
        let a = SolverContext::default();
        a.obs().set_gauge("fill", 0.25);
        let b = SolverContext::default();
        b.obs().set_gauge("fill", 0.75);
        a.absorb_obs(&b.obs_snapshot());
        let snap = a.obs_snapshot();
        assert_eq!(snap.gauges["fill"], 0.75);
    }
}
