//! Canonical, versioned wire format for [`ObsSnapshot`]s.
//!
//! A [`WireSnapshot`] is the serializable, owned projection of an
//! [`ObsSnapshot`]'s aggregate state: the span tree with exact call
//! counts and nanosecond totals, monotonic counters, gauges, and
//! histograms. The flat event log is deliberately *not* part of the
//! wire format — it is bounded but large, non-deterministic, and
//! already has a dedicated exporter (the Chrome-trace path in
//! `jcr_bench`); the aggregate tree is what differential profiling
//! compares.
//!
//! The rendering follows the bench suite's hand-rolled canonical-JSON
//! conventions (`jcr_bench::json`): `BTreeMap`-sorted object keys,
//! two-space indentation, a trailing newline, no external crates. On
//! top of those, three rules make the format *exact* rather than
//! approximate:
//!
//! * every `u64`/`u128` quantity (counts, nanosecond totals, bucket
//!   masses, histogram sums) is a **decimal string**, never a JSON
//!   number — JSON numbers are f64s and lose integers above 2⁵³;
//! * gauges are stored as the **raw bit pattern** of their `f64`,
//!   rendered as 16 hex digits exactly like the bench checksums, so
//!   equality on the wire is bit equality;
//! * histogram buckets and child lists use compact space-separated
//!   encodings (`"4:2 11:1"`, `"1 2 3"`) with ascending indices.
//!
//! The span tree is **canonicalized** on conversion: children are
//! sorted by name and nodes renumbered in DFS order. Because the
//! aggregate tree keys children by `parent → name`, the canonical form
//! is unique, which gives two properties for free: `render` is a pure
//! function of the recorded state (serialize → parse → serialize is
//! byte-identical), and snapshot merge order cannot leak into the
//! serialized artifact (absorbing A then B equals B then A on the
//! wire).
//!
//! The format is versioned by the top-level `"schema"` field; the
//! parser rejects any version other than [`SCHEMA`] so a future format
//! change fails loudly instead of mis-reading old artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::{Histogram, ObsSnapshot, Unit, NBUCKETS};

/// Wire format version; bump on any change to the rendered schema.
pub const SCHEMA: u64 = 1;

/// One span-tree node on the wire. Node 0 is the synthetic root
/// (named `""`); children are canonically ordered by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireNode {
    /// Span name (the root's is `""`).
    pub name: String,
    /// Child node indices, sorted by child name.
    pub children: Vec<usize>,
    /// Completed entries into this span.
    pub count: u64,
    /// Total wall time spent inside, nanoseconds.
    pub total_nanos: u64,
    /// Wall time attributed to direct children, nanoseconds.
    pub child_nanos: u64,
}

impl WireNode {
    /// Wall time not attributed to any child span, nanoseconds.
    pub fn self_nanos(&self) -> u64 {
        self.total_nanos.saturating_sub(self.child_nanos)
    }
}

/// One histogram on the wire: sparse non-zero log₂ buckets plus the
/// exact count/sum/min/max the live [`Histogram`] tracked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireHistogram {
    /// What the recorded values measure.
    pub unit: Unit,
    /// Non-zero buckets, `bucket index → observation count`.
    pub buckets: BTreeMap<usize, u64>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded observations.
    pub sum: u128,
    /// Smallest recorded observation (0 when empty).
    pub min: u64,
    /// Largest recorded observation (0 when empty).
    pub max: u64,
}

impl WireHistogram {
    /// Projects a live histogram onto the wire.
    pub fn from_histogram(h: &Histogram) -> Self {
        WireHistogram {
            unit: h.unit(),
            buckets: h
                .buckets()
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
        }
    }

    /// Rebuilds a live histogram (e.g. to reuse [`Histogram::quantile`]
    /// on a deserialized snapshot), re-validating the invariants.
    pub fn to_histogram(&self) -> Result<Histogram, String> {
        let mut buckets = [0u64; NBUCKETS];
        for (&i, &c) in &self.buckets {
            if i >= NBUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            buckets[i] = c;
        }
        Histogram::from_parts(self.unit, buckets, self.count, self.sum, self.min, self.max)
    }
}

/// The canonical serializable form of an [`ObsSnapshot`]'s aggregate
/// state. `==` on two `WireSnapshot`s is the deterministic
/// deep-equality check: exact span counts and nanosecond totals,
/// counters, gauge *bit patterns*, and full histogram contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Format version ([`SCHEMA`]).
    pub schema: u64,
    /// Free-form provenance (worker width, artifact kind, …); merged
    /// into the document under `"meta"` and compared like everything
    /// else.
    pub meta: BTreeMap<String, String>,
    /// Canonically ordered span tree; node 0 is the synthetic root.
    pub nodes: Vec<WireNode>,
    /// Spans that completed after the event log filled up.
    pub dropped_events: u64,
    /// Named monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Named gauges, stored as `f64::to_bits`.
    pub gauges: BTreeMap<String, u64>,
    /// Named histograms.
    pub histograms: BTreeMap<String, WireHistogram>,
}

/// Copies `src_node`'s subtree into `nodes` with children sorted by
/// name and DFS numbering, returning the new index.
fn copy_canonical(snap: &ObsSnapshot, src_node: usize, nodes: &mut Vec<WireNode>) -> usize {
    let src = &snap.nodes[src_node];
    let idx = nodes.len();
    nodes.push(WireNode {
        name: src.name.to_string(),
        children: Vec::with_capacity(src.children.len()),
        count: src.count,
        total_nanos: src.total_nanos,
        child_nanos: src.child_nanos,
    });
    let mut kids = src.children.clone();
    kids.sort_by_key(|&c| snap.nodes[c].name);
    for c in kids {
        let ci = copy_canonical(snap, c, nodes);
        nodes[idx].children.push(ci);
    }
    idx
}

impl WireSnapshot {
    /// Projects a snapshot onto the wire with empty `meta`; callers add
    /// provenance (e.g. `"workers"`) before rendering.
    pub fn from_snapshot(snap: &ObsSnapshot) -> Self {
        let mut nodes = Vec::with_capacity(snap.nodes.len());
        copy_canonical(snap, 0, &mut nodes);
        WireSnapshot {
            schema: SCHEMA,
            meta: BTreeMap::new(),
            nodes,
            dropped_events: snap.dropped_events,
            counters: snap
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: snap
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v.to_bits()))
                .collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), WireHistogram::from_histogram(h)))
                .collect(),
        }
    }

    /// The named gauge, decoded back to `f64`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|&bits| f64::from_bits(bits))
    }

    /// Total wall time recorded at the root's direct children (the
    /// top-level spans), nanoseconds.
    pub fn total_span_nanos(&self) -> u64 {
        self.nodes[0]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_nanos)
            .sum()
    }

    /// The deterministic shape string — byte-identical to
    /// [`ObsSnapshot::shape`] on the snapshot this was projected from.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        self.shape_node(0, 0, &mut out);
        for (name, by) in &self.counters {
            let _ = writeln!(out, "counter {name} = {by}");
        }
        for (name, hist) in &self.histograms {
            if hist.unit == Unit::Count {
                let _ = write!(out, "hist {name} n={} sum={}", hist.count, hist.sum);
                for (&i, &c) in &hist.buckets {
                    let _ = write!(out, " b{i}:{c}");
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    fn shape_node(&self, node: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[node];
        let label = if n.name.is_empty() { "<root>" } else { &n.name };
        let _ = writeln!(
            out,
            "{:indent$}{label} x{}",
            "",
            n.count,
            indent = depth * 2
        );
        for &c in &n.children {
            self.shape_node(c, depth + 1, out);
        }
    }

    /// Renders the canonical document. Serialize → [`WireSnapshot::parse`]
    /// → serialize is byte-identical.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        // Top-level keys in sorted order, matching a BTreeMap render:
        // counters < dropped_events < gauges < histograms < meta <
        // nodes < schema.
        render_str_map(
            &mut out,
            "counters",
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_string())),
        );
        out.push_str(",\n");
        let _ = writeln!(out, "  \"dropped_events\": \"{}\",", self.dropped_events);
        render_str_map(
            &mut out,
            "gauges",
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), format!("{v:016x}"))),
        );
        out.push_str(",\n");
        if self.histograms.is_empty() {
            out.push_str("  \"histograms\": {},\n");
        } else {
            out.push_str("  \"histograms\": {\n");
            let last = self.histograms.len() - 1;
            for (i, (name, h)) in self.histograms.iter().enumerate() {
                out.push_str("    ");
                render_string(&mut out, name);
                out.push_str(": {\n");
                let mut buckets = String::new();
                for (j, (&bi, &c)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        buckets.push(' ');
                    }
                    let _ = write!(buckets, "{bi}:{c}");
                }
                let _ = writeln!(out, "      \"buckets\": \"{buckets}\",");
                let _ = writeln!(out, "      \"count\": \"{}\",", h.count);
                let _ = writeln!(out, "      \"max\": \"{}\",", h.max);
                let _ = writeln!(out, "      \"min\": \"{}\",", h.min);
                let _ = writeln!(out, "      \"sum\": \"{}\",", h.sum);
                let _ = writeln!(out, "      \"unit\": \"{}\"", h.unit.name());
                out.push_str(if i == last { "    }\n" } else { "    },\n" });
            }
            out.push_str("  },\n");
        }
        render_str_map(
            &mut out,
            "meta",
            self.meta.iter().map(|(k, v)| (k.clone(), v.clone())),
        );
        out.push_str(",\n");
        out.push_str("  \"nodes\": [\n");
        let last = self.nodes.len() - 1;
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"child_ns\": \"{}\",", n.child_nanos);
            let mut children = String::new();
            for (j, c) in n.children.iter().enumerate() {
                if j > 0 {
                    children.push(' ');
                }
                let _ = write!(children, "{c}");
            }
            let _ = writeln!(out, "      \"children\": \"{children}\",");
            let _ = writeln!(out, "      \"count\": \"{}\",", n.count);
            out.push_str("      \"name\": ");
            render_string(&mut out, &n.name);
            out.push_str(",\n");
            let _ = writeln!(out, "      \"total_ns\": \"{}\"", n.total_nanos);
            out.push_str(if i == last { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"schema\": {}", self.schema);
        out.push_str("}\n");
        out
    }

    /// Parses a canonical document, validating the schema version and
    /// every structural invariant (child indices in range, bucket mass
    /// equal to histogram count, known units).
    pub fn parse(text: &str) -> Result<WireSnapshot, String> {
        let val = parse_document(text)?;
        let top = val.as_obj("document")?;
        let schema = get(top, "schema")?.as_uint("schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported snapshot schema {schema} (want {SCHEMA})"
            ));
        }
        let counters = parse_str_map(get(top, "counters")?, "counters")?
            .into_iter()
            .map(|(k, v)| Ok((k, parse_u64(&v, "counter")?)))
            .collect::<Result<BTreeMap<_, _>, String>>()?;
        let gauges = parse_str_map(get(top, "gauges")?, "gauges")?
            .into_iter()
            .map(|(k, v)| {
                if v.len() != 16 {
                    return Err(format!("gauge {k}: want 16 hex digits, got {v:?}"));
                }
                let bits = u64::from_str_radix(&v, 16)
                    .map_err(|e| format!("gauge {k}: bad hex {v:?}: {e}"))?;
                Ok((k, bits))
            })
            .collect::<Result<BTreeMap<_, _>, String>>()?;
        let meta = parse_str_map(get(top, "meta")?, "meta")?;
        let dropped_events = parse_u64(
            get(top, "dropped_events")?.as_str("dropped_events")?,
            "dropped_events",
        )?;
        let mut histograms = BTreeMap::new();
        for (name, hv) in get(top, "histograms")?.as_obj("histograms")? {
            let h = hv.as_obj(name)?;
            let unit = match get(h, "unit")?.as_str("unit")? {
                "count" => Unit::Count,
                "nanos" => Unit::Nanos,
                other => return Err(format!("histogram {name}: unknown unit {other:?}")),
            };
            let mut buckets = BTreeMap::new();
            let spec = get(h, "buckets")?.as_str("buckets")?;
            for pair in spec.split(' ').filter(|p| !p.is_empty()) {
                let (i, c) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("histogram {name}: bad bucket {pair:?}"))?;
                let i: usize = i
                    .parse()
                    .map_err(|e| format!("histogram {name}: bad bucket index {i:?}: {e}"))?;
                if i >= NBUCKETS {
                    return Err(format!("histogram {name}: bucket index {i} out of range"));
                }
                if buckets.insert(i, parse_u64(c, "bucket count")?).is_some() {
                    return Err(format!("histogram {name}: duplicate bucket {i}"));
                }
            }
            let wh = WireHistogram {
                unit,
                buckets,
                count: parse_u64(get(h, "count")?.as_str("count")?, "count")?,
                sum: get(h, "sum")?
                    .as_str("sum")?
                    .parse::<u128>()
                    .map_err(|e| format!("histogram {name}: bad sum: {e}"))?,
                min: parse_u64(get(h, "min")?.as_str("min")?, "min")?,
                max: parse_u64(get(h, "max")?.as_str("max")?, "max")?,
            };
            // from_parts re-checks mass == count and min ≤ max.
            wh.to_histogram()
                .map_err(|e| format!("histogram {name}: {e}"))?;
            histograms.insert(name.clone(), wh);
        }
        let mut nodes = Vec::new();
        for (i, nv) in get(top, "nodes")?.as_arr("nodes")?.iter().enumerate() {
            let n = nv.as_obj("node")?;
            let mut children = Vec::new();
            for c in get(n, "children")?
                .as_str("children")?
                .split(' ')
                .filter(|c| !c.is_empty())
            {
                children.push(
                    c.parse::<usize>()
                        .map_err(|e| format!("node {i}: bad child index {c:?}: {e}"))?,
                );
            }
            nodes.push(WireNode {
                name: get(n, "name")?.as_str("name")?.to_string(),
                children,
                count: parse_u64(get(n, "count")?.as_str("count")?, "count")?,
                total_nanos: parse_u64(get(n, "total_ns")?.as_str("total_ns")?, "total_ns")?,
                child_nanos: parse_u64(get(n, "child_ns")?.as_str("child_ns")?, "child_ns")?,
            });
        }
        if nodes.is_empty() {
            return Err("snapshot has no nodes (missing root)".to_string());
        }
        if !nodes[0].name.is_empty() {
            return Err("node 0 must be the unnamed root".to_string());
        }
        for (i, n) in nodes.iter().enumerate() {
            for &c in &n.children {
                if c >= nodes.len() {
                    return Err(format!("node {i}: child index {c} out of range"));
                }
                if c == 0 {
                    return Err(format!("node {i}: root cannot be a child"));
                }
            }
        }
        Ok(WireSnapshot {
            schema,
            meta,
            nodes,
            dropped_events,
            counters,
            gauges,
            histograms,
        })
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|e| format!("bad {what} {s:?}: {e}"))
}

/// Renders a flat `string → string` object at one level of indent.
fn render_str_map(out: &mut String, key: &str, entries: impl Iterator<Item = (String, String)>) {
    let entries: Vec<(String, String)> = entries.collect();
    let _ = write!(out, "  \"{key}\": ");
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let last = entries.len() - 1;
    for (i, (k, v)) in entries.iter().enumerate() {
        out.push_str("    ");
        render_string(out, k);
        out.push_str(": ");
        render_string(out, v);
        out.push_str(if i == last { "\n" } else { ",\n" });
    }
    out.push_str("  }");
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal JSON value for the wire grammar: objects, arrays, strings,
/// and unsigned integers (the only number the format emits is the
/// schema version).
#[derive(Debug)]
enum Val {
    Str(String),
    UInt(u64),
    Arr(Vec<Val>),
    Obj(BTreeMap<String, Val>),
}

impl Val {
    fn as_obj(&self, what: &str) -> Result<&BTreeMap<String, Val>, String> {
        match self {
            Val::Obj(m) => Ok(m),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&Vec<Val>, String> {
        match self {
            Val::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Val::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn as_uint(&self, what: &str) -> Result<u64, String> {
        match self {
            Val::UInt(n) => Ok(*n),
            _ => Err(format!("{what}: expected unsigned integer")),
        }
    }
}

fn get<'a>(obj: &'a BTreeMap<String, Val>, key: &str) -> Result<&'a Val, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn parse_str_map(val: &Val, what: &str) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    for (k, v) in val.as_obj(what)? {
        out.insert(k.clone(), v.as_str(what)?.to_string());
    }
    Ok(out)
}

fn parse_document(text: &str) -> Result<Val, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let val = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(val)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Val, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Val::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(bytes, pos)?;
                map.insert(key, val);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Val::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Val::Arr(arr));
            }
            loop {
                arr.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Val::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Val::Str(parse_string(bytes, pos)?)),
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
            s.parse::<u64>()
                .map(Val::UInt)
                .map_err(|e| format!("bad number {s:?}: {e}"))
        }
        _ => Err(format!("unexpected byte at {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if *pos + 4 > bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad codepoint \\u{hex}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("raw control byte in string at {pos}"));
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolverContext;

    fn sample_snapshot() -> ObsSnapshot {
        let ctx = SolverContext::default();
        {
            let _a = ctx.span("alpha");
            {
                let _b = ctx.span("beta");
            }
            {
                let _b = ctx.span("beta");
            }
        }
        {
            let _c = ctx.span("gamma");
        }
        ctx.obs().add_counter("widgets", 3);
        ctx.obs().set_gauge("fill", 0.75);
        ctx.obs().record("sizes", Unit::Count, 8);
        ctx.obs().record("sizes", Unit::Count, 0);
        ctx.obs().record("lat", Unit::Nanos, 1_000_000);
        ctx.obs_snapshot()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let mut wire = WireSnapshot::from_snapshot(&sample_snapshot());
        wire.meta.insert("workers".to_string(), "2".to_string());
        let text = wire.render();
        let parsed = WireSnapshot::parse(&text).expect("parse canonical render");
        assert_eq!(parsed, wire);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn shape_matches_obs_snapshot_shape() {
        let snap = sample_snapshot();
        assert_eq!(WireSnapshot::from_snapshot(&snap).shape(), snap.shape());
    }

    #[test]
    fn gauges_survive_as_exact_bits() {
        let snap = sample_snapshot();
        let wire = WireSnapshot::from_snapshot(&snap);
        let text = wire.render();
        let parsed = WireSnapshot::parse(&text).unwrap();
        assert_eq!(parsed.gauge("fill"), Some(0.75));
        assert_eq!(parsed.gauges["fill"], 0.75f64.to_bits());
    }

    #[test]
    fn parser_rejects_wrong_schema_and_corruption() {
        let wire = WireSnapshot::from_snapshot(&sample_snapshot());
        let text = wire.render();
        let wrong = text.replace("\"schema\": 1", "\"schema\": 2");
        assert!(WireSnapshot::parse(&wrong)
            .unwrap_err()
            .contains("unsupported snapshot schema"));
        let truncated = &text[..text.len() / 2];
        assert!(WireSnapshot::parse(truncated).is_err());
        // Corrupt a histogram count so bucket mass no longer matches.
        let corrupt = text.replace("\"count\": \"2\"", "\"count\": \"3\"");
        assert!(WireSnapshot::parse(&corrupt).is_err());
    }

    #[test]
    fn canonical_order_hides_merge_order() {
        let build = |first: &'static str, second: &'static str| {
            let ctx = SolverContext::default();
            {
                let _s = ctx.span(first);
            }
            {
                let _s = ctx.span(second);
            }
            ctx.obs_snapshot()
        };
        let ab = build("a", "b");
        let ba = build("b", "a");
        // Different first-entry orders, same canonical node layout.
        let names = |w: &WireSnapshot| w.nodes.iter().map(|n| n.name.clone()).collect::<Vec<_>>();
        assert_eq!(
            names(&WireSnapshot::from_snapshot(&ab)),
            names(&WireSnapshot::from_snapshot(&ba))
        );
    }
}
