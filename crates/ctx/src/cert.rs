//! Machine-checkable solution **certificates** and the compensated
//! arithmetic that verifies them (DESIGN.md §11).
//!
//! Every solver layer emits a [`Certificate`]: a named bundle of
//! [`Check`]s, each a residual measured against an explicit tolerance.
//! The residuals are recomputed by an *independent* verifier — never the
//! solver's own running sums — using error-free transformations
//! ([`two_sum`]) and Neumaier-compensated accumulation ([`Kahan`]), so a
//! silently drifted basis or a cancelled running total cannot certify
//! itself.
//!
//! Certificates are cheap (one compensated pass over the solution data)
//! and deterministic, and they integrate with the metrics registry: see
//! [`Certificate::record`], which files every residual into a shared
//! `cert.residual_bits` histogram readable from `experiments stats`.
//!
//! # Examples
//!
//! ```
//! use jcr_ctx::cert::{Certificate, Kahan};
//!
//! let mut sum = Kahan::new();
//! for _ in 0..10 {
//!     sum.add(0.1);
//! }
//! let mut cert = Certificate::new("demo");
//! cert.push("sums-to-one", (sum.total() - 1.0).abs(), 1e-12);
//! assert!(cert.verified());
//! ```

use std::fmt;

/// Error-free transformation: `a + b = s + e` exactly, with `s = fl(a+b)`
/// and `e` the rounding error (Knuth's TwoSum; no branch on magnitudes).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Neumaier-compensated accumulator ("improved Kahan–Babuška"): the
/// running compensation collects the exact rounding error of every add,
/// so the final [`Kahan::total`] is correct to a unit roundoff of the
/// *exact* sum even under heavy cancellation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Kahan::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let (s, e) = two_sum(self.sum, x);
        self.sum = s;
        self.comp += e;
    }

    /// Adds the product `a·b` with its FMA-style error term split out
    /// (the product itself is a single rounding; good enough for
    /// residuals checked against tolerances ≫ machine epsilon).
    #[inline]
    pub fn add_prod(&mut self, a: f64, b: f64) {
        self.add(a * b);
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Compensated sum of a slice.
pub fn comp_sum(xs: &[f64]) -> f64 {
    let mut k = Kahan::new();
    for &x in xs {
        k.add(x);
    }
    k.total()
}

/// Compensated dot product `Σ a_i·b_i`.
pub fn comp_dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut k = Kahan::new();
    for (&x, &y) in a.iter().zip(b) {
        k.add_prod(x, y);
    }
    k.total()
}

/// Maps a nonnegative residual to "bits of agreement" for log₂-bucket
/// histograms: `min(64, ⌊−log₂ r⌋)` — 64 means exactly zero (or below
/// 2⁻⁶⁴), 0 means the residual is ≥ 1. Deterministic for deterministic
/// residuals, so it is safe to record as a `Count`-unit metric.
pub fn residual_bits(residual: f64) -> u64 {
    if residual <= 0.0 || residual.is_nan() {
        // Zero or NaN; NaN is caught separately by Check::pass.
        return 64;
    }
    let bits = -residual.log2();
    if bits <= 0.0 {
        0
    } else if bits >= 64.0 {
        64
    } else {
        bits as u64
    }
}

/// One verified condition: a recomputed residual against its tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct Check {
    /// What is being checked (e.g. `"primal-rows"`, `"duality-gap"`).
    pub name: &'static str,
    /// The recomputed residual (≥ 0; NaN fails).
    pub residual: f64,
    /// The acceptance tolerance.
    pub tol: f64,
}

impl Check {
    /// Whether the residual is finite and within tolerance.
    pub fn pass(&self) -> bool {
        self.residual.is_finite() && self.residual <= self.tol
    }
}

/// A machine-checkable certificate: the named checks an independent
/// verifier recomputed for one solution. A certificate **verifies** when
/// every check passes; solvers must refuse to report "optimal" on a
/// certificate that does not.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Certificate {
    /// The certificate family (`"lp"`, `"mincost"`, `"mmsfp"`, `"jcr"`).
    pub kind: &'static str,
    /// The individual residual checks.
    pub checks: Vec<Check>,
}

impl Certificate {
    /// An empty certificate of the given kind (vacuously verified).
    pub fn new(kind: &'static str) -> Self {
        Certificate {
            kind,
            checks: Vec::new(),
        }
    }

    /// Appends a check.
    pub fn push(&mut self, name: &'static str, residual: f64, tol: f64) {
        self.checks.push(Check {
            name,
            residual,
            tol,
        });
    }

    /// Whether every check passes.
    pub fn verified(&self) -> bool {
        self.checks.iter().all(Check::pass)
    }

    /// The failing checks, if any.
    pub fn failures(&self) -> impl Iterator<Item = &Check> {
        self.checks.iter().filter(|c| !c.pass())
    }

    /// The largest residual-to-tolerance ratio across checks (0 when
    /// empty) — a scalar "how close to the edge" summary.
    pub fn worst_ratio(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| {
                if c.residual.is_finite() {
                    c.residual / c.tol.max(f64::MIN_POSITIVE)
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0, f64::max)
    }

    /// Records the certificate into a context's metrics registry:
    /// `cert.residual_bits` (one log₂-agreement observation per check),
    /// `cert.verified` / `cert.failed` counters, and a per-kind counter
    /// (`cert.<kind>`). Visible in `experiments stats`.
    pub fn record(&self, ctx: &crate::SolverContext) {
        for c in &self.checks {
            ctx.metric_value("cert.residual_bits", residual_bits(c.residual));
        }
        let outcome = if self.verified() {
            "cert.verified"
        } else {
            "cert.failed"
        };
        ctx.obs().add_counter(outcome, 1);
    }

    /// A short human-readable failure description (for error payloads).
    pub fn failure_summary(&self) -> String {
        let mut parts: Vec<String> = self
            .failures()
            .map(|c| {
                format!(
                    "{}: residual {:.3e} > tol {:.3e}",
                    c.name, c.residual, c.tol
                )
            })
            .collect();
        if parts.is_empty() {
            parts.push("all checks pass".to_string());
        }
        format!("{} certificate: {}", self.kind, parts.join("; "))
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} certificate ({}): {} checks",
            self.kind,
            if self.verified() {
                "VERIFIED"
            } else {
                "FAILED"
            },
            self.checks.len()
        )?;
        for c in &self.checks {
            writeln!(
                f,
                "  {:<24} residual {:>12.4e}  tol {:>9.1e}  {}",
                c.name,
                c.residual,
                c.tol,
                if c.pass() { "ok" } else { "FAIL" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let (s, e) = two_sum(1.0, 1e-20);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-20);
        let (s, e) = two_sum(0.1, 0.2);
        // s + e reproduces the exact sum of the two doubles.
        assert_eq!(s, 0.1 + 0.2);
        assert!(e != 0.0);
    }

    #[test]
    fn kahan_beats_naive_summation() {
        // Σ of n copies of 0.1 plus a large cancelling pair.
        let mut k = Kahan::new();
        k.add(1e16);
        for _ in 0..1000 {
            k.add(0.1);
        }
        k.add(-1e16);
        assert!((k.total() - 100.0).abs() < 1e-9, "{}", k.total());
    }

    #[test]
    fn comp_dot_matches_exact_small_case() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(comp_dot(&a, &b), 32.0);
    }

    #[test]
    fn residual_bits_mapping() {
        assert_eq!(residual_bits(0.0), 64);
        assert_eq!(residual_bits(1.0), 0);
        assert_eq!(residual_bits(2.0), 0);
        assert_eq!(residual_bits(0.25), 2);
        assert_eq!(residual_bits(1e-300), 64);
        assert_eq!(residual_bits(f64::NAN), 64);
    }

    #[test]
    fn certificate_verdicts() {
        let mut cert = Certificate::new("test");
        assert!(cert.verified());
        cert.push("fine", 1e-12, 1e-9);
        assert!(cert.verified());
        cert.push("bad", 1e-3, 1e-9);
        assert!(!cert.verified());
        assert_eq!(cert.failures().count(), 1);
        assert!(cert.worst_ratio() > 1.0);
        let text = cert.failure_summary();
        assert!(text.contains("bad"), "{text}");
        let display = cert.to_string();
        assert!(display.contains("FAILED"), "{display}");
    }

    #[test]
    fn nan_residual_fails() {
        let mut cert = Certificate::new("test");
        cert.push("nan", f64::NAN, 1e-9);
        assert!(!cert.verified());
        assert!(cert.worst_ratio().is_infinite());
    }

    #[test]
    fn record_files_metrics() {
        let ctx = crate::SolverContext::new();
        let mut cert = Certificate::new("test");
        cert.push("a", 0.0, 1e-9);
        cert.record(&ctx);
        let snap = ctx.obs_snapshot();
        assert!(snap.histograms.contains_key("cert.residual_bits"));
    }
}
