//! A small, dependency-free pseudo-random number generator with the same
//! call-site shape as the subset of `rand` 0.8 the workspace uses
//! (`seed_from_u64`, `gen_range` over half-open and inclusive ranges,
//! `gen_bool`), so that no external crate is needed to build offline.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and deterministic across platforms. It is **not**
//! cryptographically secure; it drives synthetic workloads, randomized
//! rounding, and tests.

use std::ops::{Range, RangeInclusive};

/// Seeding interface mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Raw 64-bit output source. The blanket impl below lifts any source to
/// the full [`Rng`] interface.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling interface mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`, over the integer types used in the workspace and `f64`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw 64-bit word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let u = unit_f64(rng.next_u64());
        let x = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The workspace's deterministic generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let x: f64 = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// let i = rng.gen_range(0..10usize);
/// assert!(i < 10);
/// // Same seed, same stream.
/// let mut again = StdRng::seed_from_u64(7);
/// let y: f64 = again.gen_range(0.0..1.0);
/// assert_eq!(x.to_bits(), y.to_bits());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the seed into the full state; the all-zero
        // state (unreachable from SplitMix64) would be a fixed point.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(0..=4u64);
            assert!(j <= 4);
            let k = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&k));
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(7..=7usize), 7);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "frequency {freq}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_f64_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let by_ref = draw(&mut &mut rng);
        assert!(by_ref < 100);
    }
}
