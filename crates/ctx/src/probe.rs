//! Probe implementations beyond the context's built-in accumulator.
//!
//! The [`SolverContext`](crate::SolverContext) records effort into its
//! own [`SolverStats`](crate::SolverStats); an *extra* probe mirrors the
//! same event stream elsewhere. This module provides the structured log
//! sink: [`JsonLinesProbe`] serializes every counter increment, phase
//! timing, and named event as one JSON object per line behind any
//! [`Write`] — a file, a `Vec<u8>`, stderr — so solver effort can be
//! tailed and post-processed without a logging dependency.
//!
//! A single probe often needs to back several contexts (the online loop
//! creates one context per degradation rung); the blanket
//! `impl Probe for Rc<P>` below makes `Box::new(Rc::clone(&probe))`
//! attachable to each of them.
//!
//! # Examples
//!
//! ```
//! use jcr_ctx::probe::JsonLinesProbe;
//! use jcr_ctx::{Counter, Probe, SolverContext};
//!
//! let probe = JsonLinesProbe::new(Vec::new());
//! probe.event("rung", &[("hour", "3"), ("rung", "carry-forward")]);
//! let ctx = SolverContext::new().with_probe(Box::new(probe));
//! ctx.count(Counter::SimplexPivots, 2);
//! ```

use std::cell::{Cell, RefCell};
use std::io::Write;
use std::rc::Rc;
use std::time::Instant;

use crate::{Counter, Phase, Probe};

impl<P: Probe + ?Sized> Probe for Rc<P> {
    fn count(&self, counter: Counter, by: u64) {
        (**self).count(counter, by);
    }

    fn phase_elapsed(&self, phase: Phase, nanos: u64) {
        (**self).phase_elapsed(phase, nanos);
    }

    fn event(&self, name: &str, fields: &[(&str, &str)]) {
        (**self).event(name, fields);
    }
}

/// A [`Probe`] that streams solver events as JSON lines to a writer.
///
/// Each call produces one self-contained JSON object terminated by a
/// newline, stamped with `ts_us` — microseconds since the probe was
/// created, clamped to be monotonically non-decreasing across lines even
/// if the platform clock steps:
///
/// ```text
/// {"ts_us":12,"event":"count","counter":"simplex pivots","by":17}
/// {"ts_us":61,"event":"phase","phase":"simplex","nanos":48211}
/// {"ts_us":70,"event":"rung","hour":"2","rung":"incumbent","status":"served"}
/// ```
///
/// Write errors are swallowed: observability must never fail a solve.
pub struct JsonLinesProbe<W: Write> {
    sink: RefCell<W>,
    epoch: Instant,
    last_ts_us: Cell<u64>,
}

impl<W: Write> JsonLinesProbe<W> {
    /// Wraps `sink`; every probe call appends one JSON line to it. The
    /// `ts_us` clock starts now.
    pub fn new(sink: W) -> Self {
        JsonLinesProbe {
            sink: RefCell::new(sink),
            epoch: Instant::now(),
            last_ts_us: Cell::new(0),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut sink = self.sink.into_inner();
        let _ = sink.flush();
        sink
    }

    /// Microseconds since probe creation, never decreasing across calls.
    fn ts_us(&self) -> u64 {
        let now = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let ts = now.max(self.last_ts_us.get());
        self.last_ts_us.set(ts);
        ts
    }

    fn write_line(&self, line: &str) {
        let mut sink = self.sink.borrow_mut();
        let _ = writeln!(sink, "{line}");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<W: Write> Probe for JsonLinesProbe<W> {
    fn count(&self, counter: Counter, by: u64) {
        self.write_line(&format!(
            "{{\"ts_us\":{},\"event\":\"count\",\"counter\":\"{}\",\"by\":{by}}}",
            self.ts_us(),
            escape(counter.name())
        ));
    }

    fn phase_elapsed(&self, phase: Phase, nanos: u64) {
        self.write_line(&format!(
            "{{\"ts_us\":{},\"event\":\"phase\",\"phase\":\"{}\",\"nanos\":{nanos}}}",
            self.ts_us(),
            escape(phase.name())
        ));
    }

    fn event(&self, name: &str, fields: &[(&str, &str)]) {
        let mut line = format!(
            "{{\"ts_us\":{},\"event\":\"{}\"",
            self.ts_us(),
            escape(name)
        );
        for (key, value) in fields {
            line.push_str(&format!(",\"{}\":\"{}\"", escape(key), escape(value)));
        }
        line.push('}');
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolverContext;

    /// A shared in-memory sink (the probe consumes its writer, so tests
    /// keep a second handle to read what was written).
    #[derive(Clone, Default)]
    struct SharedBuf(Rc<RefCell<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.borrow().clone()).unwrap()
        }
    }

    /// Splits a probe line into its `ts_us` value and the remainder of
    /// the object (everything after the `ts_us` field's comma).
    fn split_ts(line: &str) -> (u64, &str) {
        let rest = line
            .strip_prefix("{\"ts_us\":")
            .expect("line starts with ts_us");
        let comma = rest.find(',').expect("ts_us is not the only field");
        let ts: u64 = rest[..comma].parse().expect("ts_us is an integer");
        (ts, &rest[comma + 1..])
    }

    #[test]
    fn streams_counters_phases_and_events_as_json_lines() {
        let buf = SharedBuf::default();
        let probe = JsonLinesProbe::new(buf.clone());
        probe.count(Counter::SimplexPivots, 17);
        probe.phase_elapsed(Phase::Simplex, 48);
        probe.event("rung", &[("hour", "2"), ("rung", "incumbent")]);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        let bodies: Vec<&str> = lines.iter().map(|l| split_ts(l).1).collect();
        assert_eq!(
            bodies[0],
            "\"event\":\"count\",\"counter\":\"simplex pivots\",\"by\":17}"
        );
        assert_eq!(
            bodies[1],
            "\"event\":\"phase\",\"phase\":\"simplex\",\"nanos\":48}"
        );
        assert_eq!(
            bodies[2],
            "\"event\":\"rung\",\"hour\":\"2\",\"rung\":\"incumbent\"}"
        );
    }

    #[test]
    fn ts_us_is_monotonically_non_decreasing() {
        let buf = SharedBuf::default();
        let probe = JsonLinesProbe::new(buf.clone());
        for i in 0..50 {
            probe.count(Counter::SimplexPivots, i);
        }
        let text = buf.contents();
        let stamps: Vec<u64> = text.lines().map(|l| split_ts(l).0).collect();
        assert_eq!(stamps.len(), 50);
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
    }

    #[test]
    fn escapes_json_special_characters() {
        let probe = JsonLinesProbe::new(Vec::new());
        probe.event("note", &[("msg", "a \"quoted\"\\\nline")]);
        let text = String::from_utf8(probe.into_inner()).unwrap();
        let (_, body) = split_ts(text.trim_end());
        assert_eq!(
            body,
            "\"event\":\"note\",\"msg\":\"a \\\"quoted\\\"\\\\\\nline\"}"
        );
    }

    #[test]
    fn shared_probe_backs_multiple_contexts() {
        let buf = SharedBuf::default();
        let probe: Rc<dyn Probe> = Rc::new(JsonLinesProbe::new(buf.clone()));
        let a = SolverContext::new().with_probe(Box::new(Rc::clone(&probe)));
        let b = SolverContext::new().with_probe(Box::new(Rc::clone(&probe)));
        a.count(Counter::DijkstraCalls, 1);
        b.emit("rung", &[("rung", "full")]);
        let text = buf.contents();
        assert!(text.contains("\"counter\":\"dijkstra calls\""), "{text}");
        assert!(text.contains("\"rung\":\"full\""), "{text}");
    }
}
