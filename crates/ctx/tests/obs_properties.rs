//! Randomized property tests for the observability merge algebra and the
//! canonical wire format: `Histogram::absorb` is associative and
//! commutative, absorbing the same set of [`ObsSnapshot`]s in any order
//! yields byte-identical canonical documents, and serialize → parse →
//! serialize is the identity on bytes. Cases are drawn from the in-tree
//! seeded PRNG, so every run checks the same cases.

use std::time::Instant;

use jcr_ctx::obs::wire::WireSnapshot;
use jcr_ctx::obs::{Histogram, Obs, ObsSnapshot, Unit};
use jcr_ctx::rng::{Rng, RngCore, SeedableRng, StdRng};

const CASES: u64 = 32;

/// A value whose magnitude is uniform over bit widths, so small and huge
/// values are equally likely to appear.
fn random_magnitude(rng: &mut StdRng) -> u64 {
    let shift = rng.gen_range(0..64u32);
    rng.next_u64() >> shift
}

fn random_histogram(rng: &mut StdRng, unit: Unit) -> Histogram {
    let mut h = Histogram::new(unit);
    for _ in 0..rng.gen_range(0..40usize) {
        h.record(random_magnitude(rng));
    }
    h
}

/// Exact equality on every observable field (buckets, count, sum, min,
/// max, unit) — the merge algebra is over integers, so no tolerance.
fn assert_hist_eq(a: &Histogram, b: &Histogram, what: &str) {
    assert_eq!(a.unit(), b.unit(), "{what}: unit");
    assert_eq!(a.count(), b.count(), "{what}: count");
    assert_eq!(a.sum(), b.sum(), "{what}: sum");
    assert_eq!(a.min(), b.min(), "{what}: min");
    assert_eq!(a.max(), b.max(), "{what}: max");
    assert_eq!(a.buckets(), b.buckets(), "{what}: buckets");
}

#[test]
fn histogram_absorb_is_commutative_and_associative() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0b5e55ed ^ case);
        let a = random_histogram(&mut rng, Unit::Count);
        let b = random_histogram(&mut rng, Unit::Count);
        let c = random_histogram(&mut rng, Unit::Count);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_hist_eq(&ab, &ba, &format!("case {case}: commutativity"));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab_c = ab.clone();
        ab_c.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut a_bc = a.clone();
        a_bc.absorb(&bc);
        assert_hist_eq(&ab_c, &a_bc, &format!("case {case}: associativity"));
    }
}

#[test]
fn absorbing_the_empty_histogram_is_the_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1de97 ^ case);
        let a = random_histogram(&mut rng, Unit::Nanos);
        let mut merged = a.clone();
        merged.absorb(&Histogram::new(Unit::Nanos));
        assert_hist_eq(&merged, &a, &format!("case {case}: right identity"));
        let mut onto_empty = Histogram::new(Unit::Nanos);
        onto_empty.absorb(&a);
        assert_hist_eq(&onto_empty, &a, &format!("case {case}: left identity"));
    }
}

/// Span names the generator draws from — `Obs` keys spans by `&'static
/// str`, so the pool is fixed and the tree shape is driven by the PRNG.
const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
const METRICS: [&str; 4] = ["m.widgets", "m.latency_ns", "m.depth", "m.fill"];

/// Builds a snapshot with a random span tree (explicit enter/exit nanos,
/// so the tree is fully deterministic given the seed), plus random
/// counters, gauges, and histograms.
fn random_snapshot(rng: &mut StdRng) -> ObsSnapshot {
    let obs = Obs::new(Instant::now(), 0);
    let mut clock = 0u64;
    let spans = rng.gen_range(1..12usize);
    for _ in 0..spans {
        let outer = obs.enter(NAMES[rng.gen_range(0..NAMES.len())]);
        let outer_start = clock;
        clock += rng.gen_range(1..1000u64);
        if rng.gen_range(0..2u8) == 1 {
            let inner = obs.enter(NAMES[rng.gen_range(0..NAMES.len())]);
            let inner_start = clock;
            clock += rng.gen_range(1..1000u64);
            obs.exit(inner, inner_start, clock);
        }
        clock += rng.gen_range(1..1000u64);
        obs.exit(outer, outer_start, clock);
    }
    for _ in 0..rng.gen_range(0..6usize) {
        obs.add_counter(
            METRICS[rng.gen_range(0..METRICS.len())],
            rng.gen_range(0..1_000_000u64),
        );
    }
    for _ in 0..rng.gen_range(0..4usize) {
        obs.set_gauge(
            METRICS[rng.gen_range(0..METRICS.len())],
            f64::from(rng.gen_range(-1000..1000i32)) * 1.25,
        );
    }
    for _ in 0..rng.gen_range(0..30usize) {
        obs.record(
            METRICS[rng.gen_range(0..METRICS.len())],
            Unit::Count,
            random_magnitude(rng),
        );
    }
    obs.snapshot()
}

#[test]
fn snapshot_merge_is_order_independent_on_the_wire() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9e3779b9 ^ case);
        let parts: Vec<ObsSnapshot> = (0..rng.gen_range(2..5usize))
            .map(|_| random_snapshot(&mut rng))
            .collect();

        // Forward order and reverse order into fresh collectors; the
        // canonical render must be byte-identical (counters sum, gauges
        // max-merge, histograms add, span children sort by name).
        let forward = Obs::new(Instant::now(), 0);
        for p in &parts {
            forward.absorb(p);
        }
        let reverse = Obs::new(Instant::now(), 0);
        for p in parts.iter().rev() {
            reverse.absorb(p);
        }
        let fwd = WireSnapshot::from_snapshot(&forward.snapshot()).render();
        let rev = WireSnapshot::from_snapshot(&reverse.snapshot()).render();
        assert_eq!(fwd, rev, "case {case}: merge order leaked into the wire");

        // And deep equality agrees with the bytes.
        assert!(
            forward.snapshot().deep_eq(&reverse.snapshot()),
            "case {case}: deep_eq disagrees with byte identity"
        );
    }
}

#[test]
fn serialize_parse_serialize_is_the_identity_on_bytes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xfeedc0de ^ case);
        let snap = random_snapshot(&mut rng);
        let mut wire = WireSnapshot::from_snapshot(&snap);
        // Exercise the meta block too — the artifact writer stamps it.
        wire.meta.insert("kind".into(), "prop-test".into());
        wire.meta.insert("workers".into(), "8".into());
        let once = wire.render();
        let parsed = WireSnapshot::parse(&once)
            .unwrap_or_else(|e| panic!("case {case}: canonical document rejected: {e}"));
        let twice = parsed.render();
        assert_eq!(once, twice, "case {case}: round-trip changed bytes");
        // A second round trip is free once the first is the identity,
        // but pin it anyway: parse(render(parse(render(x)))) == parse(render(x)).
        let thrice = WireSnapshot::parse(&twice).unwrap().render();
        assert_eq!(twice, thrice, "case {case}");
    }
}

#[test]
fn absorb_into_open_span_grafts_under_it_deterministically() {
    // Grafting the same snapshot under the same open span twice doubles
    // counts but keeps the shape — the wire document of (graft ⊕ graft)
    // equals absorbing a pre-doubled child. This pins the graft point
    // the pool relies on for per-worker accounting.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xab5 ^ case);
        let child = random_snapshot(&mut rng);

        let host = Obs::new(Instant::now(), 0);
        let region = host.enter("region");
        host.absorb(&child);
        host.absorb(&child);
        host.exit(region, 0, 1);

        let doubled = Obs::new(Instant::now(), 0);
        doubled.absorb(&child);
        doubled.absorb(&child);
        let pre = doubled.snapshot();
        let host2 = Obs::new(Instant::now(), 0);
        let region2 = host2.enter("region");
        host2.absorb(&pre);
        host2.exit(region2, 0, 1);

        assert_eq!(
            WireSnapshot::from_snapshot(&host.snapshot()).render(),
            WireSnapshot::from_snapshot(&host2.snapshot()).render(),
            "case {case}: graft is not additive"
        );
    }
}
