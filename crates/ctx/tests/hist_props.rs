//! Randomized property tests for the log₂ metric histograms: the bucket
//! grid tiles `u64` with no gaps or overlaps, every recorded value lands
//! in exactly one bucket (none lost), and merging two halves equals
//! recording the whole. Cases are drawn from the in-tree seeded PRNG, so
//! every run checks the same cases.

use jcr_ctx::obs::{bucket_hi, bucket_index, bucket_lo, Histogram, Unit, NBUCKETS};
use jcr_ctx::rng::{Rng, RngCore, SeedableRng, StdRng};

const CASES: u64 = 48;

#[test]
fn bucket_grid_is_monotone_and_tiles_u64() {
    assert_eq!((bucket_lo(0), bucket_hi(0)), (0, 0), "bucket 0 holds 0");
    for i in 1..NBUCKETS {
        assert_eq!(
            bucket_lo(i),
            bucket_hi(i - 1) + 1,
            "bucket {i} starts where bucket {} ends",
            i - 1
        );
        assert!(bucket_lo(i) <= bucket_hi(i), "bucket {i} is non-empty");
    }
    assert_eq!(bucket_hi(NBUCKETS - 1), u64::MAX, "top bucket reaches MAX");
    // Boundary values map to the bucket that admits them.
    for i in 0..NBUCKETS {
        assert_eq!(bucket_index(bucket_lo(i)), i);
        assert_eq!(bucket_index(bucket_hi(i)), i);
    }
}

/// A value whose magnitude is uniform over bit widths, so small and huge
/// values are equally likely to appear.
fn random_magnitude(rng: &mut StdRng) -> u64 {
    let shift = rng.gen_range(0..64u32);
    rng.next_u64() >> shift
}

#[test]
fn no_value_is_lost_and_each_lands_in_its_bucket() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0c4e7 ^ case);
        let n = rng.gen_range(1..200usize);
        let mut h = Histogram::new(Unit::Count);
        let (mut sum, mut min, mut max) = (0u128, u64::MAX, 0u64);
        for _ in 0..n {
            let v = random_magnitude(&mut rng);
            let i = bucket_index(v);
            assert!(
                bucket_lo(i) <= v && v <= bucket_hi(i),
                "case {case}: {v} outside bucket {i}"
            );
            h.record(v);
            sum += v as u128;
            min = min.min(v);
            max = max.max(v);
        }
        assert_eq!(h.count(), n as u64, "case {case}");
        assert_eq!(
            h.buckets().iter().sum::<u64>(),
            n as u64,
            "case {case}: bucket mass equals observation count"
        );
        assert_eq!((h.sum(), h.min(), h.max()), (sum, min, max), "case {case}");
        // Quantiles are monotone in q, bounded by the bucket grid, and
        // never exceed the recorded max.
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.95, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "case {case}: {qs:?}");
        assert_eq!(*qs.last().unwrap(), max, "case {case}");
        // quantile(0) is the upper edge of the min's bucket (clamped to
        // max), so it never undershoots the smallest observation.
        assert!(qs[0] >= min, "case {case}: q0 {} < min {min}", qs[0]);
    }
}

#[test]
fn absorbing_two_halves_equals_recording_the_whole() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x00ab_5012 ^ case);
        let n = rng.gen_range(2..150usize);
        let values: Vec<u64> = (0..n).map(|_| random_magnitude(&mut rng)).collect();
        let split = rng.gen_range(1..n);

        let mut whole = Histogram::new(Unit::Nanos);
        for &v in &values {
            whole.record(v);
        }
        let mut left = Histogram::new(Unit::Nanos);
        let mut right = Histogram::new(Unit::Nanos);
        for &v in &values[..split] {
            left.record(v);
        }
        for &v in &values[split..] {
            right.record(v);
        }
        left.absorb(&right);
        assert_eq!(
            left, whole,
            "case {case}: absorb must equal direct recording"
        );
    }
}
