//! Arena storage for path sets.
//!
//! Algorithms that juggle many paths at once (Yen's candidate pool, CG
//! column stores, per-request route sets) pay one heap allocation per
//! path when each is a `Vec<EdgeId>`. A [`PathArena`] packs all of them
//! into one flat edge slab addressed by `(start, len)` spans, so growing
//! the working set is an amortized slab append and every lookup is a
//! contiguous slice borrow.

use crate::graph::EdgeId;
use crate::path::Path;

/// Handle to a path stored in a [`PathArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PathId(u32);

impl PathId {
    /// The dense index of this path within its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A flat slab of edge sequences: one contiguous `Vec<EdgeId>` plus
/// `(start, len)` spans per stored path.
///
/// Paths are immutable once pushed and live until [`PathArena::clear`];
/// the slab never shrinks, so a cleared arena reuses its capacity on the
/// next round (scratch-buffer behavior, matching `ScratchArena`'s
/// recycling discipline).
#[derive(Clone, Debug, Default)]
pub struct PathArena {
    slab: Vec<EdgeId>,
    spans: Vec<(u32, u32)>,
}

impl PathArena {
    /// An empty arena.
    pub fn new() -> Self {
        PathArena::default()
    }

    /// An empty arena with room for `edges` total edges reserved.
    pub fn with_capacity(edges: usize) -> Self {
        PathArena {
            slab: Vec::with_capacity(edges),
            spans: Vec::new(),
        }
    }

    /// Number of paths stored.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds no paths.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total number of edges across all stored paths.
    pub fn edge_total(&self) -> usize {
        self.slab.len()
    }

    /// Drops all paths, keeping the slab capacity for reuse.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.spans.clear();
    }

    /// Copies an edge sequence into the arena, returning its handle.
    pub fn push(&mut self, edges: &[EdgeId]) -> PathId {
        self.push_concat(edges, &[])
    }

    /// Copies the concatenation `prefix ++ suffix` into the arena as one
    /// path — the Yen spur case (root prefix + spur suffix) without an
    /// intermediate buffer.
    pub fn push_concat(&mut self, prefix: &[EdgeId], suffix: &[EdgeId]) -> PathId {
        let start = u32::try_from(self.slab.len()).expect("path arena slab exceeds u32 range");
        let len = u32::try_from(prefix.len() + suffix.len()).expect("path length exceeds u32");
        self.slab.extend_from_slice(prefix);
        self.slab.extend_from_slice(suffix);
        let id = PathId(u32::try_from(self.spans.len()).expect("path count exceeds u32"));
        self.spans.push((start, len));
        id
    }

    /// The edge sequence of a stored path.
    pub fn get(&self, id: PathId) -> &[EdgeId] {
        let (start, len) = self.spans[id.index()];
        &self.slab[start as usize..(start + len) as usize]
    }

    /// Materializes a stored path as an owned [`Path`].
    pub fn to_path(&self, id: PathId) -> Path {
        Path::new(self.get(id).to_vec())
    }

    /// Iterator over all stored path handles, in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.spans.len() as u32).map(PathId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: usize) -> EdgeId {
        EdgeId::new(i)
    }

    #[test]
    fn push_get_roundtrip() {
        let mut arena = PathArena::new();
        let a = arena.push(&[e(0), e(1)]);
        let b = arena.push(&[e(2)]);
        let empty = arena.push(&[]);
        assert_eq!(arena.get(a), &[e(0), e(1)]);
        assert_eq!(arena.get(b), &[e(2)]);
        assert_eq!(arena.get(empty), &[]);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.edge_total(), 3);
    }

    #[test]
    fn concat_joins_without_gap() {
        let mut arena = PathArena::new();
        let id = arena.push_concat(&[e(5), e(6)], &[e(7)]);
        assert_eq!(arena.get(id), &[e(5), e(6), e(7)]);
        assert_eq!(arena.to_path(id).edges(), &[e(5), e(6), e(7)]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut arena = PathArena::new();
        for i in 0..100 {
            arena.push(&[e(i)]);
        }
        let cap = arena.slab.capacity();
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.edge_total(), 0);
        assert_eq!(arena.slab.capacity(), cap);
        let id = arena.push(&[e(9)]);
        assert_eq!(id.index(), 0);
    }

    #[test]
    fn ids_iterate_in_insertion_order() {
        let mut arena = PathArena::new();
        let a = arena.push(&[e(0)]);
        let b = arena.push(&[e(1)]);
        let got: Vec<PathId> = arena.ids().collect();
        assert_eq!(got, vec![a, b]);
    }
}
