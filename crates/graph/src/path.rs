//! Directed paths and path arithmetic.

use crate::graph::{DiGraph, EdgeId, NodeId};

/// A directed path, stored as the sequence of edges traversed.
///
/// The empty path is a valid path that starts and ends at the same
/// (unspecified) node; callers that need the trivial path at a concrete node
/// should track the node separately.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Creates a path from a sequence of edges.
    ///
    /// Use [`Path::is_valid`] to verify that consecutive edges chain
    /// head-to-tail in a given graph.
    pub fn new(edges: Vec<EdgeId>) -> Self {
        Path { edges }
    }

    /// The edges of the path, in traversal order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (hops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// First node of the path, if non-empty.
    pub fn source(&self, g: &DiGraph) -> Option<NodeId> {
        self.edges.first().map(|&e| g.src(e))
    }

    /// Last node of the path, if non-empty.
    pub fn target(&self, g: &DiGraph) -> Option<NodeId> {
        self.edges.last().map(|&e| g.dst(e))
    }

    /// The node sequence visited, source first (empty for an empty path).
    pub fn nodes(&self, g: &DiGraph) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        if let Some(&first) = self.edges.first() {
            out.push(g.src(first));
            for &e in &self.edges {
                out.push(g.dst(e));
            }
        }
        out
    }

    /// Sum of `cost[e]` over the path's edges.
    pub fn cost(&self, cost: &[f64]) -> f64 {
        self.edges.iter().map(|e| cost[e.index()]).sum()
    }

    /// Checks that consecutive edges chain head-to-tail in `g`.
    pub fn is_valid(&self, g: &DiGraph) -> bool {
        self.edges.windows(2).all(|w| g.dst(w[0]) == g.src(w[1]))
    }

    /// Whether the path visits any node more than once.
    pub fn has_repeated_node(&self, g: &DiGraph) -> bool {
        let nodes = self.nodes(g);
        let mut seen = vec![false; g.node_count()];
        for v in nodes {
            if seen[v.index()] {
                return true;
            }
            seen[v.index()] = true;
        }
        false
    }

    /// Consumes the path, returning its edges.
    pub fn into_edges(self) -> Vec<EdgeId> {
        self.edges
    }
}

impl From<Vec<EdgeId>> for Path {
    fn from(edges: Vec<EdgeId>) -> Self {
        Path::new(edges)
    }
}

impl FromIterator<EdgeId> for Path {
    fn from_iter<T: IntoIterator<Item = EdgeId>>(iter: T) -> Self {
        Path::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (DiGraph, [NodeId; 3], [EdgeId; 3]) {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let ab = g.add_edge(a, b);
        let bc = g.add_edge(b, c);
        let ca = g.add_edge(c, a);
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn nodes_and_endpoints() {
        let (g, [a, b, c], [ab, bc, _]) = triangle();
        let p = Path::new(vec![ab, bc]);
        assert!(p.is_valid(&g));
        assert_eq!(p.source(&g), Some(a));
        assert_eq!(p.target(&g), Some(c));
        assert_eq!(p.nodes(&g), vec![a, b, c]);
        assert_eq!(p.len(), 2);
        assert!(!p.has_repeated_node(&g));
    }

    #[test]
    fn invalid_chain_detected() {
        let (g, _, [ab, _, ca]) = triangle();
        let p = Path::new(vec![ab, ca]);
        assert!(!p.is_valid(&g));
    }

    #[test]
    fn cycle_has_repeated_node() {
        let (g, _, [ab, bc, ca]) = triangle();
        let p = Path::new(vec![ab, bc, ca]);
        assert!(p.is_valid(&g));
        assert!(p.has_repeated_node(&g));
    }

    #[test]
    fn cost_sums_edge_costs() {
        let (_, _, [ab, bc, _]) = triangle();
        let p = Path::new(vec![ab, bc]);
        let cost = [1.5, 2.5, 10.0];
        assert_eq!(p.cost(&cost), 4.0);
        assert_eq!(Path::default().cost(&cost), 0.0);
    }

    #[test]
    fn empty_path_behaviour() {
        let (g, _, _) = triangle();
        let p = Path::default();
        assert!(p.is_empty());
        assert!(p.is_valid(&g));
        assert_eq!(p.source(&g), None);
        assert_eq!(p.nodes(&g), Vec::<NodeId>::new());
    }
}
