//! The core directed multigraph type, stored in compressed sparse row
//! (CSR) form.

use std::fmt;
use std::sync::OnceLock;

/// Handle to a node of a [`DiGraph`].
///
/// Node ids are dense indices `0..node_count()`, so they can be used to
/// index caller-side attribute slices via [`NodeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Handle to an edge of a [`DiGraph`].
///
/// Edge ids are dense indices `0..edge_count()`, so they can be used to
/// index caller-side attribute slices via [`EdgeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// The caller is responsible for the index being in range for the graph
    /// it is used with; out-of-range ids cause panics when dereferenced.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// The dense index of this node, suitable for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a dense index.
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32 range"))
    }

    /// The dense index of this edge, suitable for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The CSR adjacency index: one contiguous edge array per direction,
/// sliced by per-node offsets. `out_edges[out_offsets[v]..out_offsets[v+1]]`
/// lists the outgoing edges of `v` in insertion order; `out_dsts` carries
/// the corresponding head nodes in the same positions so the Dijkstra
/// inner loop walks a single contiguous pair of arrays instead of chasing
/// per-edge records.
#[derive(Clone, Debug)]
struct Csr {
    out_offsets: Vec<u32>,
    out_edges: Vec<EdgeId>,
    out_dsts: Vec<NodeId>,
    in_offsets: Vec<u32>,
    in_edges: Vec<EdgeId>,
    in_srcs: Vec<NodeId>,
}

/// A compact directed multigraph with stable, dense node and edge indices.
///
/// Edges live in two flat endpoint arrays (`srcs`/`dsts`, indexed by edge
/// id); adjacency is a lazily built CSR index (`Csr`) that turns
/// per-node iteration into contiguous slice walks. Mutation (`add_node`,
/// `add_edge`) invalidates the index; the first adjacency query after a
/// mutation rebuilds it with a stable counting sort, so per-node edge
/// order is exactly insertion order (the order the old adjacency-list
/// representation produced).
///
/// Parallel edges and self-loops are permitted (the flow layers rely on
/// parallel edges when building auxiliary graphs with virtual links).
/// Nodes and edges cannot be removed; the optimization stack only ever
/// grows graphs (e.g. by adding virtual sources), which keeps ids stable.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    srcs: Vec<NodeId>,
    dsts: Vec<NodeId>,
    n_nodes: usize,
    csr: OnceLock<Csr>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes and
    /// `edges` edges.
    pub fn with_capacity(_nodes: usize, edges: usize) -> Self {
        DiGraph {
            srcs: Vec::with_capacity(edges),
            dsts: Vec::with_capacity(edges),
            n_nodes: 0,
            csr: OnceLock::new(),
        }
    }

    /// Adds a node and returns its handle.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.n_nodes);
        self.n_nodes += 1;
        self.csr.take();
        id
    }

    /// Adds `n` nodes and returns their handles in insertion order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Adds a directed edge `src -> dst` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(src.index() < self.n_nodes, "src node out of range");
        assert!(dst.index() < self.n_nodes, "dst node out of range");
        let id = EdgeId::new(self.srcs.len());
        self.srcs.push(src);
        self.dsts.push(dst);
        self.csr.take();
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.srcs.len()
    }

    /// Iterator over all node handles.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes).map(NodeId::new)
    }

    /// Iterator over all edge handles.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.srcs.len()).map(EdgeId::new)
    }

    /// Source node of an edge.
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.srcs[e.index()]
    }

    /// Destination node of an edge.
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.dsts[e.index()]
    }

    /// Both endpoints `(src, dst)` of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (self.srcs[e.index()], self.dsts[e.index()])
    }

    /// The CSR index, built on first use after a mutation.
    fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| self.build_csr())
    }

    fn build_csr(&self) -> Csr {
        let n = self.n_nodes;
        let m = self.srcs.len();
        // Counting sort by endpoint, visiting edges in id order: stable, so
        // each node's slice preserves edge insertion order.
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for e in 0..m {
            out_offsets[self.srcs[e].index() + 1] += 1;
            in_offsets[self.dsts[e].index() + 1] += 1;
        }
        for v in 0..n {
            out_offsets[v + 1] += out_offsets[v];
            in_offsets[v + 1] += in_offsets[v];
        }
        let mut out_edges = vec![EdgeId(0); m];
        let mut out_dsts = vec![NodeId(0); m];
        let mut in_edges = vec![EdgeId(0); m];
        let mut in_srcs = vec![NodeId(0); m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for e in 0..m {
            let (s, d) = (self.srcs[e], self.dsts[e]);
            let slot = out_cursor[s.index()] as usize;
            out_cursor[s.index()] += 1;
            out_edges[slot] = EdgeId::new(e);
            out_dsts[slot] = d;
            let slot = in_cursor[d.index()] as usize;
            in_cursor[d.index()] += 1;
            in_edges[slot] = EdgeId::new(e);
            in_srcs[slot] = s;
        }
        Csr {
            out_offsets,
            out_edges,
            out_dsts,
            in_offsets,
            in_edges,
            in_srcs,
        }
    }

    /// Outgoing edges of a node, as a contiguous CSR slice in insertion
    /// order.
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        let csr = self.csr();
        &csr.out_edges[csr.out_offsets[v.index()] as usize..csr.out_offsets[v.index() + 1] as usize]
    }

    /// Incoming edges of a node, as a contiguous CSR slice in insertion
    /// order.
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        let csr = self.csr();
        &csr.in_edges[csr.in_offsets[v.index()] as usize..csr.in_offsets[v.index() + 1] as usize]
    }

    /// Outgoing `(edge, head)` pairs of a node: the edge slice zipped with
    /// the pre-gathered destination nodes, so relaxation loops touch only
    /// two adjacent CSR arrays (no per-edge lookup into the endpoint
    /// table).
    pub fn out_pairs(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let csr = self.csr();
        let lo = csr.out_offsets[v.index()] as usize;
        let hi = csr.out_offsets[v.index() + 1] as usize;
        csr.out_edges[lo..hi]
            .iter()
            .copied()
            .zip(csr.out_dsts[lo..hi].iter().copied())
    }

    /// Incoming `(edge, tail)` pairs of a node (CSR slice walk).
    pub fn in_pairs(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let csr = self.csr();
        let lo = csr.in_offsets[v.index()] as usize;
        let hi = csr.in_offsets[v.index() + 1] as usize;
        csr.in_edges[lo..hi]
            .iter()
            .copied()
            .zip(csr.in_srcs[lo..hi].iter().copied())
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, v: NodeId) -> usize {
        let csr = self.csr();
        (csr.out_offsets[v.index() + 1] - csr.out_offsets[v.index()]) as usize
    }

    /// In-degree of a node.
    pub fn in_degree(&self, v: NodeId) -> usize {
        let csr = self.csr();
        (csr.in_offsets[v.index() + 1] - csr.in_offsets[v.index()]) as usize
    }

    /// Total (undirected) degree of a node, counting each incident edge once
    /// per direction.
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Finds an edge `src -> dst`, if one exists (first of possibly many
    /// parallel edges).
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_pairs(src).find(|&(_, d)| d == dst).map(|(e, _)| e)
    }

    /// Whether every node can reach every other node ignoring edge
    /// directions (weak connectivity).
    pub fn is_weakly_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for w in self
                .out_pairs(v)
                .map(|(_, d)| d)
                .chain(self.in_pairs(v).map(|(_, s)| s))
            {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// The set of nodes reachable from `src` following edge directions,
    /// restricted to edges for which `usable` returns `true`.
    pub fn reachable_from<F: FnMut(EdgeId) -> bool>(
        &self,
        src: NodeId,
        mut usable: F,
    ) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![src];
        seen[src.index()] = true;
        while let Some(v) = stack.pop() {
            for (e, d) in self.out_pairs(v) {
                if !seen[d.index()] && usable(e) {
                    seen[d.index()] = true;
                    stack.push(d);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.src(e), a);
        assert_eq!(g.dst(e), b);
        assert_eq!(g.endpoints(e), (a, b));
        assert_eq!(g.out_edges(a), &[e]);
        assert_eq!(g.in_edges(b), &[e]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(a, b);
        let loop_e = g.add_edge(a, a);
        assert_ne!(e1, e2);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.find_edge(a, b), Some(e1));
        assert_eq!(g.find_edge(a, a), Some(loop_e));
        assert_eq!(g.find_edge(b, a), None);
    }

    #[test]
    fn csr_survives_interleaved_mutation() {
        // Query (builds the CSR), mutate (invalidates it), query again.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let ab = g.add_edge(a, b);
        assert_eq!(g.out_edges(a), &[ab]);
        let c = g.add_node();
        let ac = g.add_edge(a, c);
        let cb = g.add_edge(c, b);
        assert_eq!(g.out_edges(a), &[ab, ac], "insertion order preserved");
        assert_eq!(g.in_edges(b), &[ab, cb]);
        assert_eq!(g.out_degree(c), 1);
        assert_eq!(
            g.out_pairs(a).collect::<Vec<_>>(),
            vec![(ab, b), (ac, c)],
            "pairs walk the same order as out_edges"
        );
        assert_eq!(g.in_pairs(b).collect::<Vec<_>>(), vec![(ab, a), (cb, c)]);
    }

    #[test]
    fn clone_preserves_structure() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b);
        let _ = g.out_edges(a); // force the CSR
        let h = g.clone();
        assert_eq!(h.out_edges(a), &[e]);
        assert_eq!(h.node_count(), 2);
    }

    #[test]
    fn weak_connectivity() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        assert!(!g.is_weakly_connected());
        g.add_edge(c, b);
        assert!(g.is_weakly_connected());
    }

    #[test]
    fn empty_and_singleton_graphs_are_connected() {
        let g = DiGraph::new();
        assert!(g.is_weakly_connected());
        let mut g = DiGraph::new();
        g.add_node();
        assert!(g.is_weakly_connected());
    }

    #[test]
    fn reachability_respects_filter() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let ab = g.add_edge(a, b);
        let bc = g.add_edge(b, c);
        let all = g.reachable_from(a, |_| true);
        assert_eq!(all, vec![true, true, true]);
        let without_bc = g.reachable_from(a, |e| e != bc);
        assert_eq!(without_bc, vec![true, true, false]);
        let without_ab = g.reachable_from(a, |e| e != ab);
        assert_eq!(without_ab, vec![true, false, false]);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", EdgeId::new(7)), "e7");
    }
}
