//! The core directed multigraph type.

use std::fmt;

/// Handle to a node of a [`DiGraph`].
///
/// Node ids are dense indices `0..node_count()`, so they can be used to
/// index caller-side attribute slices via [`NodeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Handle to an edge of a [`DiGraph`].
///
/// Edge ids are dense indices `0..edge_count()`, so they can be used to
/// index caller-side attribute slices via [`EdgeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// The caller is responsible for the index being in range for the graph
    /// it is used with; out-of-range ids cause panics when dereferenced.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// The dense index of this node, suitable for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a dense index.
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32 range"))
    }

    /// The dense index of this edge, suitable for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Edge {
    src: NodeId,
    dst: NodeId,
}

/// A compact directed multigraph with stable, dense node and edge indices.
///
/// Parallel edges and self-loops are permitted (the flow layers rely on
/// parallel edges when building auxiliary graphs with virtual links).
/// Nodes and edges cannot be removed; the optimization stack only ever
/// grows graphs (e.g. by adding virtual sources), which keeps ids stable.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes and
    /// `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node and returns its handle.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.out.len());
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds `n` nodes and returns their handles in insertion order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Adds a directed edge `src -> dst` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(src.index() < self.out.len(), "src node out of range");
        assert!(dst.index() < self.out.len(), "dst node out of range");
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { src, dst });
        self.out[src.index()].push(id);
        self.inc[dst.index()].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node handles.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.out.len()).map(NodeId::new)
    }

    /// Iterator over all edge handles.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::new)
    }

    /// Source node of an edge.
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of an edge.
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// Both endpoints `(src, dst)` of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.index()];
        (edge.src, edge.dst)
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out[v.index()]
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.inc[v.index()]
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v.index()].len()
    }

    /// Total (undirected) degree of a node, counting each incident edge once
    /// per direction.
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Finds an edge `src -> dst`, if one exists (first of possibly many
    /// parallel edges).
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out[src.index()]
            .iter()
            .copied()
            .find(|&e| self.dst(e) == dst)
    }

    /// Whether every node can reach every other node ignoring edge
    /// directions (weak connectivity).
    pub fn is_weakly_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &e in self.out_edges(v).iter().chain(self.in_edges(v)) {
                let (s, d) = self.endpoints(e);
                let w = if s == v { d } else { s };
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// The set of nodes reachable from `src` following edge directions,
    /// restricted to edges for which `usable` returns `true`.
    pub fn reachable_from<F: FnMut(EdgeId) -> bool>(
        &self,
        src: NodeId,
        mut usable: F,
    ) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![src];
        seen[src.index()] = true;
        while let Some(v) = stack.pop() {
            for &e in self.out_edges(v) {
                let d = self.dst(e);
                if !seen[d.index()] && usable(e) {
                    seen[d.index()] = true;
                    stack.push(d);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.src(e), a);
        assert_eq!(g.dst(e), b);
        assert_eq!(g.endpoints(e), (a, b));
        assert_eq!(g.out_edges(a), &[e]);
        assert_eq!(g.in_edges(b), &[e]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(a, b);
        let loop_e = g.add_edge(a, a);
        assert_ne!(e1, e2);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.find_edge(a, b), Some(e1));
        assert_eq!(g.find_edge(a, a), Some(loop_e));
        assert_eq!(g.find_edge(b, a), None);
    }

    #[test]
    fn weak_connectivity() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        assert!(!g.is_weakly_connected());
        g.add_edge(c, b);
        assert!(g.is_weakly_connected());
    }

    #[test]
    fn empty_and_singleton_graphs_are_connected() {
        let g = DiGraph::new();
        assert!(g.is_weakly_connected());
        let mut g = DiGraph::new();
        g.add_node();
        assert!(g.is_weakly_connected());
    }

    #[test]
    fn reachability_respects_filter() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let ab = g.add_edge(a, b);
        let bc = g.add_edge(b, c);
        let all = g.reachable_from(a, |_| true);
        assert_eq!(all, vec![true, true, true]);
        let without_bc = g.reachable_from(a, |e| e != bc);
        assert_eq!(without_bc, vec![true, true, false]);
        let without_ab = g.reachable_from(a, |e| e != ab);
        assert_eq!(without_ab, vec![true, false, false]);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", EdgeId::new(7)), "e7");
    }
}
