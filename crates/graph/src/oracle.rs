//! All-pairs distances without the all-pairs matrix.
//!
//! Paper-scale topologies (23–113 nodes) afford a dense |V|² distance
//! table; a 1000-node stress instance does not — and the solvers never
//! need most of it, because RNR routing only ever asks for rows rooted at
//! replica holders and the origin. [`DistanceOracle`] serves both regimes
//! behind one API: below a configurable node-count threshold it stores
//! one flat row-major block (distance + parent-edge planes), above it it
//! computes rows on demand into an LRU-bounded cache whose buffers are
//! recycled arena-style on eviction.

use std::sync::{Arc, Mutex, OnceLock};

use jcr_ctx::SolverContext;

use crate::graph::{DiGraph, EdgeId, NodeId};
use crate::path::Path;
use crate::shortest::{dijkstra_filtered_into, dijkstra_into_with_context, DijkstraScratch};

/// Sentinel in parent planes: no parent edge (source or unreachable).
const NO_PARENT: u32 = u32::MAX;

/// Default node-count threshold above which the oracle switches from the
/// dense block to on-demand rows. Overridable per oracle via
/// [`DistanceOracle::with_dense_max`] or globally via the
/// `JCR_ORACLE_DENSE_MAX` environment variable.
pub const DEFAULT_DENSE_MAX: usize = 600;

/// Default number of rows the on-demand cache retains.
/// Overridable via [`DistanceOracle::with_config`] or the
/// `JCR_ORACLE_ROWS` environment variable.
pub const DEFAULT_ROW_CAPACITY: usize = 128;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The effective dense-mode threshold: `JCR_ORACLE_DENSE_MAX` if set,
/// else [`DEFAULT_DENSE_MAX`].
pub fn default_dense_max() -> usize {
    env_usize("JCR_ORACLE_DENSE_MAX", DEFAULT_DENSE_MAX)
}

/// The effective on-demand row-cache capacity: `JCR_ORACLE_ROWS` if set,
/// else [`DEFAULT_ROW_CAPACITY`].
pub fn default_row_capacity() -> usize {
    env_usize("JCR_ORACLE_ROWS", DEFAULT_ROW_CAPACITY)
}

/// One shortest-path row: distances and parent edges from a single
/// source to every node, exactly what one Dijkstra run produces.
#[derive(Clone, Debug)]
pub struct RowData {
    dist: Vec<f64>,
    parent: Vec<u32>,
}

impl RowData {
    fn fill(&mut self, scratch: &DijkstraScratch, n: usize) {
        self.dist.clear();
        self.dist.extend_from_slice(&scratch.dists()[..n]);
        self.parent.clear();
        self.parent.extend((0..n).map(|v| {
            scratch
                .parent_edge(NodeId::new(v))
                .map_or(NO_PARENT, |e| e.index() as u32)
        }));
    }
}

/// A borrowed or shared view of one source's row. Dense rows borrow the
/// flat block; on-demand rows hand out an `Arc` so the cache can evict
/// without invalidating readers (fetch once, then read lock-free).
#[derive(Clone, Debug)]
pub enum Row<'a> {
    /// Slices of the dense row-major block.
    Dense {
        /// Distances from the row's source, indexed by node.
        dist: &'a [f64],
        /// Parent-edge plane (`NO_PARENT` = none).
        parent: &'a [u32],
    },
    /// A shared handle to an on-demand row.
    Cached(Arc<RowData>),
}

impl Row<'_> {
    /// Least cost from the row's source to `t` (`f64::INFINITY` if
    /// unreachable).
    pub fn dist(&self, t: NodeId) -> f64 {
        self.dists()[t.index()]
    }

    /// All distances from the row's source, indexed by node.
    pub fn dists(&self) -> &[f64] {
        match self {
            Row::Dense { dist, .. } => dist,
            Row::Cached(data) => &data.dist,
        }
    }

    fn parents(&self) -> &[u32] {
        match self {
            Row::Dense { parent, .. } => parent,
            Row::Cached(data) => &data.parent,
        }
    }

    /// Reconstructs the source-to-`t` path into `out` (cleared first).
    /// Returns `false`, leaving `out` empty, if `t` is unreachable.
    pub fn path_into(&self, g: &DiGraph, t: NodeId, out: &mut Vec<EdgeId>) -> bool {
        out.clear();
        if !self.dist(t).is_finite() {
            return false;
        }
        let parents = self.parents();
        let mut v = t;
        while parents[v.index()] != NO_PARENT {
            let e = EdgeId::new(parents[v.index()] as usize);
            out.push(e);
            v = g.src(e);
        }
        out.reverse();
        true
    }
}

/// The LRU row cache backing on-demand mode. Eviction recycles the
/// victim's buffers into a free list when no reader still holds the row,
/// so a steady-state cache performs no allocation at all.
#[derive(Debug, Default)]
struct RowCache {
    /// source index -> occupied slot, or `u32::MAX`.
    slot_of: Vec<u32>,
    /// slot -> source index currently stored there.
    src_of: Vec<u32>,
    rows: Vec<Arc<RowData>>,
    last_used: Vec<u64>,
    tick: u64,
    capacity: usize,
    rows_computed: u64,
    free: Vec<RowData>,
    scratch: DijkstraScratch,
}

impl RowCache {
    fn new(n: usize, capacity: usize) -> Self {
        RowCache {
            slot_of: vec![u32::MAX; n],
            src_of: Vec::new(),
            rows: Vec::new(),
            last_used: Vec::new(),
            tick: 0,
            capacity: capacity.max(1),
            rows_computed: 0,
            free: Vec::new(),
            scratch: DijkstraScratch::default(),
        }
    }

    fn lookup(&mut self, s: NodeId) -> Option<Arc<RowData>> {
        let slot = self.slot_of[s.index()];
        if slot == u32::MAX {
            return None;
        }
        self.tick += 1;
        self.last_used[slot as usize] = self.tick;
        Some(Arc::clone(&self.rows[slot as usize]))
    }

    /// Inserts a computed row, evicting the least-recently-used slot when
    /// the cache is full. Insertion order is the caller's responsibility —
    /// `prime` inserts in source order so the LRU state is deterministic
    /// regardless of how many workers computed the rows.
    fn insert(&mut self, s: NodeId, data: RowData) -> Arc<RowData> {
        self.tick += 1;
        let row = Arc::new(data);
        if self.rows.len() < self.capacity {
            let slot = self.rows.len() as u32;
            self.rows.push(Arc::clone(&row));
            self.src_of.push(s.index() as u32);
            self.last_used.push(self.tick);
            self.slot_of[s.index()] = slot;
            return row;
        }
        let victim = self
            .last_used
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
            .expect("capacity >= 1");
        let old_src = self.src_of[victim] as usize;
        self.slot_of[old_src] = u32::MAX;
        let old = std::mem::replace(&mut self.rows[victim], Arc::clone(&row));
        if let Some(buf) = Arc::into_inner(old) {
            self.free.push(buf);
        }
        self.src_of[victim] = s.index() as u32;
        self.last_used[victim] = self.tick;
        self.slot_of[s.index()] = victim as u32;
        row
    }

    fn take_buffer(&mut self) -> RowData {
        self.free.pop().unwrap_or(RowData {
            dist: Vec::new(),
            parent: Vec::new(),
        })
    }
}

/// What a carry-forward oracle construction did with the previous
/// oracle's rows (see [`DistanceOracle::carry_with_config`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CarryReport {
    /// Rows whose delta certificate held and that were copied verbatim.
    pub rows_carried: usize,
    /// Candidate rows invalidated by the cost delta (recomputed lazily or
    /// eagerly depending on storage mode).
    pub rows_dropped: usize,
    /// Carried rows re-verified bitwise against a fresh Dijkstra.
    pub rows_verified: usize,
    /// Whether the previous oracle's graph was structurally identical;
    /// `false` means nothing was carried.
    pub compatible: bool,
    /// Whether the sampled re-verification found a mismatch (in which
    /// case every carried row was dropped and the build went cold).
    pub verify_failed: bool,
}

/// Default number of carried rows re-verified bitwise against a fresh
/// Dijkstra in [`DistanceOracle::carry_with_config`].
pub const DEFAULT_CARRY_VERIFY_SAMPLES: usize = 2;

/// Named counter: oracle rows carried across a cost delta.
pub const ROWS_CARRIED: &str = "graph.oracle.rows_carried";
/// Named counter: candidate rows invalidated by a cost delta.
pub const ROWS_DROPPED: &str = "graph.oracle.rows_dropped";

#[derive(Debug)]
enum Storage {
    /// Flat row-major `n × n` planes: `dist[s * n + t]`, `parent[s * n + t]`.
    Dense {
        dist: Vec<f64>,
        parent: Vec<u32>,
    },
    OnDemand(Mutex<RowCache>),
}

/// Shortest-path distances (and paths) between all node pairs, stored
/// densely for paper-scale graphs and computed on demand past a node
/// threshold.
///
/// The oracle owns its graph and cost vector, so rows computed lazily are
/// guaranteed to see the same inputs the dense block would have — and
/// both modes run the identical Dijkstra core, so on-demand rows are
/// bit-equal to their dense counterparts.
#[derive(Debug)]
pub struct DistanceOracle {
    graph: DiGraph,
    cost: Vec<f64>,
    storage: Storage,
    max_cost: OnceLock<f64>,
}

impl DistanceOracle {
    /// Builds an oracle for `graph` under `cost`, choosing dense or
    /// on-demand storage by the default threshold (see
    /// [`DEFAULT_DENSE_MAX`], `JCR_ORACLE_DENSE_MAX`).
    pub fn new(graph: &DiGraph, cost: &[f64]) -> Self {
        Self::with_config(
            graph,
            cost,
            default_dense_max(),
            default_row_capacity(),
            None,
        )
    }

    /// [`DistanceOracle::new`] that fans the dense fill out over
    /// `ctx.workers()` threads and records the Dijkstra runs on `ctx`
    /// (on-demand mode defers all row work, so construction is O(n)).
    pub fn new_with_context(graph: &DiGraph, cost: &[f64], ctx: &SolverContext) -> Self {
        Self::with_config(
            graph,
            cost,
            default_dense_max(),
            default_row_capacity(),
            Some(ctx),
        )
    }

    /// Builds with an explicit dense-mode node threshold (overrides the
    /// environment), for callers that must not race on env state.
    pub fn with_dense_max(graph: &DiGraph, cost: &[f64], dense_max: usize) -> Self {
        Self::with_config(graph, cost, dense_max, default_row_capacity(), None)
    }

    /// Builds with explicit threshold and row-cache capacity and an
    /// optional context for the dense fill.
    pub fn with_config(
        graph: &DiGraph,
        cost: &[f64],
        dense_max: usize,
        row_capacity: usize,
        ctx: Option<&SolverContext>,
    ) -> Self {
        assert_eq!(cost.len(), graph.edge_count(), "cost slice length mismatch");
        let n = graph.node_count();
        let storage = if n <= dense_max {
            let (dist, parent) = match ctx {
                Some(ctx) => dense_fill_par(graph, cost, ctx),
                None => dense_fill(graph, cost),
            };
            Storage::Dense { dist, parent }
        } else {
            Storage::OnDemand(Mutex::new(RowCache::new(n, row_capacity)))
        };
        DistanceOracle {
            graph: graph.clone(),
            cost: cost.to_vec(),
            storage,
            max_cost: OnceLock::new(),
        }
    }

    /// The graph the oracle answers for.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The per-edge costs the oracle answers under.
    pub fn cost(&self) -> &[f64] {
        &self.cost
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether the oracle holds the full dense block (as opposed to the
    /// on-demand row cache).
    pub fn is_dense(&self) -> bool {
        matches!(self.storage, Storage::Dense { .. })
    }

    /// Number of on-demand rows computed so far (0 in dense mode — the
    /// block is filled at construction and never recomputed).
    pub fn rows_computed(&self) -> u64 {
        match &self.storage {
            Storage::Dense { .. } => 0,
            Storage::OnDemand(cache) => cache.lock().expect("row cache poisoned").rows_computed,
        }
    }

    /// Number of rows currently resident in the on-demand cache
    /// (`node_count` in dense mode).
    pub fn rows_resident(&self) -> usize {
        match &self.storage {
            Storage::Dense { .. } => self.graph.node_count(),
            Storage::OnDemand(cache) => cache.lock().expect("row cache poisoned").rows.len(),
        }
    }

    fn compute_row(&self, s: NodeId, cache: &mut RowCache) -> RowData {
        let n = self.graph.node_count();
        let mut data = cache.take_buffer();
        let mut scratch = std::mem::take(&mut cache.scratch);
        dijkstra_filtered_into(&self.graph, s, &self.cost, |_| true, &mut scratch);
        data.fill(&scratch, n);
        cache.scratch = scratch;
        cache.rows_computed += 1;
        data
    }

    /// The row rooted at `s`: a borrowed slice pair in dense mode, a
    /// shared cache handle in on-demand mode (computed now if absent).
    ///
    /// Fetch the handle once per source and read it repeatedly — in
    /// on-demand mode every `row` call takes the cache lock.
    pub fn row(&self, s: NodeId) -> Row<'_> {
        match &self.storage {
            Storage::Dense { dist, parent } => {
                let n = self.graph.node_count();
                let lo = s.index() * n;
                Row::Dense {
                    dist: &dist[lo..lo + n],
                    parent: &parent[lo..lo + n],
                }
            }
            Storage::OnDemand(cache) => {
                let mut cache = cache.lock().expect("row cache poisoned");
                if let Some(row) = cache.lookup(s) {
                    return Row::Cached(row);
                }
                let data = self.compute_row(s, &mut cache);
                Row::Cached(cache.insert(s, data))
            }
        }
    }

    /// Least cost from `s` to `t` (`f64::INFINITY` if unreachable).
    pub fn dist(&self, s: NodeId, t: NodeId) -> f64 {
        self.row(s).dist(t)
    }

    /// A least-cost `s -> t` path, or `None` if unreachable.
    pub fn path(&self, s: NodeId, t: NodeId) -> Option<Path> {
        let mut edges = Vec::new();
        self.row(s)
            .path_into(&self.graph, t, &mut edges)
            .then(|| Path::new(edges))
    }

    /// Ensures the rows rooted at `sources` are resident, computing
    /// missing ones in parallel over `ctx.workers()` threads.
    ///
    /// Rows are inserted in `sources` order regardless of worker count,
    /// so the cache's LRU state (and therefore every later eviction
    /// decision) is deterministic. No-op in dense mode. Duplicate sources
    /// are primed once. If `sources` exceeds the cache capacity, only the
    /// last `capacity` of them stay resident — later `row` calls recompute
    /// the rest on demand.
    pub fn prime_rows_with_context(&self, sources: &[NodeId], ctx: &SolverContext) {
        let Storage::OnDemand(cache) = &self.storage else {
            return;
        };
        let missing: Vec<NodeId> = {
            let cache = cache.lock().expect("row cache poisoned");
            let mut seen = vec![false; self.graph.node_count()];
            sources
                .iter()
                .copied()
                .filter(|s| {
                    cache.slot_of[s.index()] == u32::MAX
                        && !std::mem::replace(&mut seen[s.index()], true)
                })
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        let _s = ctx.span("graph.oracle.prime");
        let n = self.graph.node_count();
        let computed = jcr_ctx::par::par_map_init(
            ctx,
            &missing,
            DijkstraScratch::default,
            |scratch, wctx, _i, &s| {
                dijkstra_into_with_context(&self.graph, s, &self.cost, scratch, wctx);
                let mut data = RowData {
                    dist: Vec::new(),
                    parent: Vec::new(),
                };
                data.fill(scratch, n);
                data
            },
        );
        let mut cache = cache.lock().expect("row cache poisoned");
        for (s, data) in missing.into_iter().zip(computed) {
            cache.rows_computed += 1;
            cache.insert(s, data);
        }
    }

    /// The largest finite pairwise distance, computed lazily on first use.
    ///
    /// Dense mode scans the resident block; on-demand mode streams one
    /// Dijkstra per source through a single scratch — it never stores the
    /// |V|² result, keeping peak memory O(|V|).
    pub fn max_cost(&self) -> f64 {
        *self.max_cost.get_or_init(|| match &self.storage {
            Storage::Dense { dist, .. } => dist
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(0.0, f64::max),
            Storage::OnDemand(_) => {
                let mut scratch = DijkstraScratch::default();
                let mut max = 0.0f64;
                for s in self.graph.nodes() {
                    dijkstra_filtered_into(&self.graph, s, &self.cost, |_| true, &mut scratch);
                    for &d in scratch.dists() {
                        if d.is_finite() && d > max {
                            max = d;
                        }
                    }
                }
                max
            }
        })
    }
}

impl DistanceOracle {
    /// Builds an oracle for `graph` under `cost`, carrying forward every
    /// row of `prev` that a per-edge delta certificate proves unchanged —
    /// dynamic-SSSP delta invalidation instead of a full sweep.
    ///
    /// A row rooted at `s` survives iff:
    ///
    /// * **(a)** no reachable node's parent edge *increased* in cost —
    ///   the tree's recorded distances are then still exact, and any
    ///   alternative path through an increased edge only got worse; and
    /// * **(b)** for every *decreased* edge `(u, v)`:
    ///   `dist(s,u) + c_new(u,v) > dist(s,v)` **strictly** (rows with
    ///   `dist(s,u) = ∞` pass vacuously: every `s → u` prefix uses only
    ///   non-decreased edges up to the first decreased one, so it cannot
    ///   have become finite). No decreased edge then offers an
    ///   equal-or-better path anywhere, so no distance changes — and
    ///   because the Dijkstra heap pops in deterministic `(dist, node)`
    ///   order and every dirty candidate for a surviving row is strictly
    ///   worse than the recorded optimum, the parent plane is unchanged
    ///   too: carried rows are **bit-identical** to freshly computed
    ///   ones. Equality is dropped conservatively — a tying edge could
    ///   flip the parent choice.
    ///
    /// The first `verify_samples` carried rows (in source order) are
    /// re-run from scratch and compared bitwise; any mismatch distrusts
    /// the whole carry and drops every carried row. Structural graph
    /// mismatch (node/edge counts or endpoints) carries nothing. Either
    /// way the result is a fully valid oracle — invalid rows are
    /// recomputed eagerly in dense mode and lazily in on-demand mode.
    pub fn carry_with_config(
        prev: &DistanceOracle,
        graph: &DiGraph,
        cost: &[f64],
        dense_max: usize,
        row_capacity: usize,
        verify_samples: usize,
        ctx: Option<&SolverContext>,
    ) -> (Self, CarryReport) {
        assert_eq!(cost.len(), graph.edge_count(), "cost slice length mismatch");
        let _s = ctx.map(|c| c.span("graph.oracle.carry"));
        let n = graph.node_count();
        let mut report = CarryReport {
            compatible: prev.graph.node_count() == n
                && prev.graph.edge_count() == graph.edge_count()
                && (0..graph.edge_count()).all(|e| {
                    prev.graph.endpoints(EdgeId::new(e)) == graph.endpoints(EdgeId::new(e))
                }),
            ..CarryReport::default()
        };
        if !report.compatible {
            let oracle = Self::with_config(graph, cost, dense_max, row_capacity, ctx);
            return (oracle, report);
        }
        let mut increased = vec![false; cost.len()];
        let mut decreased: Vec<EdgeId> = Vec::new();
        for e in 0..cost.len() {
            if cost[e] > prev.cost[e] {
                increased[e] = true;
            } else if cost[e] < prev.cost[e] {
                decreased.push(EdgeId::new(e));
            }
        }
        let row_valid = |dist: &[f64], parent: &[u32]| -> bool {
            for &p in parent.iter().take(n) {
                if p != NO_PARENT && increased[p as usize] {
                    return false;
                }
            }
            for &e in &decreased {
                let (u, v) = graph.endpoints(e);
                let du = dist[u.index()];
                if du.is_finite() && du + cost[e.index()] <= dist[v.index()] {
                    return false;
                }
            }
            true
        };
        // Candidate rows: every source in dense mode; resident cached
        // rows, visited in source order for LRU determinism, on demand.
        let candidates: Vec<(NodeId, RowData)> = match &prev.storage {
            Storage::Dense { dist, parent } => (0..n)
                .map(|s| {
                    let lo = s * n;
                    let data = RowData {
                        dist: dist[lo..lo + n].to_vec(),
                        parent: parent[lo..lo + n].to_vec(),
                    };
                    (NodeId::new(s), data)
                })
                .collect(),
            Storage::OnDemand(cache) => {
                let cache = cache.lock().expect("row cache poisoned");
                let mut srcs: Vec<u32> = cache.src_of.clone();
                srcs.sort_unstable();
                srcs.iter()
                    .map(|&s| {
                        let slot = cache.slot_of[s as usize] as usize;
                        (NodeId::new(s as usize), (*cache.rows[slot]).clone())
                    })
                    .collect()
            }
        };
        let mut carried: Vec<(NodeId, RowData)> = Vec::new();
        for (s, row) in candidates {
            if row_valid(&row.dist, &row.parent) {
                carried.push((s, row));
            } else {
                report.rows_dropped += 1;
            }
        }
        // The validation gate: a deterministic sample of carried rows is
        // recomputed from scratch and must match bitwise. One mismatch
        // means the certificate reasoning does not hold for this delta —
        // distrust everything carried and go cold.
        let mut scratch = DijkstraScratch::default();
        for (s, row) in carried.iter().take(verify_samples) {
            dijkstra_filtered_into(graph, *s, cost, |_| true, &mut scratch);
            report.rows_verified += 1;
            let fresh_ok = (0..n).all(|v| {
                scratch.dists()[v].to_bits() == row.dist[v].to_bits()
                    && scratch
                        .parent_edge(NodeId::new(v))
                        .map_or(NO_PARENT, |e| e.index() as u32)
                        == row.parent[v]
            });
            if !fresh_ok {
                report.verify_failed = true;
                break;
            }
        }
        if report.verify_failed {
            report.rows_dropped += carried.len();
            carried.clear();
        }
        report.rows_carried = carried.len();
        if let Some(ctx) = ctx {
            ctx.obs()
                .add_counter(ROWS_CARRIED, report.rows_carried as u64);
            ctx.obs()
                .add_counter(ROWS_DROPPED, report.rows_dropped as u64);
        }
        let storage = if n <= dense_max {
            let mut have = vec![false; n];
            for (s, _) in &carried {
                have[s.index()] = true;
            }
            let missing: Vec<NodeId> = (0..n).filter(|&s| !have[s]).map(NodeId::new).collect();
            let computed: Vec<RowData> = match ctx {
                Some(ctx) if !missing.is_empty() => jcr_ctx::par::par_map_init(
                    ctx,
                    &missing,
                    DijkstraScratch::default,
                    |scratch, wctx, _i, &s| {
                        dijkstra_into_with_context(graph, s, cost, scratch, wctx);
                        let mut data = RowData {
                            dist: Vec::new(),
                            parent: Vec::new(),
                        };
                        data.fill(scratch, n);
                        data
                    },
                ),
                _ => missing
                    .iter()
                    .map(|&s| {
                        dijkstra_filtered_into(graph, s, cost, |_| true, &mut scratch);
                        let mut data = RowData {
                            dist: Vec::new(),
                            parent: Vec::new(),
                        };
                        data.fill(&scratch, n);
                        data
                    })
                    .collect(),
            };
            let mut dist = vec![f64::INFINITY; n * n];
            let mut parent = vec![NO_PARENT; n * n];
            for (s, row) in &carried {
                let lo = s.index() * n;
                dist[lo..lo + n].copy_from_slice(&row.dist);
                parent[lo..lo + n].copy_from_slice(&row.parent);
            }
            for (s, row) in missing.iter().zip(computed.iter()) {
                let lo = s.index() * n;
                dist[lo..lo + n].copy_from_slice(&row.dist);
                parent[lo..lo + n].copy_from_slice(&row.parent);
            }
            Storage::Dense { dist, parent }
        } else {
            let mut cache = RowCache::new(n, row_capacity);
            for (s, row) in carried {
                cache.insert(s, row);
            }
            Storage::OnDemand(Mutex::new(cache))
        };
        let oracle = DistanceOracle {
            graph: graph.clone(),
            cost: cost.to_vec(),
            storage,
            max_cost: OnceLock::new(),
        };
        (oracle, report)
    }
}

impl DistanceOracle {
    /// A clone that keeps the resident rows: dense clones copy the block
    /// (same as [`Clone`]), while on-demand clones share the currently
    /// cached rows (`Arc`-cheap) instead of starting cold. Rows are
    /// re-inserted in ascending source order so the clone's LRU state is
    /// deterministic regardless of the original's access history.
    ///
    /// This is the handle an hourly driver carries between hours so
    /// [`DistanceOracle::carry_with_config`] has rows to re-certify; the
    /// plain [`Clone`] stays cold on purpose (cached rows are derived
    /// state), so carry paths must use this instead.
    pub fn clone_resident(&self) -> Self {
        let storage = match &self.storage {
            Storage::Dense { dist, parent } => Storage::Dense {
                dist: dist.clone(),
                parent: parent.clone(),
            },
            Storage::OnDemand(cache) => {
                let cache = cache.lock().expect("row cache poisoned");
                let mut fresh = RowCache::new(self.graph.node_count(), cache.capacity);
                let mut resident: Vec<u32> = cache.src_of.clone();
                resident.sort_unstable();
                for s in resident {
                    if let Some(row) = cache
                        .slot_of
                        .get(s as usize)
                        .filter(|&&slot| slot != u32::MAX)
                        .map(|&slot| RowData::clone(&cache.rows[slot as usize]))
                    {
                        fresh.insert(NodeId::new(s as usize), row);
                    }
                }
                Storage::OnDemand(Mutex::new(fresh))
            }
        };
        DistanceOracle {
            graph: self.graph.clone(),
            cost: self.cost.clone(),
            storage,
            max_cost: self.max_cost.clone(),
        }
    }
}

impl Clone for DistanceOracle {
    /// Cloning an on-demand oracle starts with a cold cache (cached rows
    /// are derived state and recompute bit-identically); a dense clone
    /// copies the block.
    fn clone(&self) -> Self {
        let storage = match &self.storage {
            Storage::Dense { dist, parent } => Storage::Dense {
                dist: dist.clone(),
                parent: parent.clone(),
            },
            Storage::OnDemand(cache) => {
                let cache = cache.lock().expect("row cache poisoned");
                Storage::OnDemand(Mutex::new(RowCache::new(
                    self.graph.node_count(),
                    cache.capacity,
                )))
            }
        };
        DistanceOracle {
            graph: self.graph.clone(),
            cost: self.cost.clone(),
            storage,
            max_cost: self.max_cost.clone(),
        }
    }
}

fn dense_fill(g: &DiGraph, cost: &[f64]) -> (Vec<f64>, Vec<u32>) {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n * n];
    let mut parent = vec![NO_PARENT; n * n];
    let mut scratch = DijkstraScratch::default();
    for s in g.nodes() {
        dijkstra_filtered_into(g, s, cost, |_| true, &mut scratch);
        let lo = s.index() * n;
        dist[lo..lo + n].copy_from_slice(&scratch.dists()[..n]);
        for v in 0..n {
            if let Some(e) = scratch.parent_edge(NodeId::new(v)) {
                parent[lo + v] = e.index() as u32;
            }
        }
    }
    (dist, parent)
}

fn dense_fill_par(g: &DiGraph, cost: &[f64], ctx: &SolverContext) -> (Vec<f64>, Vec<u32>) {
    let _s = ctx.span("graph.oracle.dense_fill");
    let n = g.node_count();
    let sources: Vec<NodeId> = g.nodes().collect();
    let rows = jcr_ctx::par::par_map_init(
        ctx,
        &sources,
        DijkstraScratch::default,
        |scratch, wctx, _i, &s| {
            dijkstra_into_with_context(g, s, cost, scratch, wctx);
            let mut data = RowData {
                dist: Vec::new(),
                parent: Vec::new(),
            };
            data.fill(scratch, n);
            data
        },
    );
    let mut dist = vec![f64::INFINITY; n * n];
    let mut parent = vec![NO_PARENT; n * n];
    for (s, row) in rows.into_iter().enumerate() {
        let lo = s * n;
        dist[lo..lo + n].copy_from_slice(&row.dist);
        parent[lo..lo + n].copy_from_slice(&row.parent);
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> (DiGraph, Vec<f64>) {
        let mut g = DiGraph::new();
        let nodes = g.add_nodes(n);
        let mut cost = Vec::new();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n]);
            cost.push(1.0 + (i % 3) as f64);
            g.add_edge(nodes[(i + 1) % n], nodes[i]);
            cost.push(1.5 + (i % 2) as f64);
        }
        (g, cost)
    }

    #[test]
    fn dense_and_on_demand_agree_bitwise() {
        let (g, cost) = ring(12);
        let dense = DistanceOracle::with_config(&g, &cost, usize::MAX, 4, None);
        let lazy = DistanceOracle::with_config(&g, &cost, 0, 4, None);
        assert!(dense.is_dense());
        assert!(!lazy.is_dense());
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(
                    dense.dist(s, t).to_bits(),
                    lazy.dist(s, t).to_bits(),
                    "row {s} col {t}"
                );
                assert_eq!(dense.path(s, t), lazy.path(s, t));
            }
        }
        assert_eq!(dense.max_cost().to_bits(), lazy.max_cost().to_bits());
    }

    #[test]
    fn lru_evicts_and_recomputes() {
        let (g, cost) = ring(10);
        let lazy = DistanceOracle::with_config(&g, &cost, 0, 2, None);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let c = NodeId::new(2);
        let first = lazy.dist(a, b);
        lazy.dist(b, c);
        assert_eq!(lazy.rows_computed(), 2);
        lazy.dist(a, c); // still cached, refreshes a's slot
        assert_eq!(lazy.rows_computed(), 2);
        lazy.dist(c, a); // evicts the LRU row (b's — a was just touched)
        assert_eq!(lazy.rows_computed(), 3);
        assert_eq!(lazy.rows_resident(), 2);
        assert_eq!(lazy.dist(a, b).to_bits(), first.to_bits());
        assert_eq!(lazy.rows_computed(), 3, "a still resident");
        lazy.dist(b, a);
        assert_eq!(lazy.rows_computed(), 4, "evicted row recomputed");
    }

    #[test]
    fn priming_is_deterministic_across_widths() {
        let (g, cost) = ring(16);
        let sources: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let mut reference: Option<Vec<u64>> = None;
        for workers in [1, 2, 8] {
            let ctx = SolverContext::new().with_workers(workers);
            let lazy = DistanceOracle::with_config(&g, &cost, 0, 8, None);
            lazy.prime_rows_with_context(&sources, &ctx);
            assert_eq!(lazy.rows_computed(), 8);
            let bits: Vec<u64> = sources
                .iter()
                .flat_map(|&s| {
                    lazy.row(s)
                        .dists()
                        .iter()
                        .map(|d| d.to_bits())
                        .collect::<Vec<_>>()
                })
                .collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "workers = {workers}"),
            }
            // Priming already-resident rows is free.
            lazy.prime_rows_with_context(&sources, &ctx);
            assert_eq!(lazy.rows_computed(), 8);
        }
    }

    #[test]
    fn row_handles_survive_eviction() {
        let (g, cost) = ring(8);
        let lazy = DistanceOracle::with_config(&g, &cost, 0, 1, None);
        let row0 = lazy.row(NodeId::new(0));
        let d = row0.dist(NodeId::new(3));
        lazy.row(NodeId::new(5)); // evicts row 0 from the cache
        assert_eq!(row0.dist(NodeId::new(3)).to_bits(), d.to_bits());
    }

    #[test]
    fn dense_parallel_fill_matches_serial() {
        let (g, cost) = ring(9);
        let serial = DistanceOracle::with_config(&g, &cost, usize::MAX, 4, None);
        let ctx = SolverContext::new().with_workers(4);
        let par = DistanceOracle::with_config(&g, &cost, usize::MAX, 4, Some(&ctx));
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(serial.dist(s, t).to_bits(), par.dist(s, t).to_bits());
            }
        }
        assert_eq!(ctx.stats().dijkstra_calls, g.node_count() as u64);
    }

    #[test]
    fn carry_identical_costs_keeps_every_row() {
        let (g, cost) = ring(10);
        let prev = DistanceOracle::with_config(&g, &cost, usize::MAX, 4, None);
        let (next, report) =
            DistanceOracle::carry_with_config(&prev, &g, &cost, usize::MAX, 4, 2, None);
        assert!(report.compatible);
        assert!(!report.verify_failed);
        assert_eq!(report.rows_carried, 10);
        assert_eq!(report.rows_dropped, 0);
        assert_eq!(report.rows_verified, 2);
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(next.dist(s, t).to_bits(), prev.dist(s, t).to_bits());
            }
        }
    }

    #[test]
    fn carry_matches_fresh_bitwise_under_random_deltas() {
        // Kills (cost -> INF), restores (INF -> finite), halvings and
        // doublings, all at once: every carried answer must equal a
        // cold oracle's bit for bit — the empirical check behind the
        // delta certificate.
        let (g, base) = ring(14);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next_u64 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut prev_cost = base.clone();
        let mut prev = DistanceOracle::with_config(&g, &prev_cost, usize::MAX, 4, None);
        let mut carried_total = 0usize;
        for trial in 0..24 {
            let mut cost = base.clone();
            for c in cost.iter_mut() {
                match next_u64() % 6 {
                    0 => *c *= 2.0,
                    1 => *c *= 0.5,
                    2 => *c = f64::INFINITY,
                    _ => {}
                }
            }
            let (carried, report) =
                DistanceOracle::carry_with_config(&prev, &g, &cost, usize::MAX, 4, 2, None);
            assert!(report.compatible, "trial {trial}");
            assert!(!report.verify_failed, "trial {trial}");
            carried_total += report.rows_carried;
            let fresh = DistanceOracle::with_config(&g, &cost, usize::MAX, 4, None);
            for s in g.nodes() {
                for t in g.nodes() {
                    assert_eq!(
                        carried.dist(s, t).to_bits(),
                        fresh.dist(s, t).to_bits(),
                        "trial {trial} {s}->{t}"
                    );
                    assert_eq!(carried.path(s, t), fresh.path(s, t), "trial {trial}");
                }
            }
            prev = carried;
            prev_cost = cost;
        }
        let _ = prev_cost;
        assert!(carried_total > 0, "certificate never fired");
    }

    #[test]
    fn carry_on_demand_seeds_cache_without_recompute() {
        let (g, cost) = ring(12);
        let prev = DistanceOracle::with_config(&g, &cost, 0, 6, None);
        let warm: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        for &s in &warm {
            prev.row(s);
        }
        let (next, report) = DistanceOracle::carry_with_config(&prev, &g, &cost, 0, 6, 2, None);
        assert_eq!(report.rows_carried, 4);
        assert!(!next.is_dense());
        assert_eq!(next.rows_resident(), 4);
        for &s in &warm {
            for t in g.nodes() {
                assert_eq!(next.dist(s, t).to_bits(), prev.dist(s, t).to_bits());
            }
        }
        assert_eq!(next.rows_computed(), 0, "carried rows were not recomputed");
        next.row(NodeId::new(9));
        assert_eq!(next.rows_computed(), 1);
    }

    #[test]
    fn carry_structural_mismatch_goes_cold() {
        let (g, cost) = ring(8);
        let (h, hcost) = ring(9);
        let prev = DistanceOracle::with_config(&g, &cost, usize::MAX, 4, None);
        let (next, report) =
            DistanceOracle::carry_with_config(&prev, &h, &hcost, usize::MAX, 4, 2, None);
        assert!(!report.compatible);
        assert_eq!(report.rows_carried, 0);
        let fresh = DistanceOracle::with_config(&h, &hcost, usize::MAX, 4, None);
        for s in h.nodes() {
            for t in h.nodes() {
                assert_eq!(next.dist(s, t).to_bits(), fresh.dist(s, t).to_bits());
            }
        }
    }

    #[test]
    fn clone_resets_cache_but_answers_identically() {
        let (g, cost) = ring(6);
        let lazy = DistanceOracle::with_config(&g, &cost, 0, 4, None);
        let d = lazy.dist(NodeId::new(1), NodeId::new(4));
        let fork = lazy.clone();
        assert_eq!(fork.rows_computed(), 0);
        assert_eq!(
            fork.dist(NodeId::new(1), NodeId::new(4)).to_bits(),
            d.to_bits()
        );
    }
}
