//! Directed-graph substrate for the cache-network stack.
//!
//! This crate provides the minimal graph machinery the joint caching and
//! routing algorithms build on: a compact directed multigraph
//! ([`DiGraph`]), single-source shortest paths ([`shortest::dijkstra`],
//! [`shortest::bellman_ford`]), all-pairs least costs
//! ([`shortest::all_pairs`]), Yen's k-shortest simple paths
//! ([`shortest::k_shortest_paths`]), and path/connectivity utilities.
//!
//! Everything is indexed by the strongly-typed handles [`NodeId`] and
//! [`EdgeId`]; per-edge attributes (costs, capacities, flows) are stored by
//! callers in plain slices indexed by `EdgeId::index()`, which keeps the
//! graph reusable across the many attribute sets the optimization layers
//! juggle (costs, capacities, residual flows, …).
//!
//! # Examples
//!
//! ```
//! use jcr_graph::{DiGraph, shortest};
//!
//! let mut g = DiGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! let c = g.add_node();
//! let ab = g.add_edge(a, b);
//! let bc = g.add_edge(b, c);
//! let ac = g.add_edge(a, c);
//! let mut cost = vec![0.0; g.edge_count()];
//! cost[ab.index()] = 1.0;
//! cost[bc.index()] = 1.0;
//! cost[ac.index()] = 5.0;
//!
//! let tree = shortest::dijkstra(&g, a, &cost);
//! assert_eq!(tree.dist(c), 2.0);
//! assert_eq!(tree.path_to(c).unwrap(), vec![ab, bc]);
//! ```

pub mod arena;
pub mod graph;
pub mod oracle;
pub mod path;
pub mod shortest;
pub mod structure;

pub use arena::{PathArena, PathId};
pub use graph::{DiGraph, EdgeId, NodeId};
pub use oracle::{CarryReport, DistanceOracle};
pub use path::Path;
pub use shortest::ShortestPathTree;
