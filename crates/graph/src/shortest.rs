//! Shortest-path algorithms: Dijkstra, Bellman–Ford, all-pairs least costs,
//! and Yen's k-shortest simple paths.
//!
//! Repeated runs (all-pairs, SSP augmentations, Yen spurs) can reuse one
//! [`DijkstraScratch`] to avoid reallocating the distance/parent/heap
//! buffers per source, and every entry point has a `*_with_context`
//! variant that records [`Counter::DijkstraCalls`] and Dijkstra phase time
//! on a [`SolverContext`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use jcr_ctx::{Counter, Phase, SolverContext};

use crate::arena::{PathArena, PathId};
use crate::graph::{DiGraph, EdgeId, NodeId};
use crate::path::Path;

/// A shortest-path tree rooted at a source node, as produced by
/// [`dijkstra`] or [`bellman_ford`].
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    parent: Vec<Option<EdgeId>>,
    /// Source node of the parent edge, per node (so path reconstruction
    /// does not need the graph).
    parent_src: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// The source node the tree is rooted at.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Least cost from the source to `v`; `f64::INFINITY` if unreachable.
    pub fn dist(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// All distances, indexed by node index.
    pub fn dists(&self) -> &[f64] {
        &self.dist
    }

    /// Consumes the tree, returning the distance vector without copying.
    pub fn into_dists(self) -> Vec<f64> {
        self.dist
    }

    /// Whether `v` is reachable from the source.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// The tree edge entering `v`, if `v` is reachable and not the source.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent[v.index()]
    }

    /// A least-cost path from the source to `t`, or `None` if unreachable.
    ///
    /// Returns the empty path for `t == source`.
    pub fn path_to(&self, t: NodeId) -> Option<Vec<EdgeId>> {
        if !self.is_reachable(t) {
            return None;
        }
        let mut edges = Vec::new();
        let mut v = t;
        while let Some(e) = self.parent[v.index()] {
            edges.push(e);
            v = self.parent_src[v.index()].expect("parent edge implies parent source");
        }
        edges.reverse();
        Some(edges)
    }

    /// Like [`ShortestPathTree::path_to`], returning a [`Path`].
    pub fn path(&self, t: NodeId) -> Option<Path> {
        self.path_to(t).map(Path::new)
    }

    fn from_parts(
        source: NodeId,
        dist: Vec<f64>,
        parent: Vec<Option<EdgeId>>,
        g: &DiGraph,
    ) -> Self {
        let parent_src = parent.iter().map(|p| p.map(|e| g.src(e))).collect();
        ShortestPathTree {
            source,
            dist,
            parent,
            parent_src,
        }
    }
}

/// Min-heap entry ordered by distance.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for repeated Dijkstra runs (all-pairs computations,
/// SSP augmentation loops, Yen spur searches). One scratch serves any
/// number of runs on graphs of any size; buffers grow to the largest
/// graph seen and are reset — not reallocated — per run.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    parent: Vec<Option<EdgeId>>,
    done: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
}

impl DijkstraScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }

    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.parent.clear();
        self.parent.resize(n, None);
        self.done.clear();
        self.done.resize(n, false);
        self.heap.clear();
    }

    /// Distances of the most recent run, indexed by node index.
    pub fn dists(&self) -> &[f64] {
        &self.dist
    }

    /// Least cost to `v` in the most recent run.
    pub fn dist(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// The tree edge entering `v` in the most recent run.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent[v.index()]
    }

    /// Reconstructs the tree path to `t` from the most recent run into
    /// `out` (cleared first), source-to-target order. Returns `false`
    /// (leaving `out` empty) if `t` is unreachable.
    ///
    /// Together with [`dijkstra_filtered_into`] this yields paths with no
    /// per-call allocation at all — the route callers use when extracting
    /// many paths from repeated runs (CG pricing, Yen spurs).
    pub fn path_into(&self, g: &DiGraph, t: NodeId, out: &mut Vec<EdgeId>) -> bool {
        out.clear();
        if !self.dist[t.index()].is_finite() {
            return false;
        }
        let mut v = t;
        while let Some(e) = self.parent[v.index()] {
            out.push(e);
            v = g.src(e);
        }
        out.reverse();
        true
    }
}

/// Dijkstra's algorithm from `source` under non-negative edge costs.
///
/// # Panics
///
/// Panics (in debug builds) if any edge cost is negative or NaN.
pub fn dijkstra(g: &DiGraph, source: NodeId, cost: &[f64]) -> ShortestPathTree {
    dijkstra_filtered(g, source, cost, |_| true)
}

/// [`dijkstra`] that records the call, its wall time, and its heap-pop
/// count (the `dijkstra.heap_pops` histogram) on `ctx`.
pub fn dijkstra_with_context(
    g: &DiGraph,
    source: NodeId,
    cost: &[f64],
    ctx: &SolverContext,
) -> ShortestPathTree {
    let _s = ctx.span("graph.dijkstra");
    let _t = ctx.time(Phase::Dijkstra);
    ctx.count(Counter::DijkstraCalls, 1);
    let mut scratch = DijkstraScratch::new();
    let pops = dijkstra_filtered_into(g, source, cost, |_| true, &mut scratch);
    ctx.metric_value(HEAP_POPS, pops as u64);
    let DijkstraScratch { dist, parent, .. } = scratch;
    ShortestPathTree::from_parts(source, dist, parent, g)
}

/// `Count` histogram of heap pops per single-source Dijkstra run.
pub const HEAP_POPS: &str = "dijkstra.heap_pops";

/// [`dijkstra_with_context`] writing into a caller-provided scratch
/// instead of allocating a tree: the zero-allocation form for tight
/// repeated-run loops (CG pricing, oracle row fills) that still records
/// the call, its wall time, and its heap-pop count on `ctx`. Read the
/// result from `scratch.dists()` / [`DijkstraScratch::path_into`].
pub fn dijkstra_into_with_context(
    g: &DiGraph,
    source: NodeId,
    cost: &[f64],
    scratch: &mut DijkstraScratch,
    ctx: &SolverContext,
) {
    let _s = ctx.span("graph.dijkstra");
    let _t = ctx.time(Phase::Dijkstra);
    ctx.count(Counter::DijkstraCalls, 1);
    let pops = dijkstra_filtered_into(g, source, cost, |_| true, scratch);
    ctx.metric_value(HEAP_POPS, pops as u64);
}

/// Dijkstra restricted to edges for which `usable` returns `true`.
///
/// Used by Yen's algorithm and by flow decompositions that walk
/// positive-flow subgraphs.
pub fn dijkstra_filtered<F: FnMut(EdgeId) -> bool>(
    g: &DiGraph,
    source: NodeId,
    cost: &[f64],
    usable: F,
) -> ShortestPathTree {
    let mut scratch = DijkstraScratch::new();
    dijkstra_filtered_into(g, source, cost, usable, &mut scratch);
    let DijkstraScratch { dist, parent, .. } = scratch;
    ShortestPathTree::from_parts(source, dist, parent, g)
}

/// [`dijkstra_filtered`] writing into `scratch` instead of allocating a
/// tree: afterwards `scratch.dists()` / `scratch.parent_edge()` hold the
/// result. This is the zero-allocation core every other variant wraps.
/// Returns the number of heap pops the run performed (lazy-deletion
/// duplicates included), the per-source effort signal the
/// [`HEAP_POPS`] histogram records.
pub fn dijkstra_filtered_into<F: FnMut(EdgeId) -> bool>(
    g: &DiGraph,
    source: NodeId,
    cost: &[f64],
    mut usable: F,
    scratch: &mut DijkstraScratch,
) -> usize {
    debug_assert_eq!(cost.len(), g.edge_count(), "cost slice length mismatch");
    debug_assert!(
        cost.iter().all(|c| *c >= 0.0),
        "dijkstra requires non-negative costs"
    );
    scratch.reset(g.node_count());
    scratch.dist[source.index()] = 0.0;
    scratch.heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    let mut pops = 0usize;
    while let Some(HeapEntry { dist: d, node: v }) = scratch.heap.pop() {
        pops += 1;
        if scratch.done[v.index()] {
            continue;
        }
        scratch.done[v.index()] = true;
        // CSR pair walk: edge id and head node come from two adjacent
        // contiguous arrays, so the relaxation loop never dereferences the
        // endpoint table.
        for (e, w) in g.out_pairs(v) {
            if !usable(e) {
                continue;
            }
            let nd = d + cost[e.index()];
            if nd < scratch.dist[w.index()] {
                scratch.dist[w.index()] = nd;
                scratch.parent[w.index()] = Some(e);
                scratch.heap.push(HeapEntry { dist: nd, node: w });
            }
        }
    }
    pops
}

/// The error returned by [`bellman_ford`] when a negative-cost cycle is
/// reachable from the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NegativeCycle;

impl std::fmt::Display for NegativeCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "negative-cost cycle reachable from source")
    }
}

impl std::error::Error for NegativeCycle {}

/// Bellman–Ford from `source`; edge costs may be negative.
///
/// # Errors
///
/// Returns [`NegativeCycle`] if a negative-cost cycle is reachable from the
/// source.
pub fn bellman_ford(
    g: &DiGraph,
    source: NodeId,
    cost: &[f64],
) -> Result<ShortestPathTree, NegativeCycle> {
    debug_assert_eq!(cost.len(), g.edge_count(), "cost slice length mismatch");
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    dist[source.index()] = 0.0;
    for round in 0..n {
        let mut changed = false;
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let du = dist[u.index()];
            if du.is_finite() {
                let nd = du + cost[e.index()];
                if nd < dist[v.index()] - 1e-12 {
                    dist[v.index()] = nd;
                    parent[v.index()] = Some(e);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if round == n.saturating_sub(1) && changed {
            return Err(NegativeCycle);
        }
    }
    Ok(ShortestPathTree::from_parts(source, dist, parent, g))
}

/// All-pairs least costs `w[v][s]` computed by one Dijkstra run per source.
///
/// Entry `[v.index()][s.index()]` is the least cost of a `v -> s` path
/// (`f64::INFINITY` if none exists). One [`DijkstraScratch`] is reused
/// across all sources, so the only per-source allocation is the output
/// row itself.
pub fn all_pairs(g: &DiGraph, cost: &[f64]) -> Vec<Vec<f64>> {
    let mut scratch = DijkstraScratch::new();
    g.nodes()
        .map(|v| {
            dijkstra_filtered_into(g, v, cost, |_| true, &mut scratch);
            scratch.dist.clone()
        })
        .collect()
}

/// [`all_pairs`] that records one Dijkstra call per source on `ctx` and
/// fans the per-source runs out over `ctx.workers()` threads.
///
/// Each source is an independent task with its own [`DijkstraScratch`]
/// per worker; rows are merged by source index, so the result is
/// bit-identical for any worker count (and identical to [`all_pairs`]).
pub fn all_pairs_with_context(g: &DiGraph, cost: &[f64], ctx: &SolverContext) -> Vec<Vec<f64>> {
    let _s = ctx.span("graph.all_pairs");
    let _t = ctx.time(Phase::Dijkstra);
    let sources: Vec<NodeId> = g.nodes().collect();
    jcr_ctx::par::par_map_init(
        ctx,
        &sources,
        DijkstraScratch::new,
        |scratch, wctx, _i, &v| {
            wctx.count(Counter::DijkstraCalls, 1);
            let pops = dijkstra_filtered_into(g, v, cost, |_| true, scratch);
            wctx.metric_value(HEAP_POPS, pops as u64);
            scratch.dist.clone()
        },
    )
}

/// Yen's algorithm: up to `k` least-cost *simple* paths from `src` to `dst`.
///
/// Returns fewer than `k` paths when fewer simple paths exist. Paths are
/// returned in non-decreasing cost order. Requires non-negative costs.
pub fn k_shortest_paths(
    g: &DiGraph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    cost: &[f64],
) -> Vec<Path> {
    k_shortest_paths_impl(g, src, dst, k, cost, None)
}

/// [`k_shortest_paths`] that records every internal Dijkstra run (the
/// initial tree plus one per spur node tried) on `ctx`.
pub fn k_shortest_paths_with_context(
    g: &DiGraph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    cost: &[f64],
    ctx: &SolverContext,
) -> Vec<Path> {
    let _s = ctx.span("graph.ksp");
    let _t = ctx.time(Phase::Dijkstra);
    k_shortest_paths_impl(g, src, dst, k, cost, Some(ctx))
}

fn k_shortest_paths_impl(
    g: &DiGraph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    cost: &[f64],
    ctx: Option<&SolverContext>,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    if let Some(ctx) = ctx {
        ctx.count(Counter::DijkstraCalls, 1);
    }
    let mut scratch = DijkstraScratch::new();
    dijkstra_filtered_into(g, src, cost, |_| true, &mut scratch);
    let mut spur_buf: Vec<EdgeId> = Vec::new();
    if !scratch.path_into(g, dst, &mut spur_buf) {
        return Vec::new();
    }

    // The working set lives in one arena: accepted paths and the candidate
    // pool are `(start, len)` spans over a shared edge slab instead of one
    // heap `Vec` per path.
    let mut arena = PathArena::new();
    let mut result: Vec<PathId> = vec![arena.push(&spur_buf)];
    // Candidate pool of (cost, path), deduplicated by edge sequence.
    let mut candidates: Vec<(f64, PathId)> = Vec::new();

    // Epoch-stamped ban marks: "banned in the current spur" means `mark ==
    // epoch`, so starting a new spur is one counter bump rather than a
    // freshly allocated bool array per spur. The buffers come from the
    // context's scratch arena when one is available.
    let (mut edge_mark, mut node_mark) = match ctx {
        Some(ctx) => (
            ctx.scratch().take_u32(g.edge_count(), 0),
            ctx.scratch().take_u32(g.node_count(), 0),
        ),
        None => (vec![0u32; g.edge_count()], vec![0u32; g.node_count()]),
    };
    let mut epoch = 0u32;
    let mut prev_buf: Vec<EdgeId> = Vec::new();
    let mut prev_nodes: Vec<NodeId> = Vec::new();
    let mut total_buf: Vec<EdgeId> = Vec::new();

    while result.len() < k {
        let prev = *result.last().expect("at least one accepted path");
        prev_buf.clear();
        prev_buf.extend_from_slice(arena.get(prev));
        prev_nodes.clear();
        prev_nodes.push(src);
        prev_nodes.extend(prev_buf.iter().map(|&e| g.dst(e)));
        // Spur from each node of the previous path.
        for i in 0..prev_buf.len() {
            let spur_node = prev_nodes[i];
            let root_edges = &prev_buf[..i];

            epoch += 1;
            // Edges banned: the next edge of any accepted path sharing the root.
            for &id in &result {
                let p = arena.get(id);
                if p.len() > i && p[..i] == *root_edges {
                    edge_mark[p[i].index()] = epoch;
                }
            }
            // Nodes banned: every root node except the spur node, to keep
            // paths simple.
            for v in &prev_nodes[..i] {
                node_mark[v.index()] = epoch;
            }

            if let Some(ctx) = ctx {
                ctx.count(Counter::DijkstraCalls, 1);
            }
            dijkstra_filtered_into(
                g,
                spur_node,
                cost,
                |e| {
                    edge_mark[e.index()] != epoch
                        && node_mark[g.src(e).index()] != epoch
                        && node_mark[g.dst(e).index()] != epoch
                },
                &mut scratch,
            );
            if !scratch.path_into(g, dst, &mut spur_buf) {
                continue;
            }
            total_buf.clear();
            total_buf.extend_from_slice(root_edges);
            total_buf.extend_from_slice(&spur_buf);
            // Simplicity check, on a fresh epoch of the node marks.
            epoch += 1;
            let mut repeated = false;
            for v in std::iter::once(src).chain(total_buf.iter().map(|&e| g.dst(e))) {
                if node_mark[v.index()] == epoch {
                    repeated = true;
                    break;
                }
                node_mark[v.index()] = epoch;
            }
            if repeated {
                continue;
            }
            let c: f64 = total_buf.iter().map(|e| cost[e.index()]).sum();
            let duplicate = result.iter().any(|&id| arena.get(id) == &total_buf[..])
                || candidates
                    .iter()
                    .any(|&(_, id)| arena.get(id) == &total_buf[..]);
            if !duplicate {
                let id = arena.push(&total_buf);
                candidates.push((c, id));
            }
        }
        // Accept the cheapest candidate. Ties resolve exactly as the
        // pre-arena implementation did: `min_by` keeps the last minimum
        // and `swap_remove` reorders the pool.
        let Some((best_idx, _)) = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap_or(Ordering::Equal))
        else {
            break;
        };
        let (_, id) = candidates.swap_remove(best_idx);
        result.push(id);
    }

    if let Some(ctx) = ctx {
        let pool = ctx.scratch();
        pool.put_u32(edge_mark);
        pool.put_u32(node_mark);
    }
    result.into_iter().map(|id| arena.to_path(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph, [NodeId; 4], Vec<f64>) {
        // a -> b -> d and a -> c -> d, plus direct a -> d.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b); // 0: cost 1
        g.add_edge(b, d); // 1: cost 1
        g.add_edge(a, c); // 2: cost 2
        g.add_edge(c, d); // 3: cost 2
        g.add_edge(a, d); // 4: cost 5
        (g, [a, b, c, d], vec![1.0, 1.0, 2.0, 2.0, 5.0])
    }

    #[test]
    fn dijkstra_finds_least_costs() {
        let (g, [a, b, c, d], cost) = diamond();
        let t = dijkstra(&g, a, &cost);
        assert_eq!(t.dist(a), 0.0);
        assert_eq!(t.dist(b), 1.0);
        assert_eq!(t.dist(c), 2.0);
        assert_eq!(t.dist(d), 2.0);
        let p = t.path(d).unwrap();
        assert_eq!(p.nodes(&g), vec![a, b, d]);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let t = dijkstra(&g, a, &[]);
        assert!(!t.is_reachable(b));
        assert!(t.path_to(b).is_none());
        assert_eq!(t.path_to(a).unwrap(), Vec::<EdgeId>::new());
    }

    #[test]
    fn dijkstra_handles_zero_cost_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        let t = dijkstra(&g, a, &[0.0, 0.0]);
        assert_eq!(t.dist(c), 0.0);
        assert_eq!(t.path_to(c).unwrap().len(), 2);
    }

    #[test]
    fn bellman_ford_matches_dijkstra_on_nonnegative() {
        let (g, [a, _, _, d], cost) = diamond();
        let bf = bellman_ford(&g, a, &cost).unwrap();
        let dj = dijkstra(&g, a, &cost);
        for v in g.nodes() {
            assert!((bf.dist(v) - dj.dist(v)).abs() < 1e-12);
        }
        assert_eq!(bf.path_to(d).unwrap(), dj.path_to(d).unwrap());
    }

    #[test]
    fn bellman_ford_accepts_negative_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b); // 3
        g.add_edge(b, c); // -2
        g.add_edge(a, c); // 2
        let t = bellman_ford(&g, a, &[3.0, -2.0, 2.0]).unwrap();
        assert_eq!(t.dist(c), 1.0);
    }

    #[test]
    fn bellman_ford_detects_negative_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(matches!(
            bellman_ford(&g, a, &[1.0, -2.0]),
            Err(NegativeCycle)
        ));
    }

    #[test]
    fn all_pairs_is_square_and_symmetric_for_symmetric_graphs() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        let d = all_pairs(&g, &[4.0, 4.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d[a.index()][b.index()], 4.0);
        assert_eq!(d[b.index()][a.index()], 4.0);
        assert_eq!(d[a.index()][a.index()], 0.0);
    }

    #[test]
    fn all_pairs_with_context_matches_serial_for_any_worker_count() {
        let (g, _, cost) = diamond();
        let serial = all_pairs(&g, &cost);
        for workers in [1, 2, 8] {
            let ctx = SolverContext::new().with_workers(workers);
            let par = all_pairs_with_context(&g, &cost, &ctx);
            assert_eq!(par.len(), serial.len());
            for (row_p, row_s) in par.iter().zip(&serial) {
                for (a, b) in row_p.iter().zip(row_s) {
                    assert_eq!(a.to_bits(), b.to_bits(), "workers = {workers}");
                }
            }
            assert_eq!(ctx.stats().dijkstra_calls, g.node_count() as u64);
        }
    }

    #[test]
    fn yen_enumerates_paths_in_cost_order() {
        let (g, [a, _, _, d], cost) = diamond();
        let paths = k_shortest_paths(&g, a, d, 5, &cost);
        assert_eq!(paths.len(), 3);
        let costs: Vec<f64> = paths.iter().map(|p| p.cost(&cost)).collect();
        assert_eq!(costs, vec![2.0, 4.0, 5.0]);
        for p in &paths {
            assert!(p.is_valid(&g));
            assert!(!p.has_repeated_node(&g));
        }
    }

    #[test]
    fn yen_k_zero_and_unreachable() {
        let (g, [a, _, _, d], cost) = diamond();
        assert!(k_shortest_paths(&g, a, d, 0, &cost).is_empty());
        let mut g2 = DiGraph::new();
        let x = g2.add_node();
        let y = g2.add_node();
        assert!(k_shortest_paths(&g2, x, y, 3, &[]).is_empty());
    }

    #[test]
    fn yen_respects_simplicity_in_cyclic_graphs() {
        // a <-> b -> c with a cheap cycle; paths must stay simple.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b); // 1
        g.add_edge(b, a); // 0.1
        g.add_edge(b, c); // 1
        let paths = k_shortest_paths(&g, a, c, 10, &[1.0, 0.1, 1.0]);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].cost(&[1.0, 0.1, 1.0]), 2.0);
    }
}
