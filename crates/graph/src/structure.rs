//! Structural decompositions: strongly connected components (Tarjan) and
//! topological ordering.
//!
//! The flow layers use these to certify that decomposed flows are acyclic
//! and to order DAG computations; they are also generally useful to
//! downstream users inspecting cache-network topologies.

use crate::graph::{DiGraph, EdgeId, NodeId};

/// Strongly connected components in reverse topological order (Tarjan's
/// algorithm, iterative). Each component lists its member nodes.
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<NodeId>> {
    scc_filtered(g, |_| true)
}

/// SCCs of the subgraph containing only edges for which `usable` returns
/// `true`.
pub fn scc_filtered<F: Fn(EdgeId) -> bool>(g: &DiGraph, usable: F) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Iterative Tarjan: (node, out-edge cursor).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&(v, cursor)) = call_stack.last() {
            let out = g.out_edges(NodeId::new(v));
            if cursor < out.len() {
                call_stack.last_mut().expect("non-empty").1 += 1;
                let e = out[cursor];
                if !usable(e) {
                    continue;
                }
                let w = g.dst(e).index();
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        on_stack[w] = false;
                        component.push(NodeId::new(w));
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Whether the (filtered) subgraph is a DAG — i.e. every SCC is a single
/// node without a usable self-loop.
pub fn is_acyclic<F: Fn(EdgeId) -> bool>(g: &DiGraph, usable: F) -> bool {
    let has_self_loop = g.edges().any(|e| usable(e) && g.src(e) == g.dst(e));
    if has_self_loop {
        return false;
    }
    scc_filtered(g, usable).iter().all(|c| c.len() == 1)
}

/// A topological order of the nodes, or `None` if the graph has a cycle.
pub fn topological_order(g: &DiGraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indegree = vec![0usize; n];
    for e in g.edges() {
        indegree[g.dst(e).index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(NodeId::new(v));
        for &e in g.out_edges(NodeId::new(v)) {
            let w = g.dst(e).index();
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycles_and_tail() -> DiGraph {
        // 0 <-> 1, 2 <-> 3, 1 -> 2, 3 -> 4.
        let mut g = DiGraph::new();
        let nodes = g.add_nodes(5);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[1], nodes[0]);
        g.add_edge(nodes[2], nodes[3]);
        g.add_edge(nodes[3], nodes[2]);
        g.add_edge(nodes[1], nodes[2]);
        g.add_edge(nodes[3], nodes[4]);
        g
    }

    #[test]
    fn finds_components() {
        let g = two_cycles_and_tail();
        let mut sccs: Vec<Vec<usize>> = strongly_connected_components(&g)
            .into_iter()
            .map(|c| {
                let mut ids: Vec<usize> = c.into_iter().map(|v| v.index()).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn reverse_topological_component_order() {
        // Tarjan emits components in reverse topological order: the sink
        // component {4} first.
        let g = two_cycles_and_tail();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs[0], vec![NodeId::new(4)]);
    }

    #[test]
    fn acyclicity() {
        let g = two_cycles_and_tail();
        assert!(!is_acyclic(&g, |_| true));
        // Excluding the two back edges makes it a DAG.
        assert!(is_acyclic(&g, |e| e.index() != 1 && e.index() != 3));
        // Self loops are cycles.
        let mut g2 = DiGraph::new();
        let a = g2.add_node();
        g2.add_edge(a, a);
        assert!(!is_acyclic(&g2, |_| true));
    }

    #[test]
    fn topological_order_on_dag() {
        let mut g = DiGraph::new();
        let nodes = g.add_nodes(4);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[0], nodes[2]);
        g.add_edge(nodes[1], nodes[3]);
        g.add_edge(nodes[2], nodes[3]);
        let order = topological_order(&g).unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|v| order.iter().position(|&x| x.index() == v).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn topological_order_rejects_cycles() {
        let g = two_cycles_and_tail();
        assert!(topological_order(&g).is_none());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert!(strongly_connected_components(&g).is_empty());
        assert_eq!(topological_order(&g), Some(Vec::new()));
        assert!(is_acyclic(&g, |_| true));
    }
}
