//! Randomized property tests for the graph substrate: algorithm
//! agreement and structural invariants on random graphs drawn from the
//! in-tree seeded PRNG (same cases every run).

use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_graph::{shortest, DiGraph, NodeId};

const CASES: u64 = 256;

/// A random directed graph as (node count, edge list, costs).
fn random_graph(rng: &mut StdRng) -> (usize, Vec<(usize, usize)>, Vec<f64>) {
    let n = rng.gen_range(2..10usize);
    let m = rng.gen_range(1..30usize);
    let edges: Vec<(usize, usize)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let costs = (0..m).map(|_| rng.gen_range(0.0..50.0)).collect();
    (n, edges, costs)
}

fn build(n: usize, edges: &[(usize, usize)]) -> DiGraph {
    let mut g = DiGraph::new();
    let nodes = g.add_nodes(n);
    for &(u, v) in edges {
        g.add_edge(nodes[u], nodes[v]);
    }
    g
}

/// Dijkstra and Bellman–Ford agree on non-negative costs.
#[test]
fn dijkstra_matches_bellman_ford() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6469_6a6b + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dj = shortest::dijkstra(&g, src, &costs);
        let bf = shortest::bellman_ford(&g, src, &costs).expect("no negative cycles");
        for v in g.nodes() {
            let (a, b) = (dj.dist(v), bf.dist(v));
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-6,
                "case {case}, {v:?}: dijkstra {a} vs bellman-ford {b}"
            );
        }
    }
}

/// Reconstructed shortest paths are valid and their cost equals the
/// reported distance.
#[test]
fn paths_are_valid_and_cost_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7061_7468 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let tree = shortest::dijkstra(&g, src, &costs);
        for v in g.nodes() {
            if let Some(path) = tree.path(v) {
                assert!(path.is_valid(&g));
                if !path.is_empty() {
                    assert_eq!(path.source(&g), Some(src));
                    assert_eq!(path.target(&g), Some(v));
                }
                assert!((path.cost(&costs) - tree.dist(v)).abs() < 1e-6);
            }
        }
    }
}

/// Triangle inequality of the all-pairs matrix.
#[test]
fn all_pairs_triangle_inequality() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6170_7370 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let d = shortest::all_pairs(&g, &costs);
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if d[a][b].is_finite() && d[b][c].is_finite() {
                        assert!(d[a][c] <= d[a][b] + d[b][c] + 1e-6, "case {case}");
                    }
                }
            }
        }
    }
}

/// Yen's paths are simple, distinct, sorted by cost, and start with
/// the true shortest path.
#[test]
fn yen_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7965_6e21 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dst = NodeId::new(n - 1);
        let paths = shortest::k_shortest_paths(&g, src, dst, 5, &costs);
        let tree = shortest::dijkstra(&g, src, &costs);
        if let Some(first) = paths.first() {
            assert!(
                (first.cost(&costs) - tree.dist(dst)).abs() < 1e-6,
                "case {case}"
            );
        } else {
            assert!(!tree.is_reachable(dst) || src == dst, "case {case}");
        }
        for w in paths.windows(2) {
            assert!(w[0].cost(&costs) <= w[1].cost(&costs) + 1e-9);
            assert!(w[0] != w[1], "duplicate path in case {case}");
        }
        for p in &paths {
            assert!(p.is_valid(&g));
            assert!(!p.has_repeated_node(&g), "non-simple path in case {case}");
        }
    }
}

/// SCCs partition the node set, and contracting them yields a DAG
/// (equivalently: the graph is acyclic iff every SCC is trivial and
/// no self-loop exists), consistent with `topological_order`.
#[test]
fn scc_partition_and_acyclicity() {
    use jcr_graph::structure::{is_acyclic, strongly_connected_components, topological_order};
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7363_6331 + case);
        let (n, edges, _costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let sccs = strongly_connected_components(&g);
        let mut seen = vec![0usize; n];
        for c in &sccs {
            assert!(!c.is_empty());
            for v in c {
                seen[v.index()] += 1;
            }
        }
        assert!(
            seen.iter().all(|&s| s == 1),
            "SCCs must partition the nodes"
        );
        let acyclic = is_acyclic(&g, |_| true);
        assert_eq!(acyclic, topological_order(&g).is_some());
        if acyclic {
            assert!(sccs.iter().all(|c| c.len() == 1));
        }
    }
}

/// Nodes in one SCC reach each other; Tarjan emits components in
/// reverse topological order (no edge from an earlier to a later
/// component... i.e. edges can only go from later-emitted components
/// to earlier-emitted ones).
#[test]
fn scc_mutual_reachability() {
    use jcr_graph::structure::strongly_connected_components;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7363_6332 + case);
        let (n, edges, _costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let sccs = strongly_connected_components(&g);
        let mut comp_of = vec![0usize; n];
        for (k, c) in sccs.iter().enumerate() {
            for v in c {
                comp_of[v.index()] = k;
            }
        }
        for c in &sccs {
            let root = c[0];
            let reach = g.reachable_from(root, |_| true);
            for v in c {
                assert!(reach[v.index()], "{root:?} must reach {v:?} inside its SCC");
            }
        }
        // Reverse topological order: every edge goes to an equal-or-earlier
        // emitted component.
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(comp_of[u.index()] >= comp_of[v.index()]);
        }
    }
}
