//! Property-based tests for the graph substrate: algorithm agreement and
//! structural invariants on random graphs.

use proptest::prelude::*;

use jcr_graph::{shortest, DiGraph, NodeId};

/// Strategy: a random directed graph as (node count, edge list, costs).
fn random_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<f64>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 1..30);
        edges.prop_flat_map(move |es| {
            let m = es.len();
            (
                Just(n),
                Just(es),
                proptest::collection::vec(0.0f64..50.0, m..=m),
            )
        })
    })
}

fn build(n: usize, edges: &[(usize, usize)]) -> DiGraph {
    let mut g = DiGraph::new();
    let nodes = g.add_nodes(n);
    for &(u, v) in edges {
        g.add_edge(nodes[u], nodes[v]);
    }
    g
}

proptest! {
    /// Dijkstra and Bellman–Ford agree on non-negative costs.
    #[test]
    fn dijkstra_matches_bellman_ford((n, edges, costs) in random_graph()) {
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dj = shortest::dijkstra(&g, src, &costs);
        let bf = shortest::bellman_ford(&g, src, &costs).expect("no negative cycles");
        for v in g.nodes() {
            let (a, b) = (dj.dist(v), bf.dist(v));
            prop_assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-6,
                "{v:?}: dijkstra {a} vs bellman-ford {b}"
            );
        }
    }

    /// Reconstructed shortest paths are valid and their cost equals the
    /// reported distance.
    #[test]
    fn paths_are_valid_and_cost_consistent((n, edges, costs) in random_graph()) {
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let tree = shortest::dijkstra(&g, src, &costs);
        for v in g.nodes() {
            if let Some(path) = tree.path(v) {
                prop_assert!(path.is_valid(&g));
                if !path.is_empty() {
                    prop_assert_eq!(path.source(&g), Some(src));
                    prop_assert_eq!(path.target(&g), Some(v));
                }
                prop_assert!((path.cost(&costs) - tree.dist(v)).abs() < 1e-6);
            }
        }
    }

    /// Triangle inequality of the all-pairs matrix.
    #[test]
    fn all_pairs_triangle_inequality((n, edges, costs) in random_graph()) {
        let g = build(n, &edges);
        let d = shortest::all_pairs(&g, &costs);
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if d[a][b].is_finite() && d[b][c].is_finite() {
                        prop_assert!(d[a][c] <= d[a][b] + d[b][c] + 1e-6);
                    }
                }
            }
        }
    }

    /// Yen's paths are simple, distinct, sorted by cost, and start with
    /// the true shortest path.
    #[test]
    fn yen_invariants((n, edges, costs) in random_graph()) {
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dst = NodeId::new(n - 1);
        let paths = shortest::k_shortest_paths(&g, src, dst, 5, &costs);
        let tree = shortest::dijkstra(&g, src, &costs);
        if let Some(first) = paths.first() {
            prop_assert!((first.cost(&costs) - tree.dist(dst)).abs() < 1e-6);
        } else {
            prop_assert!(!tree.is_reachable(dst) || src == dst);
        }
        for w in paths.windows(2) {
            prop_assert!(w[0].cost(&costs) <= w[1].cost(&costs) + 1e-9);
            prop_assert!(w[0] != w[1], "duplicate path");
        }
        for p in &paths {
            prop_assert!(p.is_valid(&g));
            prop_assert!(!p.has_repeated_node(&g), "non-simple path");
        }
    }
}

proptest! {
    /// SCCs partition the node set, and contracting them yields a DAG
    /// (equivalently: the graph is acyclic iff every SCC is trivial and
    /// no self-loop exists), consistent with `topological_order`.
    #[test]
    fn scc_partition_and_acyclicity((n, edges, _costs) in random_graph()) {
        use jcr_graph::structure::{is_acyclic, strongly_connected_components, topological_order};
        let g = build(n, &edges);
        let sccs = strongly_connected_components(&g);
        let mut seen = vec![0usize; n];
        for c in &sccs {
            prop_assert!(!c.is_empty());
            for v in c {
                seen[v.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "SCCs must partition the nodes");
        let acyclic = is_acyclic(&g, |_| true);
        prop_assert_eq!(acyclic, topological_order(&g).is_some());
        if acyclic {
            prop_assert!(sccs.iter().all(|c| c.len() == 1));
        }
    }

    /// Nodes in one SCC reach each other; Tarjan emits components in
    /// reverse topological order (no edge from an earlier to a later
    /// component... i.e. edges can only go from later-emitted components
    /// to earlier-emitted ones).
    #[test]
    fn scc_mutual_reachability((n, edges, _costs) in random_graph()) {
        use jcr_graph::structure::strongly_connected_components;
        let g = build(n, &edges);
        let sccs = strongly_connected_components(&g);
        let mut comp_of = vec![0usize; n];
        for (k, c) in sccs.iter().enumerate() {
            for v in c {
                comp_of[v.index()] = k;
            }
        }
        for c in &sccs {
            let root = c[0];
            let reach = g.reachable_from(root, |_| true);
            for v in c {
                prop_assert!(reach[v.index()], "{root:?} must reach {v:?} inside its SCC");
            }
        }
        // Reverse topological order: every edge goes to an equal-or-earlier
        // emitted component.
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert!(comp_of[u.index()] >= comp_of[v.index()]);
        }
    }
}
