//! Randomized property tests for the graph substrate: algorithm
//! agreement and structural invariants on random graphs drawn from the
//! in-tree seeded PRNG (same cases every run).

use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_graph::{shortest, DiGraph, NodeId};

const CASES: u64 = 256;

/// A random directed graph as (node count, edge list, costs).
fn random_graph(rng: &mut StdRng) -> (usize, Vec<(usize, usize)>, Vec<f64>) {
    let n = rng.gen_range(2..10usize);
    let m = rng.gen_range(1..30usize);
    let edges: Vec<(usize, usize)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let costs = (0..m).map(|_| rng.gen_range(0.0..50.0)).collect();
    (n, edges, costs)
}

fn build(n: usize, edges: &[(usize, usize)]) -> DiGraph {
    let mut g = DiGraph::new();
    let nodes = g.add_nodes(n);
    for &(u, v) in edges {
        g.add_edge(nodes[u], nodes[v]);
    }
    g
}

/// Dijkstra and Bellman–Ford agree on non-negative costs.
#[test]
fn dijkstra_matches_bellman_ford() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6469_6a6b + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dj = shortest::dijkstra(&g, src, &costs);
        let bf = shortest::bellman_ford(&g, src, &costs).expect("no negative cycles");
        for v in g.nodes() {
            let (a, b) = (dj.dist(v), bf.dist(v));
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-6,
                "case {case}, {v:?}: dijkstra {a} vs bellman-ford {b}"
            );
        }
    }
}

/// Reconstructed shortest paths are valid and their cost equals the
/// reported distance.
#[test]
fn paths_are_valid_and_cost_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7061_7468 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let tree = shortest::dijkstra(&g, src, &costs);
        for v in g.nodes() {
            if let Some(path) = tree.path(v) {
                assert!(path.is_valid(&g));
                if !path.is_empty() {
                    assert_eq!(path.source(&g), Some(src));
                    assert_eq!(path.target(&g), Some(v));
                }
                assert!((path.cost(&costs) - tree.dist(v)).abs() < 1e-6);
            }
        }
    }
}

/// Triangle inequality of the all-pairs matrix.
#[test]
fn all_pairs_triangle_inequality() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6170_7370 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let d = shortest::all_pairs(&g, &costs);
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if d[a][b].is_finite() && d[b][c].is_finite() {
                        assert!(d[a][c] <= d[a][b] + d[b][c] + 1e-6, "case {case}");
                    }
                }
            }
        }
    }
}

/// Yen's paths are simple, distinct, sorted by cost, and start with
/// the true shortest path.
#[test]
fn yen_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7965_6e21 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dst = NodeId::new(n - 1);
        let paths = shortest::k_shortest_paths(&g, src, dst, 5, &costs);
        let tree = shortest::dijkstra(&g, src, &costs);
        if let Some(first) = paths.first() {
            assert!(
                (first.cost(&costs) - tree.dist(dst)).abs() < 1e-6,
                "case {case}"
            );
        } else {
            assert!(!tree.is_reachable(dst) || src == dst, "case {case}");
        }
        for w in paths.windows(2) {
            assert!(w[0].cost(&costs) <= w[1].cost(&costs) + 1e-9);
            assert!(w[0] != w[1], "duplicate path in case {case}");
        }
        for p in &paths {
            assert!(p.is_valid(&g));
            assert!(!p.has_repeated_node(&g), "non-simple path in case {case}");
        }
    }
}

/// SCCs partition the node set, and contracting them yields a DAG
/// (equivalently: the graph is acyclic iff every SCC is trivial and
/// no self-loop exists), consistent with `topological_order`.
#[test]
fn scc_partition_and_acyclicity() {
    use jcr_graph::structure::{is_acyclic, strongly_connected_components, topological_order};
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7363_6331 + case);
        let (n, edges, _costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let sccs = strongly_connected_components(&g);
        let mut seen = vec![0usize; n];
        for c in &sccs {
            assert!(!c.is_empty());
            for v in c {
                seen[v.index()] += 1;
            }
        }
        assert!(
            seen.iter().all(|&s| s == 1),
            "SCCs must partition the nodes"
        );
        let acyclic = is_acyclic(&g, |_| true);
        assert_eq!(acyclic, topological_order(&g).is_some());
        if acyclic {
            assert!(sccs.iter().all(|c| c.len() == 1));
        }
    }
}

/// CSR adjacency agrees edge-for-edge with a naive insertion-order
/// adjacency-list model, under interleaved node/edge mutation — the
/// invariant the whole refactor leans on: slice-walk iteration must
/// preserve the exact per-node edge order the old `Vec<Vec<EdgeId>>`
/// representation produced.
#[test]
fn csr_adjacency_matches_naive_model() {
    use jcr_graph::EdgeId;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6373_7231 + case);
        let mut g = DiGraph::new();
        let mut out_model: Vec<Vec<(EdgeId, NodeId)>> = Vec::new();
        let mut in_model: Vec<Vec<(EdgeId, NodeId)>> = Vec::new();
        // Interleave node additions and edge additions so the lazy CSR is
        // rebuilt mid-stream.
        for _ in 0..rng.gen_range(5..40usize) {
            if out_model.len() < 2 || rng.gen_range(0..4usize) == 0 {
                g.add_node();
                out_model.push(Vec::new());
                in_model.push(Vec::new());
            } else {
                let n = out_model.len();
                let u = NodeId::new(rng.gen_range(0..n));
                let v = NodeId::new(rng.gen_range(0..n));
                let e = g.add_edge(u, v);
                out_model[u.index()].push((e, v));
                in_model[v.index()].push((e, u));
                if rng.gen_range(0..3usize) == 0 {
                    // Force a CSR build between mutations.
                    let _ = g.out_degree(u);
                }
            }
        }
        assert_eq!(g.node_count(), out_model.len(), "case {case}");
        for v in g.nodes() {
            let out: Vec<(EdgeId, NodeId)> = g.out_pairs(v).collect();
            let inn: Vec<(EdgeId, NodeId)> = g.in_pairs(v).collect();
            assert_eq!(out, out_model[v.index()], "case {case}, out of {v:?}");
            assert_eq!(inn, in_model[v.index()], "case {case}, in of {v:?}");
            let out_edges: Vec<EdgeId> = out_model[v.index()].iter().map(|&(e, _)| e).collect();
            let in_edges: Vec<EdgeId> = in_model[v.index()].iter().map(|&(e, _)| e).collect();
            assert_eq!(g.out_edges(v), &out_edges[..], "case {case}");
            assert_eq!(g.in_edges(v), &in_edges[..], "case {case}");
            assert_eq!(g.out_degree(v), out_edges.len());
            assert_eq!(g.in_degree(v), in_edges.len());
        }
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(out_model[u.index()].contains(&(e, v)), "case {case}");
            // `find_edge` returns the first matching edge in insertion order.
            let first = out_model[u.index()]
                .iter()
                .find(|&&(_, w)| w == v)
                .map(|&(e, _)| e);
            assert_eq!(g.find_edge(u, v), first, "case {case}");
        }
    }
}

/// Tarjan's SCCs (over CSR) induce the same node partition as an
/// independent Kosaraju reference run over naive adjacency lists.
#[test]
fn sccs_match_kosaraju_reference() {
    use jcr_graph::structure::strongly_connected_components;

    /// Kosaraju on plain (usize, usize) edge lists: forward DFS finish
    /// order, then reverse-graph DFS in reverse finish order.
    fn kosaraju(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut fwd = vec![Vec::new(); n];
        let mut rev = vec![Vec::new(); n];
        for &(u, v) in edges {
            fwd[u].push(v);
            rev[v].push(u);
        }
        let mut finish = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for s in 0..n {
            if seen[s] {
                continue;
            }
            // Iterative DFS recording finish times.
            let mut stack = vec![(s, 0usize)];
            seen[s] = true;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < fwd[v].len() {
                    let w = fwd[v][*i];
                    *i += 1;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    finish.push(v);
                    stack.pop();
                }
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        for &s in finish.iter().rev() {
            if comp[s] != usize::MAX {
                continue;
            }
            let k = sccs.len();
            let mut members = vec![s];
            comp[s] = k;
            let mut stack = vec![s];
            while let Some(v) = stack.pop() {
                for &w in &rev[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = k;
                        members.push(w);
                        stack.push(w);
                    }
                }
            }
            sccs.push(members);
        }
        sccs
    }

    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6b6f_7361 + case);
        let (n, edges, _costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let ours = strongly_connected_components(&g);
        let reference = kosaraju(n, &edges);
        let canon = |sccs: Vec<Vec<usize>>| -> Vec<Vec<usize>> {
            let mut out: Vec<Vec<usize>> = sccs
                .into_iter()
                .map(|mut c| {
                    c.sort_unstable();
                    c
                })
                .collect();
            out.sort();
            out
        };
        let ours = canon(
            ours.into_iter()
                .map(|c| c.iter().map(|v| v.index()).collect())
                .collect(),
        );
        assert_eq!(ours, canon(reference), "case {case}");
    }
}

/// The crate's Dijkstra produces bit-identical distances to a textbook
/// lazy-deletion reference over naive adjacency lists. (With continuous
/// random costs the shortest path is unique, so both walks sum the same
/// edge costs in the same order.)
#[test]
fn dijkstra_dists_match_reference_heap() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn reference_dijkstra(n: usize, edges: &[(usize, usize)], cost: &[f64]) -> Vec<f64> {
        let mut adj = vec![Vec::new(); n];
        for (e, &(u, v)) in edges.iter().enumerate() {
            adj[u].push((v, cost[e]));
        }
        let mut dist = vec![f64::INFINITY; n];
        dist[0] = 0.0;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        heap.push(Reverse((0, 0)));
        while let Some(Reverse((d_bits, v))) = heap.pop() {
            let d = f64::from_bits(d_bits);
            if d > dist[v] {
                continue;
            }
            for &(w, c) in &adj[v] {
                let nd = d + c;
                if nd < dist[w] {
                    dist[w] = nd;
                    // Non-negative f64s order the same as their bit patterns.
                    heap.push(Reverse((nd.to_bits(), w)));
                }
            }
        }
        dist
    }

    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6872_6566 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let tree = shortest::dijkstra(&g, NodeId::new(0), &costs);
        let reference = reference_dijkstra(n, &edges, &costs);
        for (v, expect) in reference.iter().enumerate() {
            assert_eq!(
                tree.dist(NodeId::new(v)).to_bits(),
                expect.to_bits(),
                "case {case}, node {v}"
            );
        }
    }
}

/// The arena-backed Yen returns exactly the paths of the pre-refactor
/// implementation — same edge sequences, same order. The reference below
/// is a transcription of the old candidate-pool code (per-spur
/// `vec![false; …]` masks, `Vec<Path>` storage, `min_by` + `swap_remove`
/// acceptance), so every tie-break quirk is replicated.
#[test]
fn yen_matches_pre_refactor_reference() {
    use jcr_graph::Path;
    use std::cmp::Ordering;

    fn reference_yen(g: &DiGraph, src: NodeId, dst: NodeId, k: usize, cost: &[f64]) -> Vec<Path> {
        if k == 0 {
            return Vec::new();
        }
        let tree = shortest::dijkstra(g, src, cost);
        let Some(first) = tree.path(dst) else {
            return Vec::new();
        };
        let mut result: Vec<Path> = vec![first];
        let mut candidates: Vec<(f64, Path)> = Vec::new();
        while result.len() < k {
            let prev = result.last().expect("at least one accepted path").clone();
            let prev_nodes = prev.nodes(g);
            for i in 0..prev.len() {
                let spur_node = prev_nodes[i];
                let root_edges = &prev.edges()[..i];
                let mut banned_edges = vec![false; g.edge_count()];
                for p in &result {
                    if p.len() > i && p.edges()[..i] == *root_edges {
                        banned_edges[p.edges()[i].index()] = true;
                    }
                }
                let mut banned_nodes = vec![false; g.node_count()];
                for v in &prev_nodes[..i] {
                    banned_nodes[v.index()] = true;
                }
                let spur_tree = shortest::dijkstra_filtered(g, spur_node, cost, |e| {
                    !banned_edges[e.index()]
                        && !banned_nodes[g.src(e).index()]
                        && !banned_nodes[g.dst(e).index()]
                });
                if let Some(spur_path) = spur_tree.path_to(dst) {
                    let mut edges = root_edges.to_vec();
                    edges.extend(spur_path);
                    let total = Path::new(edges);
                    if total.has_repeated_node(g) {
                        continue;
                    }
                    let c = total.cost(cost);
                    if !result.contains(&total) && !candidates.iter().any(|(_, p)| *p == total) {
                        candidates.push((c, total));
                    }
                }
            }
            let Some((best_idx, _)) = candidates
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap_or(Ordering::Equal))
            else {
                break;
            };
            let (_, path) = candidates.swap_remove(best_idx);
            result.push(path);
        }
        result
    }

    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7965_6e32 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dst = NodeId::new(n - 1);
        let k = rng.gen_range(1..8usize);
        let ours = shortest::k_shortest_paths(&g, src, dst, k, &costs);
        let reference = reference_yen(&g, src, dst, k, &costs);
        assert_eq!(ours, reference, "case {case} (k={k})");
    }
}

/// On-demand oracle rows are bit-equal to the dense block's — distances
/// and reconstructed paths — even with a tiny row cache that forces
/// eviction and recomputation mid-walk.
#[test]
fn oracle_on_demand_matches_dense_bitwise() {
    use jcr_graph::DistanceOracle;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6f72_6163 + case);
        let (n, edges, costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let dense = DistanceOracle::with_config(&g, &costs, usize::MAX, 4, None);
        let lazy = DistanceOracle::with_config(&g, &costs, 0, 2, None);
        assert!(dense.is_dense() && !lazy.is_dense());
        for s in g.nodes() {
            for t in g.nodes() {
                assert_eq!(
                    dense.dist(s, t).to_bits(),
                    lazy.dist(s, t).to_bits(),
                    "case {case}, {s:?}->{t:?}"
                );
                assert_eq!(dense.path(s, t), lazy.path(s, t), "case {case}");
            }
        }
        // A second pass after the cache has churned through every row.
        for s in g.nodes() {
            let d = lazy.row(s);
            let expect = dense.row(s);
            assert_eq!(d.dists(), expect.dists(), "case {case}, row {s:?}");
        }
    }
}

/// Nodes in one SCC reach each other; Tarjan emits components in
/// reverse topological order (no edge from an earlier to a later
/// component... i.e. edges can only go from later-emitted components
/// to earlier-emitted ones).
#[test]
fn scc_mutual_reachability() {
    use jcr_graph::structure::strongly_connected_components;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7363_6332 + case);
        let (n, edges, _costs) = random_graph(&mut rng);
        let g = build(n, &edges);
        let sccs = strongly_connected_components(&g);
        let mut comp_of = vec![0usize; n];
        for (k, c) in sccs.iter().enumerate() {
            for v in c {
                comp_of[v.index()] = k;
            }
        }
        for c in &sccs {
            let root = c[0];
            let reach = g.reachable_from(root, |_| true);
            for v in c {
                assert!(reach[v.index()], "{root:?} must reach {v:?} inside its SCC");
            }
        }
        // Reverse topological order: every edge goes to an equal-or-earlier
        // emitted component.
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(comp_of[u.index()] >= comp_of[v.index()]);
        }
    }
}
