//! Ablation benches for the substrate design choices called out in
//! DESIGN.md: the reduced Algorithm-1 LP vs its building blocks, lazy vs
//! plain greedy, column-generation MMSFP, Skutella rounding, and the raw
//! graph/LP primitives they all stand on.

use jcr_bench::{build_instance, timing, Scenario};
use jcr_core::prelude::*;
use jcr_core::{auxiliary::AuxiliaryGraph, placement_opt, rnr};
use jcr_flow::multicommodity::{min_cost_multicommodity, Commodity};
use jcr_graph::shortest;
use jcr_lp::{Model, Sense};
use jcr_submodular::brute::WeightedCoverage;
use jcr_submodular::constraint::PartitionMatroid;
use jcr_submodular::greedy::{lazy_greedy, plain_greedy};

/// An LP where half the variables are fixed and a third of the rows are
/// singletons — the structure presolve eliminates.
fn build_reduction_friendly_lp() -> Model {
    let n = 60;
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|j| {
            if j % 2 == 0 {
                m.add_var(1.0, 1.0, (j % 5) as f64) // fixed
            } else {
                m.add_var(0.0, 4.0, ((j * 7) % 11) as f64 - 5.0)
            }
        })
        .collect();
    for j in (1..n).step_by(3) {
        m.add_row(f64::NEG_INFINITY, 3.0, &[(vars[j], 1.0)]); // singleton
    }
    for r in 0..n / 4 {
        let entries: Vec<_> = (0..n)
            .filter(|j| (j + r) % 4 == 0)
            .map(|j| (vars[j], 1.0))
            .collect();
        m.add_row(f64::NEG_INFINITY, 20.0, &entries);
    }
    m
}

fn chunk_instance() -> Instance {
    let mut sc = Scenario::chunk_default();
    sc.hours = 1;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let rates = demand.true_rates(0, n_edges);
    build_instance(&sc, &rates)
}

fn main() {
    let inst = chunk_instance();

    // Graph primitives.
    let mut g = timing::group("graph");
    let origin = inst.origin.unwrap();
    g.bench("dijkstra_abovenet", || {
        shortest::dijkstra(&inst.graph, origin, &inst.link_cost)
    });
    g.bench("all_pairs_abovenet", || {
        shortest::all_pairs(&inst.graph, &inst.link_cost)
    });
    let target = inst.cache_nodes()[0];
    g.bench("yen_k10", || {
        shortest::k_shortest_paths(&inst.graph, origin, target, 10, &inst.link_cost)
    });

    // LP solver on a transportation-style instance.
    let mut g = timing::group("lp");
    for &n in &[10usize, 30] {
        g.bench(&format!("transportation/{n}"), || {
            let mut m = Model::new(Sense::Minimize);
            let mut vars = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    vars.push(m.add_var(0.0, f64::INFINITY, ((i * 7 + j * 13) % 17) as f64 + 1.0));
                }
            }
            for i in 0..n {
                let entries: Vec<_> = (0..n).map(|j| (vars[i * n + j], 1.0)).collect();
                m.add_row(1.0, 1.0, &entries);
            }
            for j in 0..n {
                let entries: Vec<_> = (0..n).map(|i| (vars[i * n + j], 1.0)).collect();
                m.add_row(1.0, 1.0, &entries);
            }
            m.solve().unwrap()
        });
    }

    // Presolve vs direct simplex on a reduction-friendly LP.
    let mut g = timing::group("lp_presolve");
    g.bench("direct_with_fixed_vars", || {
        build_reduction_friendly_lp().solve().unwrap()
    });
    g.bench("presolved_with_fixed_vars", || {
        jcr_lp::presolve::solve(&build_reduction_friendly_lp()).unwrap()
    });

    // Column-generation MMSFP on the auxiliary graph.
    let mut g = timing::group("flow");
    g.sample_size(10);
    let placement = Placement::empty(&inst);
    let aux = AuxiliaryGraph::per_item(&inst, &placement);
    let commodities: Vec<Commodity> = inst
        .requests
        .iter()
        .map(|r| Commodity {
            source: aux.item_source[r.item],
            dest: r.node,
            demand: r.rate,
        })
        .collect();
    g.bench("mmsfp_column_generation", || {
        min_cost_multicommodity(&aux.graph, &aux.cost, &aux.cap, &commodities).unwrap()
    });

    // Placement subroutines (the Alg-1 reduced LP + pipage vs the
    // segment LP of the alternating step).
    let mut g = timing::group("placement");
    g.sample_size(10);
    g.bench("alg1_reduced_lp_pipage", || {
        Algorithm1::new().place(&inst).unwrap()
    });
    let routing = rnr::route_to_nearest_replica(&inst, &Placement::empty(&inst)).unwrap();
    g.bench("segment_lp_pipage", || {
        placement_opt::optimize_placement(&inst, &routing).unwrap()
    });

    // Lazy vs plain greedy on a synthetic coverage instance.
    let mut g = timing::group("greedy");
    let n_elems = 400;
    let n_points = 300;
    let sets: Vec<Vec<usize>> = (0..n_elems)
        .map(|e| {
            (0..n_points)
                .filter(|p| (e * 31 + p * 17) % 11 == 0)
                .collect()
        })
        .collect();
    let weights: Vec<f64> = (0..n_points).map(|p| 1.0 + (p % 7) as f64).collect();
    let groups: Vec<usize> = (0..n_elems).map(|e| e % 8).collect();
    let budgets = vec![10usize; 8];
    g.bench("lazy_greedy_coverage", || {
        let mut o = WeightedCoverage::new(sets.clone(), weights.clone());
        let mut cons = PartitionMatroid::new(groups.clone(), budgets.clone());
        lazy_greedy(&mut o, &mut cons)
    });
    g.bench("plain_greedy_coverage", || {
        let mut o = WeightedCoverage::new(sets.clone(), weights.clone());
        let mut cons = PartitionMatroid::new(groups.clone(), budgets.clone());
        plain_greedy(&mut o, &mut cons)
    });
}
