//! Ablation benches for the substrate design choices called out in
//! DESIGN.md: the reduced Algorithm-1 LP vs its building blocks, lazy vs
//! plain greedy, column-generation MMSFP, Skutella rounding, and the raw
//! graph/LP primitives they all stand on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use jcr_bench::{build_instance, Scenario};
use jcr_core::prelude::*;
use jcr_core::{auxiliary::AuxiliaryGraph, placement_opt, rnr};
use jcr_flow::multicommodity::{min_cost_multicommodity, Commodity};
use jcr_graph::shortest;
use jcr_lp::{Model, Sense};
use jcr_submodular::brute::WeightedCoverage;
use jcr_submodular::constraint::PartitionMatroid;
use jcr_submodular::greedy::{lazy_greedy, plain_greedy};

/// An LP where half the variables are fixed and a third of the rows are
/// singletons — the structure presolve eliminates.
fn build_reduction_friendly_lp() -> Model {
    let n = 60;
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|j| {
            if j % 2 == 0 {
                m.add_var(1.0, 1.0, (j % 5) as f64) // fixed
            } else {
                m.add_var(0.0, 4.0, ((j * 7) % 11) as f64 - 5.0)
            }
        })
        .collect();
    for j in (1..n).step_by(3) {
        m.add_row(f64::NEG_INFINITY, 3.0, &[(vars[j], 1.0)]); // singleton
    }
    for r in 0..n / 4 {
        let entries: Vec<_> = (0..n)
            .filter(|j| (j + r) % 4 == 0)
            .map(|j| (vars[j], 1.0))
            .collect();
        m.add_row(f64::NEG_INFINITY, 20.0, &entries);
    }
    m
}

fn chunk_instance() -> Instance {
    let mut sc = Scenario::chunk_default();
    sc.hours = 1;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let rates = demand.true_rates(0, n_edges);
    build_instance(&sc, &rates)
}

fn bench_substrate(c: &mut Criterion) {
    let inst = chunk_instance();

    // Graph primitives.
    let mut g = c.benchmark_group("graph");
    g.bench_function("dijkstra_abovenet", |b| {
        let origin = inst.origin.unwrap();
        b.iter(|| shortest::dijkstra(&inst.graph, origin, &inst.link_cost))
    });
    g.bench_function("all_pairs_abovenet", |b| {
        b.iter(|| shortest::all_pairs(&inst.graph, &inst.link_cost))
    });
    g.bench_function("yen_k10", |b| {
        let origin = inst.origin.unwrap();
        let target = inst.cache_nodes()[0];
        b.iter(|| shortest::k_shortest_paths(&inst.graph, origin, target, 10, &inst.link_cost))
    });
    g.finish();

    // LP solver on a transportation-style instance.
    let mut g = c.benchmark_group("lp");
    for &n in &[10usize, 30] {
        g.bench_with_input(BenchmarkId::new("transportation", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Model::new(Sense::Minimize);
                let mut vars = Vec::new();
                for i in 0..n {
                    for j in 0..n {
                        vars.push(m.add_var(0.0, f64::INFINITY, ((i * 7 + j * 13) % 17) as f64 + 1.0));
                    }
                }
                for i in 0..n {
                    let entries: Vec<_> = (0..n).map(|j| (vars[i * n + j], 1.0)).collect();
                    m.add_row(1.0, 1.0, &entries);
                }
                for j in 0..n {
                    let entries: Vec<_> = (0..n).map(|i| (vars[i * n + j], 1.0)).collect();
                    m.add_row(1.0, 1.0, &entries);
                }
                m.solve().unwrap()
            })
        });
    }
    g.finish();

    // Presolve vs direct simplex on a reduction-friendly LP.
    let mut g = c.benchmark_group("lp_presolve");
    g.bench_function("direct_with_fixed_vars", |b| {
        b.iter(|| build_reduction_friendly_lp().solve().unwrap())
    });
    g.bench_function("presolved_with_fixed_vars", |b| {
        b.iter(|| jcr_lp::presolve::solve(&build_reduction_friendly_lp()).unwrap())
    });
    g.finish();

    // Column-generation MMSFP on the auxiliary graph.
    let mut g = c.benchmark_group("flow");
    g.sample_size(10);
    g.bench_function("mmsfp_column_generation", |b| {
        let placement = Placement::empty(&inst);
        let aux = AuxiliaryGraph::per_item(&inst, &placement);
        let commodities: Vec<Commodity> = inst
            .requests
            .iter()
            .map(|r| Commodity {
                source: aux.item_source[r.item],
                dest: r.node,
                demand: r.rate,
            })
            .collect();
        b.iter(|| min_cost_multicommodity(&aux.graph, &aux.cost, &aux.cap, &commodities).unwrap())
    });
    g.finish();

    // Placement subroutines (the Alg-1 reduced LP + pipage vs the
    // segment LP of the alternating step).
    let mut g = c.benchmark_group("placement");
    g.sample_size(10);
    g.bench_function("alg1_reduced_lp_pipage", |b| {
        b.iter(|| Algorithm1::new().place(&inst).unwrap())
    });
    g.bench_function("segment_lp_pipage", |b| {
        let routing = rnr::route_to_nearest_replica(&inst, &Placement::empty(&inst)).unwrap();
        b.iter(|| placement_opt::optimize_placement(&inst, &routing).unwrap())
    });
    g.finish();

    // Lazy vs plain greedy on a synthetic coverage instance.
    let mut g = c.benchmark_group("greedy");
    let n_elems = 400;
    let n_points = 300;
    let sets: Vec<Vec<usize>> = (0..n_elems)
        .map(|e| (0..n_points).filter(|p| (e * 31 + p * 17) % 11 == 0).collect())
        .collect();
    let weights: Vec<f64> = (0..n_points).map(|p| 1.0 + (p % 7) as f64).collect();
    let groups: Vec<usize> = (0..n_elems).map(|e| e % 8).collect();
    let budgets = vec![10usize; 8];
    g.bench_function("lazy_greedy_coverage", |b| {
        b.iter(|| {
            let mut o = WeightedCoverage::new(sets.clone(), weights.clone());
            let mut cons = PartitionMatroid::new(groups.clone(), budgets.clone());
            lazy_greedy(&mut o, &mut cons)
        })
    });
    g.bench_function("plain_greedy_coverage", |b| {
        b.iter(|| {
            let mut o = WeightedCoverage::new(sets.clone(), weights.clone());
            let mut cons = PartitionMatroid::new(groups.clone(), budgets.clone());
            plain_greedy(&mut o, &mut cons)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
