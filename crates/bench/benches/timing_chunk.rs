//! Table 3: execution time of each algorithm under the paper's default
//! chunk-level setting (IC-IR, Abovenet-like topology, |C| = 54, ζ = 12).

use jcr_bench::{build_instance, timing, Scenario};
use jcr_core::prelude::*;
use jcr_core::{alg2, rnr};

fn instances() -> (Instance, Instance) {
    let mut sc = Scenario::chunk_default();
    sc.hours = 1;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let rates = demand.true_rates(0, n_edges);
    let capped = build_instance(&sc, &rates);
    let mut sc_unlim = sc.clone();
    sc_unlim.kappa_fraction = None;
    let unlim = build_instance(&sc_unlim, &rates);
    (unlim, capped)
}

fn main() {
    let (unlim, capped) = instances();
    let storer = capped.cache_nodes()[0];

    let mut g = timing::group("table3_chunk");
    g.sample_size(10);
    g.bench("alg1_uncapacitated", || {
        Algorithm1::new().solve(&unlim).unwrap()
    });
    g.bench("ksp10_uncapacitated", || {
        IoannidisYeh::k_shortest(10).solve(&unlim).unwrap()
    });
    g.bench("sp_uncapacitated", || {
        ShortestPathPlacement.solve(&unlim).unwrap()
    });
    g.bench("alg2_k1000", || {
        alg2::solve_binary_caches(&capped, &[storer], 1000).unwrap()
    });
    g.bench("alg2_k2_skutella33", || {
        alg2::solve_binary_caches(&capped, &[storer], 2).unwrap()
    });
    g.bench("rnr_binary", || {
        alg2::rnr_binary(&capped, &[storer]).unwrap()
    });
    g.bench("alternating_general", || {
        Alternating::new().solve(&capped).unwrap()
    });
    g.bench("sp_general", || {
        ShortestPathPlacement.solve(&capped).unwrap()
    });
    g.bench("sp_rnr_general", || {
        IoannidisYeh::sp_rnr().solve(&capped).unwrap()
    });
    g.bench("ksp_rnr_general", || {
        IoannidisYeh::ksp_rnr(10).solve(&capped).unwrap()
    });
    let p = Placement::empty(&capped);
    g.bench("rnr_routing_only", || {
        rnr::route_to_nearest_replica(&capped, &p).unwrap()
    });
}
