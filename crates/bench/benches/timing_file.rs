//! Table 4: execution time of each algorithm under the paper's default
//! file-level setting (heterogeneous sizes, |C| = 10, ζ = 2 videos).

use criterion::{criterion_group, criterion_main, Criterion};

use jcr_bench::{build_instance, Scenario};
use jcr_core::prelude::*;
use jcr_core::{alg2, hetero, rnr};

fn instances() -> (Instance, Instance) {
    let mut sc = Scenario::file_default();
    sc.hours = 1;
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let rates = demand.true_rates(0, n_edges);
    let capped = build_instance(&sc, &rates);
    let mut sc_unlim = sc.clone();
    sc_unlim.kappa_fraction = None;
    let unlim = build_instance(&sc_unlim, &rates);
    (unlim, capped)
}

fn bench_file(c: &mut Criterion) {
    let (unlim, capped) = instances();
    let storer = capped.cache_nodes()[0];

    let mut g = c.benchmark_group("table4_file");
    g.sample_size(10);
    g.bench_function("greedy_uncapacitated", |b| {
        b.iter(|| {
            let p = hetero::greedy_placement_rnr(&unlim);
            rnr::route_to_nearest_replica(&unlim, &p).unwrap()
        })
    });
    g.bench_function("ksp10_uncapacitated", |b| {
        b.iter(|| IoannidisYeh::k_shortest(10).solve(&unlim).unwrap())
    });
    g.bench_function("sp_uncapacitated", |b| {
        b.iter(|| ShortestPathPlacement.solve(&unlim).unwrap())
    });
    g.bench_function("alg2_k1000", |b| {
        b.iter(|| alg2::solve_binary_caches(&capped, &[storer], 1000).unwrap())
    });
    g.bench_function("alg2_k2_skutella33", |b| {
        b.iter(|| alg2::solve_binary_caches(&capped, &[storer], 2).unwrap())
    });
    g.bench_function("rnr_binary", |b| {
        b.iter(|| alg2::rnr_binary(&capped, &[storer]).unwrap())
    });
    g.bench_function("alternating_general", |b| {
        b.iter(|| Alternating::new().solve(&capped).unwrap())
    });
    g.bench_function("sp_general", |b| {
        b.iter(|| ShortestPathPlacement.solve(&capped).unwrap())
    });
    g.bench_function("sp_rnr_general", |b| {
        b.iter(|| IoannidisYeh::sp_rnr().solve(&capped).unwrap())
    });
    g.bench_function("ksp_rnr_general", |b| {
        b.iter(|| IoannidisYeh::ksp_rnr(10).solve(&capped).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_file);
criterion_main!(benches);
