//! Empirical basis for the pool-chunking note in DESIGN.md §8: runs the
//! pool's dominant fan-outs at stress scale and prints the per-chunk
//! latency histogram (`pool.chunk_ns`) alongside the chunk-count
//! arithmetic of the fixed 64-chunk partition vs the old `workers × 4`
//! rule.
//!
//! Phases:
//! * all-pairs Dijkstra on a 700-node ring+chords graph (the bench
//!   gate's `--full` graph; one source per item, ~uniform cost), and
//! * with `--deltacom`, one alternating solve on the paper's largest
//!   topology (Deltacom) at `|C| = 54` — column-generation pricing is
//!   the fan-out, with per-commodity costs that vary widely.
//!
//! ```text
//! cargo run --release -p jcr-bench --example chunk_profile -- [--deltacom] [workers...]
//! ```

use jcr_bench::{build_instance, profile, Scenario};
use jcr_core::prelude::Alternating;
use jcr_ctx::obs::ObsSnapshot;
use jcr_ctx::par::chunk_len;
use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_ctx::SolverContext;
use jcr_graph::shortest::all_pairs_with_context;
use jcr_graph::{DiGraph, NodeId};
use jcr_topo::TopologyKind;

/// Same construction as the bench gate's seeded stress graph: a ring for
/// strong connectivity plus `4n` random chords, costs in `[1, 10)`.
fn seeded_graph(n: usize, seed: u64) -> (DiGraph, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    let mut cost = Vec::new();
    for i in 0..n {
        g.add_edge(nodes[i], nodes[(i + 1) % n]);
        cost.push(rng.gen_range(1.0..10.0));
    }
    for _ in 0..n * 4 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            g.add_edge(nodes[a], nodes[b]);
            cost.push(rng.gen_range(1.0..10.0));
        }
    }
    (g, cost)
}

fn report(label: &str, items: usize, workers: usize, snap: &ObsSnapshot, wall_ms: f64) {
    let h = match snap.histograms.get("pool.chunk_ns") {
        Some(h) => h,
        None => {
            println!("{label}: no pool fan-out recorded");
            return;
        }
    };
    let old_chunks = items.div_ceil(items.div_ceil(workers * 4).max(1));
    println!(
        "{label}: workers={workers} wall={wall_ms:.1}ms chunks={} (len {}, old workers×4 rule: {} chunks) \
         chunk_ns p50={:.0}µs p95={:.0}µs max={:.0}µs spread(p95/p50)={:.1}",
        h.count(),
        chunk_len(items),
        old_chunks,
        h.quantile(0.5) as f64 / 1e3,
        h.quantile(0.95) as f64 / 1e3,
        h.max() as f64 / 1e3,
        h.quantile(0.95) as f64 / h.quantile(0.5).max(1) as f64,
    );
}

fn main() {
    let mut deltacom = false;
    let mut widths: Vec<usize> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--deltacom" {
            deltacom = true;
        } else if let Ok(w) = arg.parse() {
            widths.push(w);
        }
    }
    if widths.is_empty() {
        widths = vec![1, 2, 4, 8];
    }

    let n = 700;
    let (g, cost) = seeded_graph(n, 11);
    for &w in &widths {
        let ctx = SolverContext::new().with_workers(w);
        let start = std::time::Instant::now();
        let _ = all_pairs_with_context(&g, &cost, &ctx);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        report("all-pairs 700", n, w, &ctx.obs_snapshot(), wall);
    }

    if deltacom {
        let mut sc = Scenario::chunk_default();
        sc.kind = TopologyKind::Deltacom;
        sc.hours = 1;
        let n_edges = sc.topology().edge_nodes.len();
        let rates = sc.demand(n_edges).true_rates(0, n_edges);
        let inst = build_instance(&sc, &rates);
        println!(
            "deltacom instance: |C|={} requests={} edges={}",
            sc.catalog_size(),
            inst.requests.len(),
            n_edges
        );
        for &w in &widths {
            let ctx = SolverContext::new().with_workers(w);
            let start = std::time::Instant::now();
            let _ = Alternating::new().solve_with_context(&inst, &ctx);
            let wall = start.elapsed().as_secs_f64() * 1e3;
            let snap = ctx.obs_snapshot();
            report("deltacom alternating", inst.requests.len(), w, &snap, wall);
            jcr_bench::print_table(
                &format!("deltacom metric histograms, workers={w}"),
                &profile::histogram_header(),
                &profile::histogram_rows(&snap),
            );
        }
    }
}
