//! A minimal JSON value type with a renderer and a recursive-descent
//! parser — just enough for the `BENCH.json` artifacts the bench gate
//! reads and writes (no external dependencies, by policy).
//!
//! Numbers are `f64`. Values whose bit patterns matter exactly (solution
//! checksums) are therefore stored as hex *strings*, never as numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a [`BTreeMap`] so rendering is canonical
/// (sorted keys), which keeps committed baselines diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with canonically sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(out, *v),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable description with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; bench values are finite by
        // construction, but render defensively instead of panicking.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for bench files.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes of a multi-byte char pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", Json::Str("bench".into())),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(1.5)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "phases",
                Json::Arr(vec![
                    Json::obj([("wall_ms", Json::Num(12.25))]),
                    Json::obj([("wall_ms", Json::Num(3.0))]),
                ]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let mut out = String::new();
        render_number(&mut out, 42.0);
        assert_eq!(out, "42");
        out.clear();
        render_number(&mut out, 0.5);
        assert_eq!(out, "0.5");
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let parsed = Json::parse(" { \"a\\n\" : [ 1 , -2.5e1 , \"x\\u0041\" ] } ").unwrap();
        let arr = parsed.get("a\n").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn object_keys_render_sorted() {
        let doc = Json::obj([("b", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        let text = doc.render();
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }
}
