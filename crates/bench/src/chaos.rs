//! `experiments chaos` — deterministic kill/restart/corrupt harness for
//! the crash-recoverable online loop.
//!
//! The contract, checked end to end:
//!
//! * **zero panics** — every unit runs under `catch_unwind`; a caught
//!   panic is a counted violation, never an abort;
//! * **zero unverified `Ok` claims** — every served hour is re-checked
//!   with [`validate_solution`] and its independent certificate;
//! * **bit-identical resume** — a run killed after any hour and resumed
//!   from its snapshot replays the remaining hours with byte-for-byte
//!   identical snapshots and outcome signatures. This holds at any
//!   `JCR_WORKERS` because the solver's parallel fan-outs merge in run
//!   order (the CI matrix pins 1, 2, and 8).
//!
//! Four phases:
//!
//! 1. **Baseline** — `H` uninterrupted faulted hours
//!    ([`FaultInjector`] at rate 0.25: link/node kills, capacity cuts,
//!    demand spikes), recording a snapshot and an outcome signature per
//!    hour boundary. Budgets are unlimited on purpose: wall-clock
//!    deadlines make rung selection timing-dependent, which would break
//!    the bit-identity half of the contract (the `faults` experiment
//!    covers budget sabotage instead).
//! 2. **Kill/resume** — for each kill point, decode the boundary
//!    snapshot through the wire format, [`OnlineSimulator::restore`],
//!    and replay to the horizon; every component of a pristine snapshot
//!    must restore (not degrade) and every replayed hour must match the
//!    baseline bit for bit.
//! 3. **Corruption battery** — sampled single-bit flips and truncations
//!    of a mid-run snapshot must all fail decoding with a typed
//!    [`StateError`]; decodable-but-semantically-corrupt states (dropped
//!    placement word, out-of-range routing edge, garbage basis,
//!    out-of-range column) must degrade exactly the poisoned component
//!    and still serve the remaining hours.
//! 4. **Stale/foreign restores** — an hour-1 snapshot fed the last
//!    hour's instance, and a snapshot restored against a different
//!    topology (every dimension check trips), must both serve cold.
//!
//! Any violation dumps the offending snapshot (bytes + debug JSON) under
//! `chaos_failures/` and the run exits nonzero.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jcr_core::prelude::*;
use jcr_core::state::{fnv1a, ColumnRecord, SolverState};
use jcr_core::validate::validate_solution;
use jcr_ctx::Budget;
use jcr_sim::faults::{FaultConfig, FaultInjector};
use jcr_topo::{Topology, TopologyKind};

use crate::exp::ExpConfig;
use crate::print_table;

/// Fault rate driven through every chaos hour.
const FAULT_RATE: f64 = 0.25;

/// Demand-scale perturbation mirrored from the online tests: big enough
/// that consecutive hours genuinely differ, deterministic in the hour.
fn hour_instance(seed: u64, hour: usize) -> Instance {
    let topo = Topology::generate(TopologyKind::Abovenet, 5).expect("known topology generates");
    let n_edges = topo.edge_nodes.len();
    let scale = 90.0 + 10.0 * (hour % 4) as f64;
    let rates: Vec<Vec<f64>> = (0..6)
        .map(|i| {
            (0..n_edges)
                .map(|k| scale * (1.0 + ((i * 7 + k * 3 + hour + seed as usize) % 5) as f64))
                .collect()
        })
        .collect();
    InstanceBuilder::new(topo)
        .items(6)
        .cache_capacity(2.0)
        .demand_matrix(rates)
        .link_capacity_fraction(0.05)
        .build()
        .expect("chaos base instance builds")
}

/// A small foreign topology for the cross-dimension restore probe.
fn foreign_instance(seed: u64) -> Instance {
    let topo = Topology::generate(TopologyKind::Abovenet, 3).expect("known topology generates");
    let n_edges = topo.edge_nodes.len();
    let rates: Vec<Vec<f64>> = (0..4)
        .map(|i| {
            (0..n_edges)
                .map(|k| 80.0 * (1.0 + ((i * 5 + k * 3 + seed as usize) % 3) as f64))
                .collect()
        })
        .collect();
    InstanceBuilder::new(topo)
        .items(4)
        .cache_capacity(2.0)
        .demand_matrix(rates)
        .link_capacity_fraction(0.05)
        .build()
        .expect("foreign instance builds")
}

/// The injector whose faults every phase replays identically. Budget
/// sabotage is disabled: rung selection under a wall-clock deadline is
/// timing-dependent, and this harness's contract is bit-identity.
fn injector(seed: u64) -> FaultInjector {
    let mut cfg = FaultConfig::uniform(seed.wrapping_mul(6_700_417).wrapping_add(17), FAULT_RATE);
    cfg.budget_trip = 0.0;
    FaultInjector::new(cfg)
}

/// Deterministic signature of an hour's outcome: the serving rung, both
/// cost bit patterns, the churn, and the snapshot the hour committed.
fn outcome_sig(outcome: &HourOutcome, snap: &[u8]) -> u64 {
    let mut bytes = Vec::with_capacity(snap.len() + 40);
    bytes.extend_from_slice(&(outcome.rung.index() as u64).to_le_bytes());
    bytes.extend_from_slice(&outcome.decided_cost.to_bits().to_le_bytes());
    bytes.extend_from_slice(&outcome.realized_cost.to_bits().to_le_bytes());
    bytes.extend_from_slice(&(outcome.placement_churn as u64).to_le_bytes());
    bytes.extend_from_slice(snap);
    fnv1a(&bytes)
}

/// One served-and-recorded hour.
struct HourRecord {
    sig: u64,
    snap: Vec<u8>,
}

/// Tallies of every contract check the run performed.
#[derive(Default)]
struct Tally {
    hours_served: usize,
    resume_points: usize,
    hours_compared: usize,
    flips: usize,
    truncations: usize,
    semantic_cases: usize,
    stale_restores: usize,
    panics: usize,
    violations: usize,
}

/// Serves hours `from..to` on `sim`, checking the serving contract for
/// each and recording the hour boundary. Returns an error message on the
/// first contract violation.
fn serve_span(
    sim: &mut OnlineSimulator,
    inj: &FaultInjector,
    seed: u64,
    from: usize,
    to: usize,
    mut record: impl FnMut(usize, HourRecord),
) -> Result<(), String> {
    for h in from..to {
        let base = hour_instance(seed, h);
        let faulted = inj.inject(h, &base, Budget::unlimited());
        let truth: Vec<f64> = faulted.instance.requests.iter().map(|r| r.rate).collect();
        let outcome = sim
            .step_anytime(&faulted.instance, &truth, &AnytimeConfig::new())
            .map_err(|e| format!("hour {h}: ladder failed to serve: {e}"))?;
        if !outcome.certificate.verified() {
            return Err(format!("hour {h}: served with an unverified certificate"));
        }
        let violations = validate_solution(&faulted.instance, &outcome.solution);
        if !violations.is_empty() {
            return Err(format!(
                "hour {h}: served solution fails re-validation: {:?}",
                violations[0]
            ));
        }
        let snap = sim.snapshot().to_bytes();
        record(
            h,
            HourRecord {
                sig: outcome_sig(&outcome, &snap),
                snap,
            },
        );
    }
    Ok(())
}

/// Runs a unit under `catch_unwind`, converting a panic or a returned
/// error into a recorded violation (the chaos contract is *zero* panics,
/// even on garbage input).
fn guarded(
    tally: &mut Tally,
    failures: &mut Vec<String>,
    label: &str,
    unit: impl FnOnce() -> Result<(), String>,
) -> bool {
    match catch_unwind(AssertUnwindSafe(unit)) {
        Ok(Ok(())) => true,
        Ok(Err(msg)) => {
            tally.violations += 1;
            eprintln!("[chaos] VIOLATION in {label}: {msg}");
            failures.push(format!("{label}: {msg}"));
            false
        }
        Err(payload) => {
            tally.panics += 1;
            tally.violations += 1;
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("[chaos] PANIC in {label}: {msg}");
            failures.push(format!("{label}: panic: {msg}"));
            false
        }
    }
}

/// Writes the snapshot that witnessed a violation (bytes plus lossless
/// debug JSON) under `chaos_failures/` for offline replay.
fn dump_failure(label: &str, bytes: &[u8]) {
    let dir = std::path::Path::new("chaos_failures");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(dir.join(format!("{label}.snap")), bytes);
    if let Ok(state) = SolverState::from_bytes(bytes) {
        let _ = std::fs::write(dir.join(format!("{label}.json")), state.to_debug_json());
    }
}

/// Entry point for `experiments chaos`.
///
/// # Errors
///
/// Returns the joined list of contract violations (panics, unverified
/// serves, resume divergence, corruption that decoded or escalated).
pub fn chaos(cfg: ExpConfig) -> Result<(), String> {
    // Inner per-hour solves size their pools from the context default, so
    // honor --workers by pinning the environment knob up front.
    if cfg.workers > 0 {
        std::env::set_var("JCR_WORKERS", cfg.workers.to_string());
    }
    let horizon = if cfg.full {
        cfg.hours.max(12)
    } else {
        cfg.hours.max(6)
    };
    let seed = cfg.seed;
    eprintln!(
        "[chaos] horizon {horizon}h, fault rate {FAULT_RATE}, seed {seed} \
         (budgets unlimited: bit-identity contract)"
    );

    // Silence the default panic hook: a caught panic is a counted
    // contract violation, not console noise mid-table.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut tally = Tally::default();
    let mut failures: Vec<String> = Vec::new();

    // Phase 1: uninterrupted baseline.
    let mut records: Vec<HourRecord> = Vec::with_capacity(horizon);
    let baseline_ok = guarded(&mut tally, &mut failures, "baseline", || {
        let inj = injector(seed);
        let mut sim = OnlineSimulator::new(Alternating::new());
        serve_span(&mut sim, &inj, seed, 0, horizon, |_, rec| records.push(rec))
    });
    tally.hours_served += records.len();
    if !baseline_ok || records.len() != horizon {
        std::panic::set_hook(prev_hook);
        return Err(format!(
            "baseline run failed before the horizon ({} of {horizon} hours served); \
             cannot exercise resume",
            records.len()
        ));
    }

    // Phase 2: kill after hour k-1, resume from its snapshot, replay to
    // the horizon; every replayed hour must match the baseline bit for
    // bit, and no component of a pristine snapshot may degrade.
    let kill_points: Vec<usize> = if cfg.full {
        (1..horizon).collect()
    } else {
        let mut ks = vec![1, horizon / 2, horizon - 1];
        ks.dedup();
        ks
    };
    for &k in &kill_points {
        tally.resume_points += 1;
        let boundary = &records[k - 1];
        let mut replayed: Vec<(usize, HourRecord)> = Vec::new();
        let ok = guarded(&mut tally, &mut failures, &format!("resume@{k}"), || {
            let state = SolverState::from_bytes(&boundary.snap)
                .map_err(|e| format!("resume@{k}: pristine snapshot failed to decode: {e}"))?;
            let (mut sim, report) = OnlineSimulator::restore(Alternating::new(), &state);
            for (name, status) in [
                ("placement", report.placement),
                ("routing", report.routing),
                ("basis", report.basis),
                ("columns", report.columns),
            ] {
                if let ComponentStatus::Degraded(why) = status {
                    return Err(format!(
                        "resume@{k}: pristine snapshot degraded {name}: {why}"
                    ));
                }
            }
            let inj = injector(seed);
            serve_span(&mut sim, &inj, seed, k, horizon, |h, rec| {
                replayed.push((h, rec));
            })
        });
        if !ok {
            dump_failure(&format!("resume_at_{k}"), &boundary.snap);
            continue;
        }
        for (h, rec) in &replayed {
            tally.hours_compared += 1;
            let base = &records[*h];
            if rec.sig != base.sig || rec.snap != base.snap {
                dump_failure(&format!("diverged_h{h}_resume_at_{k}"), &rec.snap);
                dump_failure(&format!("baseline_h{h}"), &base.snap);
                let msg = format!(
                    "resume@{k}: hour {h} diverged from baseline \
                     (sig {:#018x} vs {:#018x}, snapshots {})",
                    rec.sig,
                    base.sig,
                    if rec.snap == base.snap {
                        "identical"
                    } else {
                        "differ"
                    }
                );
                eprintln!("[chaos] VIOLATION: {msg}");
                tally.violations += 1;
                failures.push(msg);
            }
        }
    }

    // Phase 3a: bit flips — every sampled single-bit corruption must be
    // rejected by the codec with a typed error, never a panic.
    let mid = &records[horizon / 2 - 1].snap;
    let byte_stride = (mid.len() / 96).max(1);
    let mut detected_flips = 0usize;
    for i in (0..mid.len()).step_by(byte_stride) {
        tally.flips += 1;
        let ok = guarded(&mut tally, &mut failures, &format!("bitflip@{i}"), || {
            let mut bad = mid.clone();
            bad[i] ^= 1u8 << (i * 7 % 8);
            match SolverState::from_bytes(&bad) {
                Err(_) => Ok(()),
                Ok(_) => Err(format!(
                    "bit flip at byte {i} decoded Ok (checksum failed to detect it)"
                )),
            }
        });
        if ok {
            detected_flips += 1;
        } else {
            dump_failure(&format!("undetected_flip_{i}"), mid);
        }
    }

    // Phase 3b: truncations — every sampled prefix must be rejected.
    let len_stride = (mid.len() / 41).max(1);
    let mut detected_truncs = 0usize;
    for l in (0..mid.len()).step_by(len_stride) {
        tally.truncations += 1;
        let ok = guarded(&mut tally, &mut failures, &format!("truncate@{l}"), || {
            match SolverState::from_bytes(&mid[..l]) {
                Err(_) => Ok(()),
                Ok(_) => Err(format!("truncation to {l} bytes decoded Ok")),
            }
        });
        if ok {
            detected_truncs += 1;
        }
    }

    // Phase 3c: semantically corrupt but well-framed snapshots — the
    // restore gate must degrade exactly the poisoned component and the
    // resumed simulator must still serve the remaining hours.
    let pristine = SolverState::from_bytes(mid).map_err(|e| format!("mid snapshot: {e}"))?;
    let semantic_cases: Vec<(&str, SolverState)> = vec![
        ("placement", {
            let mut s = pristine.clone();
            if let Some(words) = &mut s.placement {
                words.pop();
            }
            s
        }),
        ("routing", {
            let mut s = pristine.clone();
            if let Some(routing) = &mut s.routing {
                if let Some(flow) = routing.iter_mut().flatten().next() {
                    flow.edges.push(s.n_edges + 999);
                }
            }
            s
        }),
        ("basis", {
            let mut s = pristine.clone();
            s.basis = Some(vec![0xFF; 16]);
            s
        }),
        ("columns", {
            let mut s = pristine.clone();
            s.columns.push(ColumnRecord {
                commodity: 0,
                nodes: vec![0, s.n_nodes + s.n_items + 5],
            });
            s
        }),
    ];
    let resume_hour = horizon / 2;
    for (component, state) in &semantic_cases {
        tally.semantic_cases += 1;
        let ok = guarded(
            &mut tally,
            &mut failures,
            &format!("semantic:{component}"),
            || {
                let (mut sim, report) = OnlineSimulator::restore(Alternating::new(), state);
                let status = match *component {
                    "placement" => report.placement,
                    "routing" => report.routing,
                    "basis" => report.basis,
                    _ => report.columns,
                };
                if !matches!(status, ComponentStatus::Degraded(_)) {
                    return Err(format!(
                        "corrupt {component} was not degraded at restore (status {status:?})"
                    ));
                }
                let inj = injector(seed);
                serve_span(&mut sim, &inj, seed, resume_hour, horizon, |_, _| {})
            },
        );
        if !ok {
            dump_failure(&format!("semantic_{component}"), &state.to_bytes());
        }
    }

    // Phase 4: stale-epoch and foreign-topology restores must serve cold
    // rather than trip on carried state.
    tally.stale_restores += 1;
    let stale_ok = guarded(&mut tally, &mut failures, "stale-epoch", || {
        let state = SolverState::from_bytes(&records[0].snap)
            .map_err(|e| format!("stale snapshot: {e}"))?;
        let (mut sim, _) = OnlineSimulator::restore(Alternating::new(), &state);
        // Feed the *last* hour's faulted instance to an hour-1 snapshot.
        serve_span(
            &mut sim,
            &injector(seed),
            seed,
            horizon - 1,
            horizon,
            |_, _| {},
        )
    });
    if !stale_ok {
        dump_failure("stale_epoch", &records[0].snap);
    }
    tally.stale_restores += 1;
    let foreign_ok = guarded(&mut tally, &mut failures, "foreign-topology", || {
        let state = SolverState::from_bytes(mid).map_err(|e| format!("mid snapshot: {e}"))?;
        let (mut sim, _) = OnlineSimulator::restore(Alternating::new(), &state);
        let inst = foreign_instance(seed);
        let truth: Vec<f64> = inst.requests.iter().map(|r| r.rate).collect();
        let outcome = sim
            .step_anytime(&inst, &truth, &AnytimeConfig::new())
            .map_err(|e| format!("foreign-topology restore failed to serve: {e}"))?;
        if !outcome.certificate.verified() {
            return Err("foreign-topology hour served unverified".into());
        }
        if !validate_solution(&inst, &outcome.solution).is_empty() {
            return Err("foreign-topology hour fails re-validation".into());
        }
        Ok(())
    });
    if !foreign_ok {
        dump_failure("foreign_topology", mid);
    }

    std::panic::set_hook(prev_hook);

    let header: Vec<String> = ["check", "exercised", "clean"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let resumes_clean = kill_points.len()
        - failures
            .iter()
            .filter(|f| f.starts_with("resume@"))
            .map(|f| f.split(':').next().unwrap_or(""))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
    let rows = vec![
        vec![
            "baseline hours served + certified".to_string(),
            tally.hours_served.to_string(),
            tally.hours_served.to_string(),
        ],
        vec![
            "kill/resume points (bit-identical replay)".to_string(),
            tally.resume_points.to_string(),
            resumes_clean.to_string(),
        ],
        vec![
            "replayed hours compared".to_string(),
            tally.hours_compared.to_string(),
            tally.hours_compared.to_string(),
        ],
        vec![
            "single-bit flips rejected".to_string(),
            tally.flips.to_string(),
            detected_flips.to_string(),
        ],
        vec![
            "truncations rejected".to_string(),
            tally.truncations.to_string(),
            detected_truncs.to_string(),
        ],
        vec![
            "semantic corruptions degraded + served".to_string(),
            tally.semantic_cases.to_string(),
            (tally.semantic_cases - failures.iter().filter(|f| f.contains("semantic")).count())
                .to_string(),
        ],
        vec![
            "stale/foreign restores served cold".to_string(),
            tally.stale_restores.to_string(),
            ((stale_ok as usize) + (foreign_ok as usize)).to_string(),
        ],
        vec![
            "panics".to_string(),
            "-".to_string(),
            tally.panics.to_string(),
        ],
    ];
    print_table(
        "Chaos harness — kill/resume bit-identity and corruption containment",
        &header,
        &rows,
    );

    if tally.violations == 0 && failures.is_empty() {
        eprintln!(
            "[chaos] contract holds: zero panics, zero unverified serves, resume bit-identical"
        );
        Ok(())
    } else {
        Err(format!(
            "{} contract violation(s), {} panic(s); failing snapshots in chaos_failures/",
            tally.violations.max(failures.len()),
            tally.panics
        ))
    }
}
