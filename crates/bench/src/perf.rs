//! The `experiments bench` subcommand: fixed seeded micro-benchmarks over
//! the solver hot paths, emitted as a machine-readable `BENCH.json` so the
//! perf trajectory is a tracked artifact, plus the regression compare the
//! CI bench gate runs against the committed `BENCH_BASELINE.json`.
//!
//! Each phase runs the same seeded workload twice — once with the pool
//! forced serial (1 worker) and once at the configured width — records
//! wall time, [`SolverStats`](jcr_ctx::SolverStats) counters, and a
//! checksum of the solution's f64 bit patterns. The serial and parallel
//! checksums must agree (the pool's deterministic-merge contract), and
//! across commits the checksums and counters must match the baseline
//! exactly; only wall time gets a tolerance band.
//!
//! Each phase also runs under a span named after itself, and the bench
//! entry point merges the per-phase [`ObsSnapshot`]s into one document
//! written next to `BENCH.json` as `OBS.json` (the canonical wire
//! format of `jcr_ctx::obs::wire`). Two such artifacts feed the
//! differential profiler (`experiments diff`, [`crate::diff`]); when
//! the gate trips on a wall-clock regression and an obs baseline is
//! available, the failure summary names the guilty spans, not just the
//! guilty phase.

use std::time::Instant;

use jcr_ctx::obs::wire::WireSnapshot;
use jcr_ctx::obs::ObsSnapshot;
use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_ctx::{Counter, SolverContext};
use jcr_flow::multicommodity::{min_cost_multicommodity_with_context, Commodity};
use jcr_graph::{shortest, DiGraph, NodeId};
use jcr_lp::{Model, Sense};

use jcr_core::prelude::*;

use crate::exp::{default_factory, evaluate_in, Algo, ExpConfig};
use crate::json::Json;
use crate::Scenario;

/// Options of the `bench` subcommand.
#[derive(Clone, Debug, Default)]
pub struct BenchOpts {
    /// Write the report to this path (stdout summary always prints).
    pub out: Option<String>,
    /// Compare against this committed baseline; mismatched checksums or
    /// counters fail hard, wall-clock regressions beyond `tolerance` fail.
    pub baseline: Option<String>,
    /// Relative wall-clock tolerance for the baseline compare (0.25 = the
    /// CI gate's ±25%).
    pub tolerance: f64,
    /// Write the merged observability snapshot (canonical wire format)
    /// here. Defaults to `out` with `BENCH` renamed to `OBS` (so
    /// `BENCH_PR.json` → `OBS_PR.json`); no obs artifact is written when
    /// neither this nor `out` is set.
    pub obs_out: Option<String>,
    /// The committed obs baseline (`OBS_BASELINE.json`). When the gate
    /// fails on a wall-clock regression, the step summary appends the
    /// top-10 span attribution of baseline → this run.
    pub obs_baseline: Option<String>,
}

/// One benchmark phase's measurements.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase name (stable key the baseline compare matches on).
    pub name: String,
    /// Serial (1-worker) wall time in milliseconds.
    pub wall_ms_serial: f64,
    /// Parallel wall time in milliseconds at the configured width.
    pub wall_ms_parallel: f64,
    /// `wall_ms_serial / wall_ms_parallel`.
    pub speedup: f64,
    /// Hex FNV-1a checksum over the solution's f64 bit patterns; equal
    /// between serial and parallel runs by the determinism contract.
    pub checksum: String,
    /// Deterministic work counters of the parallel run.
    pub counters: Vec<(&'static str, u64)>,
}

/// A full bench report.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Pool width the parallel runs used.
    pub workers: usize,
    /// Per-phase measurements.
    pub phases: Vec<PhaseReport>,
}

/// Accumulates f64 bit patterns into an order-sensitive FNV-1a hash.
struct Checksum(u64);

impl Checksum {
    fn new() -> Self {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: f64) {
        for byte in v.to_bits().to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

fn checksum_slice(values: impl IntoIterator<Item = f64>) -> String {
    let mut h = Checksum::new();
    for v in values {
        h.push(v);
    }
    h.hex()
}

/// A seeded random strongly connected graph: a ring for connectivity plus
/// `chords_per_node · n` random chords, with costs in `[1, 10)`.
fn seeded_graph(n: usize, chords_per_node: usize, seed: u64) -> (DiGraph, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    let mut cost = Vec::new();
    for i in 0..n {
        g.add_edge(nodes[i], nodes[(i + 1) % n]);
        cost.push(rng.gen_range(1.0..10.0));
    }
    for _ in 0..n * chords_per_node {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            g.add_edge(nodes[a], nodes[b]);
            cost.push(rng.gen_range(1.0..10.0));
        }
    }
    (g, cost)
}

fn parallel_width(cfg: ExpConfig) -> usize {
    if cfg.workers == 0 {
        jcr_ctx::default_workers().max(1)
    } else {
        cfg.workers
    }
}

fn counters_of(ctx: &SolverContext) -> Vec<(&'static str, u64)> {
    let stats = ctx.stats();
    Counter::ALL
        .iter()
        .map(|&c| (c.name(), stats.counter(c)))
        .collect()
}

/// Timed repetitions per leg: the gate's wall-clock numbers are the
/// median of this many runs, so one scheduler hiccup or cold cache can't
/// push a phase over the ±tolerance band (the historical flake mode of
/// the CI bench gate). Checksums and counters are still required to
/// match *exactly* across every repetition — only time gets the median.
const TIMING_SAMPLES: usize = 3;

/// Median of a non-empty sample (total order via `f64::total_cmp`).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Runs one leg [`TIMING_SAMPLES`] times on fresh `workers`-wide
/// contexts, each repetition under a span named `phase`, asserting the
/// deterministic outputs are identical across repetitions. Returns
/// `(median wall ms, checksum, counters, obs snapshot)`; the snapshot is
/// the first repetition's (one clean tree per phase, not a 3× sum).
/// One timed leg's deterministic outputs: checksum, counters, and the
/// first repetition's observability snapshot.
type LegOutput = (String, Vec<(&'static str, u64)>, ObsSnapshot);

fn time_leg<F>(
    workers: usize,
    phase: &'static str,
    work: &mut F,
) -> (f64, String, Vec<(&'static str, u64)>, ObsSnapshot)
where
    F: FnMut(&SolverContext) -> String,
{
    let mut walls = Vec::with_capacity(TIMING_SAMPLES);
    let mut first: Option<LegOutput> = None;
    for rep in 0..TIMING_SAMPLES {
        let ctx = SolverContext::new().with_workers(workers);
        let start = Instant::now();
        let sum = {
            let _phase_span = ctx.span(phase);
            work(&ctx)
        };
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        let counters = counters_of(&ctx);
        match &first {
            None => first = Some((sum, counters, ctx.obs_snapshot())),
            Some((sum0, counters0, _)) => {
                assert_eq!(
                    *sum0, sum,
                    "repetition {rep} checksum diverged at {workers} worker(s)"
                );
                assert_eq!(
                    *counters0, counters,
                    "repetition {rep} counters diverged at {workers} worker(s)"
                );
            }
        }
    }
    let (sum, counters, snap) = first.expect("TIMING_SAMPLES >= 1");
    (median(walls), sum, counters, snap)
}

/// Times `work` on both legs — serial context, then a `workers`-wide
/// context — each as the median of [`TIMING_SAMPLES`] repetitions, and
/// returns both wall times, the shared (checksum, counters), and the
/// parallel leg's observability snapshot (rooted at a span named
/// `phase`, so merged bench snapshots attribute by phase).
fn run_pair<F>(
    workers: usize,
    phase: &'static str,
    mut work: F,
) -> (f64, f64, String, Vec<(&'static str, u64)>, ObsSnapshot)
where
    F: FnMut(&SolverContext) -> String,
{
    let (wall_serial, serial_sum, serial_counters, _) = time_leg(1, phase, &mut work);
    let (wall_parallel, par_sum, par_counters, par_obs) = time_leg(workers, phase, &mut work);

    assert_eq!(
        serial_sum, par_sum,
        "parallel run diverged from the serial path"
    );
    assert_eq!(
        serial_counters, par_counters,
        "parallel counters diverged from the serial path"
    );
    (wall_serial, wall_parallel, par_sum, par_counters, par_obs)
}

fn all_pairs_phase(cfg: ExpConfig, workers: usize) -> (PhaseReport, ObsSnapshot) {
    let n = if cfg.full { 700 } else { 350 };
    let (g, cost) = seeded_graph(n, 4, cfg.seed.wrapping_add(11));
    let (wall_serial, wall_parallel, checksum, counters, obs) =
        run_pair(workers, "all_pairs", |ctx| {
            let rows = shortest::all_pairs_with_context(&g, &cost, ctx);
            checksum_slice(rows.iter().flatten().copied())
        });
    (
        PhaseReport {
            name: "all_pairs".into(),
            wall_ms_serial: wall_serial,
            wall_ms_parallel: wall_parallel,
            speedup: wall_serial / wall_parallel.max(1e-9),
            checksum,
            counters,
        },
        obs,
    )
}

fn column_generation_phase(cfg: ExpConfig, workers: usize) -> (PhaseReport, ObsSnapshot) {
    let n = if cfg.full { 120 } else { 60 };
    let n_comm = if cfg.full { 60 } else { 30 };
    let (g, cost) = seeded_graph(n, 3, cfg.seed.wrapping_add(23));
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(37));
    let commodities: Vec<Commodity> = (0..n_comm)
        .map(|_| {
            let source = rng.gen_range(0..n);
            let mut dest = rng.gen_range(0..n);
            if dest == source {
                dest = (dest + 1) % n;
            }
            Commodity {
                source: NodeId::new(source),
                dest: NodeId::new(dest),
                demand: rng.gen_range(0.5..2.0),
            }
        })
        .collect();
    let total_demand: f64 = commodities.iter().map(|c| c.demand).sum();
    // Tight-but-feasible capacities: the ring carries everything if needed,
    // chords are scarce so the master has to split and re-price.
    let cap: Vec<f64> = (0..g.edge_count())
        .map(|e| {
            if e < n {
                total_demand
            } else {
                total_demand * 0.05
            }
        })
        .collect();
    let (wall_serial, wall_parallel, checksum, counters, obs) =
        run_pair(workers, "column_generation", |ctx| {
            let sol = min_cost_multicommodity_with_context(&g, &cost, &cap, &commodities, ctx)
                .expect("the ring guarantees feasibility");
            let mut h = Checksum::new();
            h.push(sol.cost);
            for flows in &sol.path_flows {
                for pf in flows {
                    h.push(pf.amount);
                    h.push(pf.path.len() as f64);
                }
            }
            h.hex()
        });
    (
        PhaseReport {
            name: "column_generation".into(),
            wall_ms_serial: wall_serial,
            wall_ms_parallel: wall_parallel,
            speedup: wall_serial / wall_parallel.max(1e-9),
            checksum,
            counters,
        },
        obs,
    )
}

fn monte_carlo_phase(cfg: ExpConfig, workers: usize) -> (PhaseReport, ObsSnapshot) {
    let mut sc = Scenario::chunk_default();
    sc.seed = sc.seed.wrapping_add(cfg.seed);
    sc.share_seed = sc.share_seed.wrapping_add(cfg.seed);
    sc.n_videos = 6;
    let runs = if cfg.full { 8 } else { 4 };
    let algos: Vec<Algo> = vec![
        Algo {
            name: "SP".into(),
            run: Box::new(|inst, ctx| ShortestPathPlacement.solve_with_context(inst, ctx)),
        },
        Algo {
            name: "SP+RNR".into(),
            run: Box::new(|inst, ctx| IoannidisYeh::sp_rnr().solve_with_context(inst, ctx)),
        },
    ];

    let eval_cfg = ExpConfig {
        runs,
        hours: 1,
        ..cfg
    };
    // `run_pair` hands each leg its own context, so the sweep fans out on
    // that context's pool and its counters/checksum are compared between
    // the serial and parallel legs like every other phase.
    let (wall_serial, wall_parallel, checksum, counters, obs) =
        run_pair(workers, "monte_carlo", |ctx| {
            let metrics = evaluate_in(ctx, &sc, &algos, eval_cfg, &default_factory);
            checksum_slice(metrics.iter().flat_map(|m| {
                [
                    m.cost_true,
                    m.congestion_true,
                    m.occupancy_true,
                    m.cost_pred,
                    m.congestion_pred,
                    m.occupancy_pred,
                ]
            }))
        });
    (
        PhaseReport {
            name: "monte_carlo".into(),
            wall_ms_serial: wall_serial,
            wall_ms_parallel: wall_parallel,
            speedup: wall_serial / wall_parallel.max(1e-9),
            checksum,
            counters,
        },
        obs,
    )
}

/// Stress-scale inputs: a [`TopologyKind::Stress`] network (1000 nodes,
/// 20k directed edges) and a Zipf catalog far beyond the paper's Table 1
/// (10⁵ chunks in full mode), kept sparse end to end — requests come from
/// the head of the Zipf distribution
/// ([`zipf_demand_sparse`](jcr_trace::zipf::zipf_demand_sparse)) and
/// distances from the on-demand oracle, so no |V|² matrix is allocated.
struct StressInputs {
    inst: Instance,
    edge_nodes: Vec<NodeId>,
    /// Per-edge-node cache budget, in items.
    zeta: usize,
}

fn stress_inputs(cfg: ExpConfig) -> StressInputs {
    let (n_items, active_items) = if cfg.full {
        (100_000, 512)
    } else {
        (100_000, 128)
    };
    let topo =
        jcr_topo::Topology::generate(jcr_topo::TopologyKind::Stress, cfg.seed.wrapping_add(5))
            .expect("stress family generates");
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(41));
    let triples = jcr_trace::zipf::zipf_demand_sparse(
        n_items,
        topo.edge_nodes.len(),
        0.8,
        4_000.0,
        active_items,
        4,
        &mut rng,
    );
    let requests: Vec<Request> = triples
        .iter()
        .map(|&(item, s, rate)| Request {
            item,
            node: topo.edge_nodes[s],
            rate,
        })
        .collect();
    // Smaller than the per-edge-node active-item count in either mode, so
    // placement never covers all demand locally and the evaluation loop
    // routes through real distances.
    let zeta = 4;
    let mut cache_cap = vec![0.0; topo.graph.node_count()];
    for &v in &topo.edge_nodes {
        cache_cap[v.index()] = zeta as f64;
    }
    let edge_count = topo.graph.edge_count();
    let edge_nodes = topo.edge_nodes.clone();
    let inst = Instance::new(
        topo.graph,
        topo.cost,
        vec![f64::INFINITY; edge_count],
        cache_cap,
        vec![1.0; n_items],
        requests,
        Some(topo.origin),
    )
    .expect("stress instance is valid")
    // Never a |V|² block at this scale, regardless of the environment.
    .with_oracle_dense_max(0);
    StressInputs {
        inst,
        edge_nodes,
        zeta,
    }
}

fn stress_phase(cfg: ExpConfig, workers: usize) -> (PhaseReport, ObsSnapshot) {
    let StressInputs {
        inst,
        edge_nodes,
        zeta,
    } = stress_inputs(cfg);
    let origin = inst.origin.expect("stress topology has an origin");
    let (wall_serial, wall_parallel, checksum, counters, obs) =
        run_pair(workers, "stress", |ctx| {
            // A fresh oracle per leg, so both legs pay the same cold-cache cost.
            let oracle = jcr_graph::DistanceOracle::with_config(
                &inst.graph,
                &inst.link_cost,
                0,
                jcr_graph::oracle::default_row_capacity().max(edge_nodes.len() + 1),
                Some(ctx),
            );
            assert!(!oracle.is_dense(), "stress phase must stay on-demand");
            // One row per requester plus the origin, primed in parallel.
            let mut sources = edge_nodes.clone();
            sources.push(origin);
            oracle.prime_rows_with_context(&sources, ctx);

            // Greedy placement: each edge node caches the top-ζ items of its
            // own demand (rate order, item-index tie-break) — serial and
            // deterministic, and it exercises the flat placement bitset at
            // a 10⁵-item catalog width.
            let mut placement = Placement::empty(&inst);
            let mut local: Vec<(usize, f64)> = Vec::new();
            for &v in &edge_nodes {
                local.clear();
                local.extend(
                    inst.requests
                        .iter()
                        .filter(|r| r.node == v)
                        .map(|r| (r.item, r.rate)),
                );
                local.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                for &(item, _) in local.iter().take(zeta) {
                    placement.set(v, item, true);
                }
            }

            // Route-to-nearest-replica cost over 64 fixed request ranges:
            // each range walks its requests through cached row handles and
            // sums rate × nearest-replica distance; partials merge in range
            // order, so the checksum is bit-identical at any width.
            let n_req = inst.requests.len();
            let ranges: Vec<(usize, usize)> = (0..64)
                .map(|k| (k * n_req / 64, (k + 1) * n_req / 64))
                .collect();
            let _route = ctx.span("stress.route_cost");
            let partials = jcr_ctx::par::par_map(ctx, &ranges, |_wctx, _, &(lo, hi)| {
                let mut sum = 0.0;
                for r in &inst.requests[lo..hi] {
                    let row = oracle.row(r.node);
                    let mut best = row.dist(origin);
                    for &v in &edge_nodes {
                        if placement.has(v, r.item) {
                            let d = row.dist(v);
                            if d < best {
                                best = d;
                            }
                        }
                    }
                    sum += r.rate * best;
                }
                sum
            });
            let mut h = Checksum::new();
            for &p in &partials {
                h.push(p);
            }
            h.push(placement.len() as f64);
            h.hex()
        });
    (
        PhaseReport {
            name: "stress".into(),
            wall_ms_serial: wall_serial,
            wall_ms_parallel: wall_parallel,
            speedup: wall_serial / wall_parallel.max(1e-9),
            checksum,
            counters,
        },
        obs,
    )
}

/// The warm-start LP family: a seeded covering LP `min c·x` over
/// `[0, 5]`-bounded variables with `m` rows `Σ a_j x_j ≥ b`. The objective
/// is `c_j · (1 + obj_shift · δ_j)` with per-variable seeded `δ_j`, so
/// `obj_shift = 0` is the base hour and a small positive shift is the
/// "next hour" of the online loop: same constraints, drifted prices.
fn warm_lp(n: usize, m: usize, seed: u64, obj_shift: f64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|_| {
            let c = rng.gen_range(1.0..10.0);
            let delta = rng.gen_range(0.0..1.0);
            model.add_var(0.0, 5.0, c * (1.0 + obj_shift * delta))
        })
        .collect();
    for _ in 0..m {
        let entries: Vec<_> = (0..6)
            .map(|_| (vars[rng.gen_range(0..n)], rng.gen_range(0.5..2.0)))
            .collect();
        let rhs = rng.gen_range(3.0..9.0);
        model.add_row(rhs, f64::INFINITY, &entries);
    }
    model
}

/// Seeded candidate columns for the CG-style leg of [`lp_warm_phase`]:
/// cheap columns covering several rows, attractive enough that the master
/// re-solve has real pivoting to do.
fn warm_lp_columns(n_cols: usize, m: usize, seed: u64) -> Vec<(f64, Vec<(usize, f64)>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_cols)
        .map(|_| {
            let obj = rng.gen_range(0.2..1.0);
            let entries: Vec<_> = (0..8)
                .map(|_| (rng.gen_range(0..m), rng.gen_range(0.5..2.0)))
                .collect();
            (obj, entries)
        })
        .collect()
}

/// The `lp_warm` phase: measures the warm-start machinery the simplex
/// exposes ([`jcr_lp::ModelSolver::solve_from_basis`] and the retained
/// solver's column-generation re-solve) against cold solves of the same
/// models, counting [`Counter::SimplexPivots`] for each leg. The phase
/// *asserts* the headline claim — warm re-solves take at most half the
/// cold pivots — so the bench gate fails loudly if warm starting ever
/// regresses to cold-solve behavior, and records all four pivot counts
/// in the checksum so the baseline pins them exactly.
fn lp_warm_phase(cfg: ExpConfig, workers: usize) -> (PhaseReport, ObsSnapshot) {
    let (n, m) = if cfg.full { (160, 80) } else { (80, 40) };
    let n_cg_cols = 8;
    let seed = cfg.seed.wrapping_add(53);
    let (wall_serial, wall_parallel, checksum, counters, obs) =
        run_pair(workers, "lp_warm", |ctx| {
            let pivots = |ctx: &SolverContext| ctx.stats().counter(Counter::SimplexPivots);

            // Online-hour leg: solve the base hour, snapshot the basis, then
            // solve the drifted-objective "next hour" cold vs warm.
            let mut base = warm_lp(n, m, seed, 0.0).into_solver();
            let base_sol = base
                .solve_with_context(ctx)
                .expect("warm bench base LP is feasible");
            let basis = base.basis().expect("solved LP exposes a basis");

            let mark = pivots(ctx);
            let cold_next = warm_lp(n, m, seed, 0.03)
                .into_solver()
                .solve_with_context(ctx)
                .expect("drifted LP is feasible");
            let cold_hour_pivots = pivots(ctx) - mark;

            let mark = pivots(ctx);
            let warm_next = warm_lp(n, m, seed, 0.03)
                .into_solver()
                .solve_from_basis(&basis, ctx)
                .expect("warm solve of the drifted LP succeeds");
            let warm_hour_pivots = pivots(ctx) - mark;

            assert!(
                (warm_next.objective - cold_next.objective).abs()
                    <= 1e-7 * cold_next.objective.abs().max(1.0),
                "warm and cold solves disagree: {} vs {}",
                warm_next.objective,
                cold_next.objective
            );
            assert!(
                warm_hour_pivots * 2 <= cold_hour_pivots,
                "online warm re-solve took {warm_hour_pivots} pivots, cold took \
             {cold_hour_pivots}: warm starting must at least halve the work"
            );

            // CG-master leg: the retained solver re-solves after a batch of
            // added columns vs a cold solve of the final (extended) model.
            let columns = warm_lp_columns(n_cg_cols, m, seed.wrapping_add(7));
            let mut master = warm_lp(n, m, seed, 0.0).into_solver();
            master
                .solve_with_context(ctx)
                .expect("CG master base LP is feasible");
            let mark = pivots(ctx);
            for (obj, entries) in &columns {
                let entries: Vec<_> = entries
                    .iter()
                    .map(|&(r, a)| (jcr_lp::ConId::from_index(r), a))
                    .collect();
                master.add_column(0.0, 5.0, *obj, &entries);
            }
            let warm_cg = master
                .solve_with_context(ctx)
                .expect("CG master re-solve succeeds");
            let warm_cg_pivots = pivots(ctx) - mark;

            let mut extended = warm_lp(n, m, seed, 0.0);
            for (obj, entries) in &columns {
                let entries: Vec<_> = entries
                    .iter()
                    .map(|&(r, a)| (jcr_lp::ConId::from_index(r), a))
                    .collect();
                extended.add_var_with_column(0.0, 5.0, *obj, &entries);
            }
            let mark = pivots(ctx);
            let cold_cg = extended
                .into_solver()
                .solve_with_context(ctx)
                .expect("extended LP is feasible");
            let cold_cg_pivots = pivots(ctx) - mark;

            assert!(
                (warm_cg.objective - cold_cg.objective).abs()
                    <= 1e-7 * cold_cg.objective.abs().max(1.0),
                "CG warm and cold solves disagree: {} vs {}",
                warm_cg.objective,
                cold_cg.objective
            );
            assert!(
                warm_cg_pivots * 2 <= cold_cg_pivots,
                "CG master re-solve took {warm_cg_pivots} pivots, cold took \
             {cold_cg_pivots}: warm starting must at least halve the work"
            );

            let mut h = Checksum::new();
            for v in [
                base_sol.objective,
                cold_next.objective,
                warm_next.objective,
                cold_cg.objective,
                warm_cg.objective,
                cold_hour_pivots as f64,
                warm_hour_pivots as f64,
                cold_cg_pivots as f64,
                warm_cg_pivots as f64,
            ] {
                h.push(v);
            }
            h.hex()
        });
    (
        PhaseReport {
            name: "lp_warm".into(),
            wall_ms_serial: wall_serial,
            wall_ms_parallel: wall_parallel,
            speedup: wall_serial / wall_parallel.max(1e-9),
            checksum,
            counters,
        },
        obs,
    )
}

/// Per-hour instances for the `online_warm` phase: one seeded topology
/// whose demand drifts mildly and non-uniformly hour over hour — the
/// steady-state regime the crash-recoverable online loop is built for.
fn online_warm_instance(seed: u64, hour: usize, full: bool) -> Instance {
    let degree = if full { 5 } else { 4 };
    let topo = jcr_topo::Topology::generate(jcr_topo::TopologyKind::Abovenet, degree)
        .expect("known topology generates");
    let n_edges = topo.edge_nodes.len();
    let rates: Vec<Vec<f64>> = (0..6)
        .map(|i| {
            (0..n_edges)
                .map(|k| {
                    let base = 100.0 * (1.0 + ((i * 7 + k * 3 + seed as usize) % 5) as f64);
                    // Mild per-hour drift with a small non-uniform term so
                    // warm hours must genuinely re-optimize, not just
                    // rescale the previous solution.
                    base * (1.0 + 0.02 * hour as f64 + 0.01 * ((k * 31 + hour) % 7) as f64)
                })
                .collect()
        })
        .collect();
    InstanceBuilder::new(topo)
        .items(6)
        .cache_capacity(2.0)
        .demand_matrix(rates)
        .link_capacity_fraction(0.05)
        .build()
        .expect("online_warm instance builds")
}

/// The `online_warm` phase: the hour-over-hour carry chain of the online
/// loop — previous placement as the starting iterate, the last placement
/// LP basis, and the active CG column pool — measured against solving
/// every hour cold, counting [`Counter::SimplexPivots`] for both legs.
/// The phase *asserts* the headline claim — steady-state warm hours cost
/// at most half the cold pivots — so the bench gate fails loudly if the
/// carry chain ever stops paying for itself, and records every per-hour
/// cost and both pivot totals in the checksum.
fn online_warm_phase(cfg: ExpConfig, workers: usize) -> (PhaseReport, ObsSnapshot) {
    let hours = if cfg.full { 6 } else { 4 };
    let seed = cfg.seed.wrapping_add(89);
    let (wall_serial, wall_parallel, checksum, counters, obs) =
        run_pair(workers, "online_warm", |ctx| {
            let pivots = |ctx: &SolverContext| ctx.stats().counter(Counter::SimplexPivots);
            let solver = Alternating::new();
            let mut h = Checksum::new();

            // Cold leg: every hour from scratch (the crash-without-snapshot
            // baseline). Hour 0 is cold in both legs and excluded from the
            // steady-state totals.
            let mut cold_steady = 0u64;
            for hour in 0..hours {
                let inst = online_warm_instance(seed, hour, cfg.full);
                let mark = pivots(ctx);
                let (out, _, _) = solver
                    .solve_from_with_carry(&inst, Placement::empty(&inst), None, &[], ctx)
                    .expect("cold online_warm hour solves");
                if hour > 0 {
                    cold_steady += pivots(ctx) - mark;
                }
                h.push(out.solution.cost(&inst));
            }

            // Warm leg: thread placement, basis, and column pool hour over
            // hour exactly as `OnlineSimulator` commits them.
            let mut warm_steady = 0u64;
            let mut basis: Option<jcr_lp::Basis> = None;
            let mut pool: Vec<(usize, Vec<NodeId>)> = Vec::new();
            let mut prev: Option<Placement> = None;
            for hour in 0..hours {
                let inst = online_warm_instance(seed, hour, cfg.full);
                let initial = prev
                    .filter(|p: &Placement| p.dims_match(&inst) && p.is_feasible(&inst))
                    .unwrap_or_else(|| Placement::empty(&inst));
                let mark = pivots(ctx);
                let (out, b, p) = solver
                    .solve_from_with_carry(&inst, initial, basis.as_ref(), &pool, ctx)
                    .expect("warm online_warm hour solves");
                if hour > 0 {
                    warm_steady += pivots(ctx) - mark;
                }
                basis = b;
                pool = p;
                prev = Some(out.solution.placement.clone());
                h.push(out.solution.cost(&inst));
            }

            assert!(
                warm_steady * 2 <= cold_steady,
                "steady-state warm hours took {warm_steady} pivots, cold took \
             {cold_steady}: the online carry chain must at least halve the work"
            );
            h.push(cold_steady as f64);
            h.push(warm_steady as f64);
            h.hex()
        });
    (
        PhaseReport {
            name: "online_warm".into(),
            wall_ms_serial: wall_serial,
            wall_ms_parallel: wall_parallel,
            speedup: wall_serial / wall_parallel.max(1e-9),
            checksum,
            counters,
        },
        obs,
    )
}

/// Entry point of `experiments stress`: the stress phase alone, printed
/// as a one-phase report — the quick way to exercise the beyond-paper
/// scale (and its on-demand oracle) without the full bench suite.
pub fn stress(cfg: ExpConfig) {
    let workers = parallel_width(cfg);
    eprintln!("[stress] pool width: {workers} worker(s)");
    let (phase, _obs) = stress_phase(cfg, workers);
    let report = BenchReport {
        workers,
        phases: vec![phase],
    };
    report.print();
}

/// Runs every bench phase at the configured width, returning the report
/// plus the merged observability snapshot (one top-level span per phase,
/// recorded on the parallel leg's first repetition).
pub fn run(cfg: ExpConfig) -> (BenchReport, ObsSnapshot) {
    let workers = parallel_width(cfg);
    eprintln!("[bench] pool width: {workers} worker(s)");
    // The collector context never opens a span, so each absorbed phase
    // snapshot grafts at its root and the merged document reads as a
    // forest of phase trees.
    let collector = SolverContext::new();
    type PhaseFn = fn(ExpConfig, usize) -> (PhaseReport, ObsSnapshot);
    let phase_fns: [PhaseFn; 6] = [
        all_pairs_phase,
        column_generation_phase,
        lp_warm_phase,
        online_warm_phase,
        monte_carlo_phase,
        stress_phase,
    ];
    let mut phases = Vec::with_capacity(phase_fns.len());
    for phase_fn in phase_fns {
        let (phase, obs) = phase_fn(cfg, workers);
        collector.absorb_obs(&obs);
        phases.push(phase);
    }
    (BenchReport { workers, phases }, collector.obs_snapshot())
}

impl BenchReport {
    /// Serializes the report as the `BENCH.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Num(1.0)),
            ("workers", Json::Num(self.workers as f64)),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("name", Json::Str(p.name.clone())),
                                ("wall_ms_serial", Json::Num(p.wall_ms_serial)),
                                ("wall_ms_parallel", Json::Num(p.wall_ms_parallel)),
                                ("speedup", Json::Num(p.speedup)),
                                ("checksum", Json::Str(p.checksum.clone())),
                                (
                                    "counters",
                                    Json::Obj(
                                        p.counters
                                            .iter()
                                            .map(|&(name, v)| {
                                                (name.to_string(), Json::Num(v as f64))
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Prints the human-readable summary table.
    pub fn print(&self) {
        crate::print_table(
            &format!("Bench — fixed seeds, {} worker(s)", self.workers),
            &[
                "phase".into(),
                "serial (ms)".into(),
                "parallel (ms)".into(),
                "speedup".into(),
                "checksum".into(),
            ],
            &self
                .phases
                .iter()
                .map(|p| {
                    vec![
                        p.name.clone(),
                        format!("{:.2}", p.wall_ms_serial),
                        format!("{:.2}", p.wall_ms_parallel),
                        format!("{:.2}x", p.speedup),
                        p.checksum.clone(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
}

/// Compares a fresh report against a parsed baseline document.
///
/// Deterministic fields (checksums, counters) must match exactly; wall
/// times may drift up to `tolerance` (relative) before failing. Returns
/// the list of violations (empty = gate passes); purely-faster drifts are
/// reported on stdout but never fail.
pub fn compare(report: &BenchReport, baseline: &Json, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    // A baseline whose parallel legs ran serially is meaningless as a
    // speedup reference — refuse it rather than silently comparing
    // against a serial run recorded as "parallel".
    let base_workers = baseline
        .get("workers")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if base_workers <= 1.0 {
        violations.push(format!(
            "baseline records workers = {base_workers}: its parallel legs ran serially; \
             re-record it with an explicit --workers > 1"
        ));
    }
    let Some(base_phases) = baseline.get("phases").and_then(Json::as_arr) else {
        violations.push("baseline has no phases array".into());
        return violations;
    };
    for phase in &report.phases {
        let Some(base) = base_phases
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some(&phase.name))
        else {
            violations.push(format!("phase {:?} missing from baseline", phase.name));
            continue;
        };
        if let Some(sum) = base.get("checksum").and_then(Json::as_str) {
            if sum != phase.checksum {
                violations.push(format!(
                    "phase {:?}: checksum {} != baseline {} (deterministic regression)",
                    phase.name, phase.checksum, sum
                ));
            }
        }
        if let Some(Json::Obj(base_counters)) = base.get("counters") {
            for &(name, value) in &phase.counters {
                match base_counters.get(name).and_then(Json::as_f64) {
                    Some(expected) if expected != value as f64 => violations.push(format!(
                        "phase {:?}: counter {name} = {value} != baseline {expected} \
                         (deterministic regression)",
                        phase.name
                    )),
                    Some(_) => {}
                    // A counter this run produced that the baseline never
                    // recorded is the same silent-coverage problem as a
                    // missing phase: the baseline predates the counter and
                    // must be re-recorded to keep gating it.
                    None if value != 0 => violations.push(format!(
                        "phase {:?}: counter {name} = {value} has no baseline entry \
                         (re-record the baseline to gate it)",
                        phase.name
                    )),
                    None => {}
                }
            }
            // And the reverse: a counter the baseline gates that this run
            // no longer reports means the instrumentation was dropped.
            for name in base_counters.keys() {
                if !phase.counters.iter().any(|&(n, _)| n == name) {
                    violations.push(format!(
                        "phase {:?}: counter {name} is recorded in the baseline but missing \
                         from this run (dropped instrumentation must re-record the baseline)",
                        phase.name
                    ));
                }
            }
        }
        for (key, fresh) in [
            ("wall_ms_serial", phase.wall_ms_serial),
            ("wall_ms_parallel", phase.wall_ms_parallel),
        ] {
            let Some(expected) = base.get(key).and_then(Json::as_f64) else {
                continue;
            };
            if fresh > expected * (1.0 + tolerance) {
                violations.push(format!(
                    "phase {:?}: {key} {fresh:.2}ms exceeds baseline {expected:.2}ms by more \
                     than {:.0}%",
                    phase.name,
                    tolerance * 100.0
                ));
            } else if fresh < expected / (1.0 + tolerance) {
                println!(
                    "[bench] phase {:?}: {key} improved {expected:.2}ms -> {fresh:.2}ms",
                    phase.name
                );
            }
        }
    }
    // The reverse direction is just as much a regression: a phase the
    // baseline records but this run never produced means coverage was
    // silently dropped (deleted phase, renamed phase, harness bug), and
    // skipping it would let the gate pass while measuring less. Fail by
    // name instead.
    for base in base_phases {
        let Some(name) = base.get("name").and_then(Json::as_str) else {
            violations.push("baseline has a phase with no name".into());
            continue;
        };
        if !report.phases.iter().any(|p| p.name == name) {
            violations.push(format!(
                "phase {name:?} is recorded in the baseline but missing from this run \
                 (removed or renamed phases must re-record the baseline)"
            ));
        }
    }
    violations
}

/// Signed relative drift of `fresh` against `base`, as a `+4.2%` string.
fn delta_pct(fresh: f64, base: Option<f64>) -> String {
    match base {
        Some(b) if b > 0.0 => format!("{:+.1}%", (fresh - b) / b * 100.0),
        _ => "—".into(),
    }
}

/// A named counter of a phase report (0 when the phase never counted it).
fn phase_counter(phase: &PhaseReport, name: &str) -> u64 {
    phase
        .counters
        .iter()
        .find(|&&(n, _)| n == name)
        .map_or(0, |&(_, v)| v)
}

/// Renders the gate outcome as the markdown block the CI bench job
/// appends to `$GITHUB_STEP_SUMMARY`: one row per phase with its wall
/// drift against the baseline, whether the checksum matched, and the
/// deterministic pivot/refactorization counts, followed by the verdict
/// (and every violation, when the gate failed).
pub fn step_summary_markdown(
    report: &BenchReport,
    baseline: Option<&Json>,
    violations: &[String],
) -> String {
    let base_phases = baseline
        .and_then(|b| b.get("phases"))
        .and_then(Json::as_arr);
    let base_of = |name: &str| {
        base_phases?
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some(name))
    };
    let mut md = String::from("### Bench gate\n\n");
    md.push_str(&format!("Pool width: {} worker(s)\n\n", report.workers));
    md.push_str(
        "| phase | serial Δ | parallel Δ | checksum | simplex pivots | refactorizations |\n",
    );
    md.push_str("|---|---|---|---|---|---|\n");
    for phase in &report.phases {
        let base = base_of(&phase.name);
        let wall = |key: &str| base.and_then(|b| b.get(key)).and_then(Json::as_f64);
        let checksum = match base.and_then(|b| b.get("checksum")).and_then(Json::as_str) {
            None => "—",
            Some(sum) if sum == phase.checksum => "match ✅",
            Some(_) => "MISMATCH ❌",
        };
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            phase.name,
            delta_pct(phase.wall_ms_serial, wall("wall_ms_serial")),
            delta_pct(phase.wall_ms_parallel, wall("wall_ms_parallel")),
            checksum,
            phase_counter(phase, "simplex pivots"),
            phase_counter(phase, "refactorizations"),
        ));
    }
    md.push('\n');
    if violations.is_empty() {
        md.push_str("**Gate passed.**\n");
    } else {
        md.push_str(&format!(
            "**Gate FAILED ({} violations):**\n\n",
            violations.len()
        ));
        for v in violations {
            md.push_str(&format!("- {v}\n"));
        }
    }
    md
}

/// Appends `md` to the file `$GITHUB_STEP_SUMMARY` points at, if set —
/// the GitHub Actions job-summary contract (append, never truncate).
/// Outside Actions this is a no-op.
fn write_step_summary(md: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = f.write_all(md.as_bytes()) {
                eprintln!("[bench] writing step summary {path}: {e}");
            }
        }
        Err(e) => eprintln!("[bench] opening step summary {path}: {e}"),
    }
}

/// The obs artifact path derived from a `BENCH*.json` path: the filename
/// has `BENCH` renamed to `OBS` (`BENCH_PR.json` → `OBS_PR.json`), or an
/// `OBS_` prefix when the filename never says `BENCH`.
fn obs_sibling_path(out: &str) -> String {
    let path = std::path::Path::new(out);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("BENCH.json");
    let obs_name = if name.contains("BENCH") {
        name.replacen("BENCH", "OBS", 1)
    } else {
        format!("OBS_{name}")
    };
    path.with_file_name(obs_name).to_string_lossy().into_owned()
}

/// Renders the merged obs snapshot in the canonical wire format, stamped
/// with the artifact kind and pool width (so `diff --workers-compare`
/// can report per-width efficiency without re-deriving it).
fn obs_document(obs: &ObsSnapshot, workers: usize) -> String {
    let mut wire = WireSnapshot::from_snapshot(obs);
    wire.meta.insert("kind".into(), "jcr-bench-obs".into());
    wire.meta.insert("workers".into(), workers.to_string());
    wire.render()
}

/// When the gate tripped on a wall-clock regression and an obs baseline
/// is on disk, renders the span-level attribution table (baseline → this
/// run, top 10 by |Δself|) so the step summary names the guilty span
/// instead of just the guilty phase. Attribution is best-effort: any
/// problem reading or diffing the baseline is reported, never fatal —
/// the gate verdict already stands on the bench compare alone.
fn regression_attribution_markdown(obs: &ObsSnapshot, workers: usize, base_path: &str) -> String {
    let fresh = match WireSnapshot::parse(&obs_document(obs, workers)) {
        Ok(w) => w,
        Err(e) => return format!("\n(span attribution unavailable: {e})\n"),
    };
    let base = match crate::diff::load(base_path) {
        Ok(w) => w,
        Err(e) => return format!("\n(span attribution unavailable: {e})\n"),
    };
    match crate::diff::diff_snapshots(&base, &fresh, None) {
        Ok(report) => format!(
            "\n### Span attribution ({base_path} → this run)\n\n{}",
            report.markdown_table(10)
        ),
        Err(e) => format!("\n(span attribution unavailable: {e})\n"),
    }
}

/// Entry point of `experiments bench`: run, print, optionally write the
/// JSON + obs artifacts, optionally gate against a baseline.
///
/// # Errors
///
/// A description of the gate violations or an I/O problem; callers exit
/// nonzero on `Err`.
pub fn bench(cfg: ExpConfig, opts: &BenchOpts) -> Result<(), String> {
    let (report, obs) = run(cfg);
    report.print();
    if let Some(path) = &opts.out {
        std::fs::write(path, report.to_json().render())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("[bench] wrote {path}");
    }
    let obs_path = opts
        .obs_out
        .clone()
        .or_else(|| opts.out.as_deref().map(obs_sibling_path));
    if let Some(path) = &obs_path {
        std::fs::write(path, obs_document(&obs, report.workers))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("[bench] wrote {path}");
    }
    if let Some(path) = &opts.baseline {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline = Json::parse(&text).map_err(|e| format!("parsing baseline {path}: {e}"))?;
        let violations = compare(&report, &baseline, opts.tolerance);
        // The summary is written pass or fail — the failing run is the
        // one whose table someone actually reads.
        let mut md = step_summary_markdown(&report, Some(&baseline), &violations);
        let wall_regressed = violations.iter().any(|v| v.contains("exceeds baseline"));
        if wall_regressed {
            if let Some(base_obs) = &opts.obs_baseline {
                md.push_str(&regression_attribution_markdown(
                    &obs,
                    report.workers,
                    base_obs,
                ));
            }
        }
        write_step_summary(&md);
        if !violations.is_empty() {
            return Err(format!("bench gate failed:\n  {}", violations.join("\n  ")));
        }
        eprintln!("[bench] gate passed against {path}");
    } else {
        write_step_summary(&step_summary_markdown(&report, None, &[]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            workers: 2,
            phases: vec![PhaseReport {
                name: "all_pairs".into(),
                wall_ms_serial: 10.0,
                wall_ms_parallel: 5.0,
                speedup: 2.0,
                checksum: "00ff".into(),
                counters: vec![("dijkstra_calls", 7)],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny_report();
        let doc = Json::parse(&report.to_json().render()).unwrap();
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("all_pairs"));
        assert_eq!(phases[0].get("checksum").unwrap().as_str(), Some("00ff"));
        assert_eq!(
            phases[0]
                .get("counters")
                .unwrap()
                .get("dijkstra_calls")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn compare_passes_against_identical_baseline() {
        let report = tiny_report();
        let baseline = Json::parse(&report.to_json().render()).unwrap();
        assert!(compare(&report, &baseline, 0.25).is_empty());
    }

    #[test]
    fn compare_flags_checksum_counter_and_wall_regressions() {
        let report = tiny_report();
        let baseline = Json::parse(&report.to_json().render()).unwrap();

        let mut worse = report.clone();
        worse.phases[0].checksum = "beef".into();
        worse.phases[0].counters[0].1 = 8;
        worse.phases[0].wall_ms_parallel = 7.0; // 5.0 * 1.25 = 6.25 < 7.0
        let violations = compare(&worse, &baseline, 0.25);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations[0].contains("checksum"));
        assert!(violations[1].contains("dijkstra_calls"));
        assert!(violations[2].contains("wall_ms_parallel"));

        // Inside the band: no violation.
        let mut ok = report.clone();
        ok.phases[0].wall_ms_parallel = 6.0;
        assert!(compare(&ok, &baseline, 0.25).is_empty());
    }

    #[test]
    fn compare_refuses_a_serially_recorded_baseline() {
        let report = tiny_report();
        let mut serial = report.clone();
        serial.workers = 1;
        let baseline = Json::parse(&serial.to_json().render()).unwrap();
        let violations = compare(&report, &baseline, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("workers"), "{violations:?}");

        // Missing `workers` is treated the same as serial.
        let baseline = Json::parse(r#"{"schema": 1, "phases": []}"#).unwrap();
        let violations = compare(&report, &baseline, 0.25);
        assert!(
            violations.iter().any(|v| v.contains("workers")),
            "{violations:?}"
        );
    }

    #[test]
    fn compare_fails_hard_when_run_drops_a_baseline_phase() {
        // A baseline with two phases, a run with only the first: the
        // dropped phase must be a named violation, not a silent skip.
        let mut two_phase = tiny_report();
        two_phase.phases.push(PhaseReport {
            name: "lp_warm".into(),
            wall_ms_serial: 4.0,
            wall_ms_parallel: 2.0,
            speedup: 2.0,
            checksum: "aa11".into(),
            counters: vec![("simplex pivots", 100)],
        });
        let baseline = Json::parse(&two_phase.to_json().render()).unwrap();
        let violations = compare(&tiny_report(), &baseline, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("lp_warm") && violations[0].contains("missing from this run"),
            "{violations:?}"
        );
    }

    #[test]
    fn step_summary_reports_drift_checksums_and_counts() {
        let mut report = tiny_report();
        report.phases[0].counters = vec![("simplex pivots", 85), ("refactorizations", 3)];
        let baseline = Json::parse(&report.to_json().render()).unwrap();

        // Against its own baseline: zero drift, matching checksum, pass.
        let md = step_summary_markdown(&report, Some(&baseline), &[]);
        assert!(
            md.contains("| all_pairs | +0.0% | +0.0% | match ✅ | 85 | 3 |"),
            "{md}"
        );
        assert!(md.contains("Gate passed"), "{md}");

        // Drifted walls, broken checksum, violations listed.
        let mut worse = report.clone();
        worse.phases[0].wall_ms_serial = 12.0; // 10 → 12 = +20%
        worse.phases[0].checksum = "beef".into();
        let violations = vec!["phase \"all_pairs\": checksum beef != baseline 00ff".into()];
        let md = step_summary_markdown(&worse, Some(&baseline), &violations);
        assert!(md.contains("+20.0%"), "{md}");
        assert!(md.contains("MISMATCH ❌"), "{md}");
        assert!(md.contains("Gate FAILED (1 violations)"), "{md}");
        assert!(md.contains("- phase \"all_pairs\": checksum"), "{md}");

        // No baseline: drift and checksum columns degrade to em-dashes.
        let md = step_summary_markdown(&report, None, &[]);
        assert!(md.contains("| all_pairs | — | — | — | 85 | 3 |"), "{md}");
    }

    #[test]
    fn lp_warm_phase_halves_pivots_and_is_deterministic() {
        // The 2× assertions live inside the phase; surviving two runs at
        // different widths with equal checksums is the determinism half.
        let cfg = ExpConfig {
            runs: 1,
            hours: 1,
            ..ExpConfig::default()
        };
        let (a, _) = lp_warm_phase(cfg, 2);
        let (b, _) = lp_warm_phase(cfg, 4);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.counters, b.counters);
        assert!(phase_counter(&a, "simplex pivots") > 0);
    }

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        let a = checksum_slice([1.0, 2.0]);
        let b = checksum_slice([2.0, 1.0]);
        assert_ne!(a, b);
        assert_eq!(a, checksum_slice([1.0, 2.0]));
        // Distinguishes bit patterns ordinary equality confuses.
        assert_ne!(checksum_slice([0.0]), checksum_slice([-0.0]));
    }

    #[test]
    fn bench_phases_are_deterministic_across_invocations() {
        let cfg = ExpConfig {
            runs: 1,
            hours: 1,
            ..ExpConfig::default()
        };
        let (a, obs) = all_pairs_phase(cfg, 2);
        let (b, _) = all_pairs_phase(cfg, 4);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.counters, b.counters);
        // The phase snapshot's root child is the phase span itself, so
        // the obs artifact attributes the whole leg to a named span.
        assert_eq!(obs.nodes[0].children.len(), 1);
        assert_eq!(obs.nodes[obs.nodes[0].children[0]].name, "all_pairs");
    }

    #[test]
    fn obs_sibling_path_renames_bench_to_obs() {
        assert_eq!(obs_sibling_path("BENCH_PR.json"), "OBS_PR.json");
        assert_eq!(obs_sibling_path("out/BENCH.json"), "out/OBS.json");
        assert_eq!(obs_sibling_path("report.json"), "OBS_report.json");
    }

    #[test]
    fn compare_flags_missing_counters_in_both_directions() {
        let report = tiny_report();
        let baseline = Json::parse(&report.to_json().render()).unwrap();

        // Run gains a counter the baseline never recorded.
        let mut more = report.clone();
        more.phases[0].counters.push(("simplex pivots", 12));
        let violations = compare(&more, &baseline, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("simplex pivots") && violations[0].contains("no baseline"),
            "{violations:?}"
        );

        // Run drops a counter the baseline gates.
        let mut less = report.clone();
        less.phases[0].counters.clear();
        let violations = compare(&less, &baseline, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("dijkstra_calls")
                && violations[0].contains("missing from this run"),
            "{violations:?}"
        );

        // A new always-zero counter is not a violation (nothing to gate).
        let mut zero = report.clone();
        zero.phases[0].counters.push(("simplex pivots", 0));
        assert!(compare(&zero, &baseline, 0.25).is_empty());
    }
}
