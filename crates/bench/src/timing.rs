//! A minimal wall-clock timing harness for the `benches/` binaries
//! (`harness = false`), replacing the external criterion dependency so
//! the workspace builds with zero network access. Reported numbers are
//! mean/min/max over a fixed sample count — adequate for the paper's
//! coarse "execution time" tables (Tables 3–4), not for micro-benchmark
//! statistics.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of timed functions, printed as one table.
pub struct BenchGroup {
    name: String,
    samples: usize,
    printed_header: bool,
}

/// Starts a timing group with the default sample count (20).
pub fn group(name: &str) -> BenchGroup {
    BenchGroup {
        name: name.to_string(),
        samples: 20,
        printed_header: false,
    }
}

/// One benchmark's aggregate timings.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Mean wall time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl BenchGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f` and prints one table row; the closure's result is passed
    /// through `black_box` so the work is not optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, id: &str, mut f: F) -> Timing {
        if !self.printed_header {
            println!("== {} ==", self.name);
            self.printed_header = true;
        }
        black_box(f()); // warm-up, untimed
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        let timing = Timing {
            mean: total / self.samples as u32,
            min,
            max,
        };
        println!(
            "  {:<28} mean {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms   ({} samples)",
            id,
            timing.mean.as_secs_f64() * 1e3,
            timing.min.as_secs_f64() * 1e3,
            timing.max.as_secs_f64() * 1e3,
            self.samples
        );
        timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_reports_ordered_statistics() {
        let mut g = group("test");
        let t = g.sample_size(3).bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(t.min <= t.mean && t.mean <= t.max);
    }
}
