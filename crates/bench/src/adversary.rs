//! Adversarial instance fuzzer (`experiments adversary`): seeded hostile
//! instance families aimed at the solver stack's numerical weak points,
//! run end to end against every solver entry point with the independent
//! certificate checker (DESIGN.md §11) as the oracle.
//!
//! Five deterministic families, each a distinct failure hypothesis:
//!
//! * [`Family::Ties`] — every link cost identical, uniform demand:
//!   maximally degenerate shortest paths and LP bases (ratio-test ties,
//!   Bland-style cycling risk).
//! * [`Family::ZeroCycles`] — a seeded subset of core links with zero
//!   cost in both directions: zero-cost cycles that tempt path
//!   extraction and column generation into non-terminating or
//!   zero-reduced-cost loops.
//! * [`Family::DynRange`] — link costs spanning `1e-9 … 1e9`: the
//!   dynamic range where naive summation loses the small entries and
//!   fixed absolute tolerances stop meaning anything.
//! * [`Family::Redundant`] — uniform demand with near-tight, jittered
//!   uniform link capacities: near-redundant capacity rows producing
//!   ill-conditioned, nearly singular simplex bases.
//! * [`Family::ZipfTail`] — steep Zipf popularity with an explicit
//!   `1e9`-wide head-to-tail rate ratio: hostile demand tails whose tiny
//!   rates must survive aggregation next to huge heads.
//!
//! Every case runs Algorithm 1, the alternating solver, and one hour of
//! the online anytime ladder under `catch_unwind`. The contract, checked
//! per case and summarized per family:
//!
//! * **zero panics** anywhere in the stack;
//! * **zero unverified claims** — every `Ok` solution must pass the
//!   independent verifier ([`certify_solution`]) *re-run here*, outside
//!   the solver's own gating;
//! * failures must be **typed errors**; `NumericalBreakdown` is counted
//!   separately and, in the online run, must be absorbed by the
//!   degradation ladder (the hour is still served on a lower rung).
//!
//! The exit status is `Err` (nonzero) on any panic or unverified claim.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jcr_core::online::{AnytimeConfig, OnlineSimulator, Rung};
use jcr_core::prelude::*;
use jcr_core::validate::validate_solution;
use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_ctx::SolverContext;
use jcr_topo::Topology;

use crate::exp::ExpConfig;
use crate::{print_table, profile};

/// The hostile instance families (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Degenerate shortest-path and ratio-test ties.
    Ties,
    /// Zero-cost cycles in the core.
    ZeroCycles,
    /// `1e±9` link-cost dynamic range.
    DynRange,
    /// Near-redundant (near-tight, jittered-uniform) capacity rows.
    Redundant,
    /// Hostile Zipf tails: `1e9` head-to-tail demand ratio.
    ZipfTail,
}

/// All families, in report order.
pub const FAMILIES: [Family; 5] = [
    Family::Ties,
    Family::ZeroCycles,
    Family::DynRange,
    Family::Redundant,
    Family::ZipfTail,
];

impl Family {
    /// Display name used in the summary table.
    pub fn name(self) -> &'static str {
        match self {
            Family::Ties => "degenerate-ties",
            Family::ZeroCycles => "zero-cost-cycles",
            Family::DynRange => "cost-dynrange-1e9",
            Family::Redundant => "near-redundant-caps",
            Family::ZipfTail => "hostile-zipf-tail",
        }
    }

    /// Resolves a family from its display name — the key the committed
    /// regression corpus (`proptest-regressions/adversary.txt`) uses.
    pub fn by_name(name: &str) -> Option<Family> {
        FAMILIES.iter().copied().find(|f| f.name() == name)
    }
}

/// Replays one fuzzer case for the committed regression corpus: same
/// suite as the live fuzzer, same contract. Typed solver errors are an
/// acceptable outcome (they *are* the contract for hostile instances);
/// an unverified `Ok` claim is not. Panics propagate to the caller —
/// corpus tests wrap this in `catch_unwind`.
///
/// # Errors
///
/// The joined failure summaries when any solver's answer fails
/// independent verification.
pub fn replay(family: Family, seed: u64) -> Result<(), String> {
    let ctx = SolverContext::new().with_workers(1);
    let rep = run_case(family, seed, &ctx);
    if rep.unverified.is_empty() {
        Ok(())
    } else {
        Err(rep.unverified.join("; "))
    }
}

/// Builds the seeded hostile instance for one `(family, seed)` case.
/// Fully deterministic: the same pair always yields the same instance.
///
/// # Errors
///
/// Propagates [`JcrError::InvalidInstance`] if the mutated topology or
/// demand fails instance validation (counted as a typed error by the
/// driver, never a panic).
pub fn build_case(family: Family, seed: u64) -> Result<Instance, JcrError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6164_7665_7273_6172); // "adversar"
    let n = rng.gen_range(10..15usize);
    let m = n + rng.gen_range(3..8usize);
    let mut topo = Topology::generate_custom(n, m, 3, seed)
        .map_err(|e| JcrError::InvalidInstance(format!("topology generation: {e}")))?;
    let zeta = rng.gen_range(1.0..3.0f64);
    let n_edges = topo.edge_nodes.len();

    match family {
        Family::Ties => {
            // Every directed link costs exactly the same: all shortest
            // paths tie, every pivot faces a degenerate ratio test.
            for c in topo.cost.iter_mut() {
                *c = 8.0;
            }
            let n_items = rng.gen_range(4..8usize);
            let rate = rng.gen_range(5.0..50.0f64);
            InstanceBuilder::new(topo)
                .items(n_items)
                .cache_capacity(zeta)
                .demand_matrix(vec![vec![rate; n_edges]; n_items])
                .link_capacity_fraction(0.05)
                .build()
        }
        Family::ZeroCycles => {
            // Zero out both directions of a seeded subset of core links:
            // genuine zero-cost cycles (origin links stay positive so the
            // gateway still dominates costs).
            let origin = topo.origin;
            let pairs: Vec<(usize, bool)> = (0..topo.cost.len() / 2)
                .map(|k| {
                    let (u, v) = topo.graph.endpoints(jcr_graph::EdgeId::new(2 * k));
                    (k, u != origin && v != origin)
                })
                .collect();
            for (k, core) in pairs {
                if core && rng.gen_bool(0.35) {
                    topo.cost[2 * k] = 0.0;
                    topo.cost[2 * k + 1] = 0.0;
                }
            }
            let mut b = InstanceBuilder::new(topo)
                .items(rng.gen_range(4..10usize))
                .cache_capacity(zeta)
                .zipf_demand(rng.gen_range(0.4..1.2), 800.0, seed);
            b = if rng.gen_bool(0.5) {
                b.link_capacity_fraction(0.05)
            } else {
                b.unlimited_links()
            };
            b.build()
        }
        Family::DynRange => {
            // Redraw every link cost as mantissa × 10^k with k ∈ [-9, 9]:
            // an 18-decade spread that breaks naive accumulation and any
            // fixed absolute tolerance.
            for c in topo.cost.iter_mut() {
                let k: i32 = rng.gen_range(-9..=9);
                *c = rng.gen_range(1.0..10.0f64) * 10f64.powi(k);
            }
            let mut b = InstanceBuilder::new(topo)
                .items(rng.gen_range(4..10usize))
                .cache_capacity(zeta)
                .zipf_demand(rng.gen_range(0.4..1.2), 1000.0, seed);
            b = if rng.gen_bool(0.5) {
                b.link_capacity_fraction(0.05)
            } else {
                b.unlimited_links()
            };
            b.build()
        }
        Family::Redundant => {
            // Uniform demand on a symmetric capacity profile, with the
            // uniform κ jittered by parts in 1e9: many capacity rows are
            // numerically near-identical and near-tight simultaneously.
            let n_items = rng.gen_range(3..7usize);
            let rate = rng.gen_range(10.0..40.0f64);
            let jitter = 1.0 + (seed % 997) as f64 * 1e-9;
            InstanceBuilder::new(topo)
                .items(n_items)
                .cache_capacity(zeta)
                .demand_matrix(vec![vec![rate; n_edges]; n_items])
                .link_capacity_fraction(0.007 * jitter)
                .build()
        }
        Family::ZipfTail => {
            // Explicit steep-Zipf demand with a 1e9 head-to-tail rate
            // ratio: tiny tail rates must survive Kahan-certified
            // aggregation next to huge heads.
            // 40^5.5 ≈ 6e8: the steepness floor that keeps the promised
            // head-to-tail ratio near 1e9 for every seed.
            let n_items = 40;
            let alpha = rng.gen_range(5.5..7.5f64);
            let total = 1e6;
            let shares: Vec<f64> = {
                let raw: Vec<f64> = (0..n_edges).map(|_| rng.gen_range(0.1..1.0)).collect();
                let s: f64 = raw.iter().sum();
                raw.iter().map(|r| r / s).collect()
            };
            let rates: Vec<Vec<f64>> = (0..n_items)
                .map(|i| {
                    let pop = total * ((i + 1) as f64).powf(-alpha);
                    shares.iter().map(|sh| pop * sh).collect()
                })
                .collect();
            let mut b = InstanceBuilder::new(topo)
                .items(n_items)
                .cache_capacity(zeta)
                .demand_matrix(rates);
            b = if rng.gen_bool(0.5) {
                b.link_capacity_fraction(0.02)
            } else {
                b.unlimited_links()
            };
            b.build()
        }
    }
}

/// Per-case outcome, aggregated into [`FamilyStats`] by the driver.
#[derive(Default)]
struct CaseReport {
    /// Solver runs that returned `Ok` with a verified certificate.
    verified_ok: usize,
    /// Typed-error descriptions (`solver: error`), breakdowns included.
    typed_errors: Vec<String>,
    /// `NumericalBreakdown` errors among the typed errors.
    breakdowns: usize,
    /// `Ok` results whose *independent* re-certification failed.
    unverified: Vec<String>,
    /// Online-ladder rung serving the fuzzed hour (at most one per case).
    rungs: [usize; Rung::ALL.len()],
}

impl CaseReport {
    fn note_err(&mut self, solver: &str, e: &JcrError) {
        if matches!(e, JcrError::NumericalBreakdown(_)) {
            self.breakdowns += 1;
        }
        self.typed_errors.push(format!("{solver}: {e}"));
    }
}

/// Runs the full solver suite on one case. May panic — the driver wraps
/// this in `catch_unwind` and counts panics as contract violations.
fn run_case(family: Family, seed: u64, ctx: &SolverContext) -> CaseReport {
    let mut rep = CaseReport::default();
    let inst = match build_case(family, seed) {
        Ok(inst) => inst,
        Err(e) => {
            rep.note_err("build", &e);
            return rep;
        }
    };

    // Algorithm 1 (uncapacitated caching + RNR), re-certified here.
    match Algorithm1::new().solve_with_context(&inst, ctx) {
        Ok(sol) => {
            let cert = certify_solution(&inst, &sol, false);
            cert.record(ctx);
            if cert.verified() {
                rep.verified_ok += 1;
            } else {
                rep.unverified
                    .push(format!("alg1 seed {seed}: {}", cert.failure_summary()));
            }
        }
        Err(e) => rep.note_err("alg1", &e),
    }

    // Alternating caching/routing (CG + rounding), re-certified here.
    let alt = Alternating {
        seed,
        ..Alternating::default()
    };
    match alt.solve_with_context(&inst, ctx) {
        Ok(res) => {
            let cert = certify_solution(&inst, &res.solution, false);
            cert.record(ctx);
            if cert.verified() {
                rep.verified_ok += 1;
            } else {
                rep.unverified.push(format!(
                    "alternating seed {seed}: {}",
                    cert.failure_summary()
                ));
            }
        }
        Err(e) => rep.note_err("alternating", &e),
    }

    // One hour of the online anytime ladder: breakdowns must degrade to a
    // lower rung, and the served hour must be validation-clean.
    let mut sim = OnlineSimulator::new(Alternating {
        seed,
        ..Alternating::default()
    });
    let true_rates: Vec<f64> = inst.requests.iter().map(|r| r.rate * 1.05).collect();
    match sim.step_anytime(&inst, &true_rates, &AnytimeConfig::new()) {
        Ok(out) => {
            rep.rungs[out.rung.index()] += 1;
            let mut clean = true;
            if !out.certificate.verified() {
                clean = false;
                rep.unverified.push(format!(
                    "online seed {seed}: {}",
                    out.certificate.failure_summary()
                ));
            }
            let violations = validate_solution(&inst, &out.solution);
            if !violations.is_empty() {
                clean = false;
                rep.unverified.push(format!(
                    "online seed {seed}: served hour has {} validation violation(s)",
                    violations.len()
                ));
            }
            if clean {
                rep.verified_ok += 1;
            }
        }
        Err(e) => rep.note_err("online", &e),
    }
    rep
}

/// Aggregate of one family's cases.
#[derive(Default)]
struct FamilyStats {
    cases: usize,
    verified_ok: usize,
    typed_errors: usize,
    breakdowns: usize,
    unverified: usize,
    panics: usize,
    rungs: [usize; Rung::ALL.len()],
}

/// Entry point of `experiments adversary`: runs `≥ 200` seeded hostile
/// instances (5 families × 40 seeds; `--full` uses 80, `--runs` scales
/// further) and enforces the fuzzer contract.
///
/// # Errors
///
/// A human-readable summary when any case panicked or any `Ok` result
/// failed independent verification; the caller exits nonzero.
pub fn adversary(cfg: ExpConfig) -> Result<(), String> {
    let per_family = if cfg.full { 80 } else { 40 }.max(cfg.runs.saturating_mul(40) / 3);
    let ctx = if cfg.workers > 0 {
        SolverContext::new().with_workers(cfg.workers)
    } else {
        SolverContext::new().with_workers(1)
    };
    eprintln!(
        "[adversary] {} families × {per_family} seeds = {} hostile instances",
        FAMILIES.len(),
        FAMILIES.len() * per_family
    );

    // Silence the default panic hook while fuzzing: a caught panic is a
    // counted contract violation, not console noise mid-table.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut stats: Vec<FamilyStats> = Vec::with_capacity(FAMILIES.len());
    let mut failures: Vec<String> = Vec::new();
    for (fi, &family) in FAMILIES.iter().enumerate() {
        let mut fs = FamilyStats::default();
        for k in 0..per_family {
            let seed = cfg
                .seed
                .wrapping_mul(1_000_003)
                .wrapping_add((fi * 100_000 + k) as u64);
            fs.cases += 1;
            match catch_unwind(AssertUnwindSafe(|| run_case(family, seed, &ctx))) {
                Ok(rep) => {
                    fs.verified_ok += rep.verified_ok;
                    fs.typed_errors += rep.typed_errors.len();
                    fs.breakdowns += rep.breakdowns;
                    fs.unverified += rep.unverified.len();
                    for (r, n) in fs.rungs.iter_mut().zip(rep.rungs) {
                        *r += n;
                    }
                    for msg in rep.unverified {
                        failures.push(format!("[{}] unverified: {msg}", family.name()));
                    }
                }
                Err(payload) => {
                    fs.panics += 1;
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    failures.push(format!("[{}] panic at seed {seed}: {msg}", family.name()));
                }
            }
        }
        stats.push(fs);
    }
    std::panic::set_hook(prev_hook);

    let header: Vec<String> = [
        "family",
        "cases",
        "verified",
        "typed-err",
        "breakdown",
        "unverified",
        "panics",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let rows: Vec<Vec<String>> = FAMILIES
        .iter()
        .zip(&stats)
        .map(|(f, s)| {
            vec![
                f.name().to_string(),
                s.cases.to_string(),
                s.verified_ok.to_string(),
                s.typed_errors.to_string(),
                s.breakdowns.to_string(),
                s.unverified.to_string(),
                s.panics.to_string(),
            ]
        })
        .collect();
    print_table(
        "Adversarial fuzzer — per-family contract summary",
        &header,
        &rows,
    );

    // Ladder rung histogram for the fuzzed online hours: breakdowns show
    // up as mass below Full instead of errors.
    let mut rung_rows = Vec::new();
    for (ri, rung) in Rung::ALL.iter().enumerate() {
        let total: usize = stats.iter().map(|s| s.rungs[ri]).sum();
        rung_rows.push(vec![rung.name().to_string(), total.to_string()]);
    }
    print_table(
        "Online ladder rungs across fuzzed hours",
        &["rung".into(), "hours".into()],
        &rung_rows,
    );

    // Certificate residual / LP refinement histograms accumulated by the
    // shared context across every fuzzed solve.
    let snap = ctx.obs_snapshot();
    print_table(
        "Metric histograms over all fuzzed solves (p50/p95 are log₂-bucket upper bounds)",
        &profile::histogram_header(),
        &profile::histogram_rows(&snap),
    );

    let panics: usize = stats.iter().map(|s| s.panics).sum();
    let unverified: usize = stats.iter().map(|s| s.unverified).sum();
    if panics > 0 || unverified > 0 {
        let shown = failures.len().min(20);
        Err(format!(
            "adversary contract violated: {panics} panic(s), {unverified} unverified claim(s)\n{}{}",
            failures[..shown].join("\n"),
            if failures.len() > shown {
                format!("\n… and {} more", failures.len() - shown)
            } else {
                String::new()
            }
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        for &family in &FAMILIES {
            let a = build_case(family, 7).unwrap();
            let b = build_case(family, 7).unwrap();
            assert_eq!(a.requests.len(), b.requests.len());
            assert_eq!(a.link_cost, b.link_cost);
            assert_eq!(a.link_cap, b.link_cap);
            for (ra, rb) in a.requests.iter().zip(&b.requests) {
                assert_eq!(ra.rate, rb.rate);
            }
        }
    }

    #[test]
    fn families_hit_their_hypotheses() {
        let ties = build_case(Family::Ties, 3).unwrap();
        assert!(ties.link_cost.windows(2).all(|w| {
            // Uniform core costs; augmentation may append extra parallel
            // capacity but costs stay drawn from the uniform profile.
            w[0] == w[1] || w[0] == 8.0 || w[1] == 8.0
        }));

        let cycles = build_case(Family::ZeroCycles, 3).unwrap();
        assert!(
            cycles.link_cost.contains(&0.0),
            "seed 3 zeroes at least one core pair"
        );

        let dyn_range = build_case(Family::DynRange, 3).unwrap();
        let max = dyn_range.link_cost.iter().cloned().fold(0.0f64, f64::max);
        let min = dyn_range
            .link_cost
            .iter()
            .cloned()
            .filter(|c| *c > 0.0)
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 1e6, "dynamic range spans decades");

        let tail = build_case(Family::ZipfTail, 3).unwrap();
        let rates: Vec<f64> = tail.requests.iter().map(|r| r.rate).collect();
        let rmax = rates.iter().cloned().fold(0.0f64, f64::max);
        let rmin = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(rmax / rmin > 1e8, "head dwarfs tail");
    }

    #[test]
    fn hostile_case_runs_verified() {
        let ctx = SolverContext::new().with_workers(1);
        let rep = run_case(Family::Ties, 11, &ctx);
        assert!(rep.unverified.is_empty(), "{:?}", rep.unverified);
        assert!(rep.verified_ok > 0);
    }
}
