//! Exporters for [`jcr_ctx::obs`] snapshots: Chrome Trace Event JSON
//! (loadable in Perfetto / `chrome://tracing`), flamegraph-style
//! collapsed stacks, and histogram summary tables — plus the runner
//! behind `experiments trace`.
//!
//! The Chrome trace is rebuilt from the flat completed-span event log:
//! per thread lane the spans are re-nested with a sweep (sorted by start
//! time, longer spans first), which guarantees **balanced `B`/`E`
//! pairs** with proper stack discipline even when clock jitter makes
//! recorded intervals overlap by a few nanoseconds — child intervals are
//! clamped into their parent. Timestamps are microseconds with a
//! fractional part, so nanosecond ordering survives the export.

use std::collections::BTreeMap;

use jcr_ctx::obs::{ObsSnapshot, SpanEvent, Unit};

use crate::exp::ExpConfig;
use crate::json::Json;
use crate::{build_instance, fmt, print_table, Scenario};

/// Renders a snapshot as a Chrome Trace Event document: one `M`
/// (thread-name) metadata event per lane, then balanced `B`/`E` pairs.
/// Deterministic counters and `Count` histograms ride along under the
/// non-standard `"jcr"` key (Perfetto ignores unknown keys), so the
/// trace file alone can answer "did two runs do the same work".
pub fn chrome_trace(snap: &ObsSnapshot) -> Json {
    let mut lanes: BTreeMap<u32, Vec<SpanEvent>> = BTreeMap::new();
    for ev in &snap.events {
        lanes.entry(ev.tid).or_default().push(*ev);
    }
    let mut events = Vec::new();
    for (&tid, spans) in &mut lanes {
        let name = if tid == 0 {
            "main".to_string()
        } else {
            format!("pool worker {tid}")
        };
        events.push(Json::obj([
            ("ph", Json::Str("M".into())),
            ("name", Json::Str("thread_name".into())),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(f64::from(tid))),
            ("args", Json::obj([("name", Json::Str(name))])),
        ]));
        // Re-nest: by start ascending, then longer (enclosing) first.
        spans.sort_by(|a, b| {
            (a.start_nanos, std::cmp::Reverse(a.end_nanos), a.name).cmp(&(
                b.start_nanos,
                std::cmp::Reverse(b.end_nanos),
                b.name,
            ))
        });
        let mut stack: Vec<(u64, &'static str)> = Vec::new();
        let mut emit = |ph: &str, name: &str, nanos: u64| {
            events.push(Json::obj([
                ("ph", Json::Str(ph.into())),
                ("name", Json::Str(name.into())),
                ("cat", Json::Str("span".into())),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(f64::from(tid))),
                ("ts", Json::Num(nanos as f64 / 1e3)),
            ]));
        };
        for span in spans.iter() {
            while let Some(&(top_end, top_name)) = stack.last() {
                if top_end <= span.start_nanos {
                    emit("E", top_name, top_end);
                    stack.pop();
                } else {
                    break;
                }
            }
            // Clamp into the enclosing span so pairs always nest.
            let end = match stack.last() {
                Some(&(top_end, _)) => span.end_nanos.min(top_end),
                None => span.end_nanos,
            };
            let start = span.start_nanos.min(end);
            emit("B", span.name, start);
            stack.push((end, span.name));
        }
        while let Some((end, name)) = stack.pop() {
            emit("E", name, end);
        }
    }

    let counters: BTreeMap<String, Json> = snap
        .counters
        .iter()
        .map(|(&k, &v)| (k.to_string(), Json::Num(v as f64)))
        .collect();
    let hists: BTreeMap<String, Json> = snap
        .histograms
        .iter()
        .map(|(&k, h)| {
            (
                k.to_string(),
                Json::obj([
                    ("unit", Json::Str(h.unit().name().into())),
                    ("count", Json::Num(h.count() as f64)),
                    ("p50", Json::Num(h.quantile(0.5) as f64)),
                    ("p95", Json::Num(h.quantile(0.95) as f64)),
                    ("max", Json::Num(h.max() as f64)),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "jcr",
            Json::obj([
                ("counters", Json::Obj(counters)),
                ("histograms", Json::Obj(hists)),
                ("droppedEvents", Json::Num(snap.dropped_events as f64)),
            ]),
        ),
    ])
}

/// Validates a rendered Chrome trace: the document parses, `traceEvents`
/// exists, and per lane the `B`/`E` events balance with stack discipline
/// (every `E` closes the innermost open `B` of the same name). Returns
/// the number of matched pairs.
///
/// # Errors
///
/// A description of the first malformation found.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    let mut pairs = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: E with no open B on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E {name:?} closes B {open:?} on tid {tid}"
                    ));
                }
                pairs += 1;
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} unclosed B events", stack.len()));
        }
    }
    Ok(pairs)
}

/// Renders the aggregate span tree as flamegraph collapsed stacks: one
/// line per tree node, `root;child;… <self-µs>`, children sorted by name
/// so the output is deterministic for a deterministic solve (the values
/// are wall clock and vary).
pub fn collapsed_stacks(snap: &ObsSnapshot) -> String {
    fn walk(snap: &ObsSnapshot, node: usize, path: &mut Vec<&'static str>, out: &mut String) {
        let n = &snap.nodes[node];
        if !n.name.is_empty() {
            path.push(n.name);
            out.push_str(&path.join(";"));
            out.push(' ');
            out.push_str(&(n.self_nanos() / 1_000).to_string());
            out.push('\n');
        }
        let mut kids = n.children.clone();
        kids.sort_by_key(|&c| snap.nodes[c].name);
        for c in kids {
            walk(snap, c, path, out);
        }
        if !n.name.is_empty() {
            path.pop();
        }
    }
    let mut out = String::new();
    walk(snap, 0, &mut Vec::new(), &mut out);
    out
}

/// Header for [`histogram_rows`] tables.
pub fn histogram_header() -> Vec<String> {
    ["metric", "unit", "n", "mean", "p50", "p95", "max"]
        .iter()
        .map(|s| (*s).to_string())
        .collect()
}

/// One row per histogram in the snapshot's registry: count, mean, and
/// log₂-bucket p50/p95 upper bounds. `Nanos` histograms are reported in
/// milliseconds, `Count` histograms as raw values.
pub fn histogram_rows(snap: &ObsSnapshot) -> Vec<Vec<String>> {
    snap.histograms
        .iter()
        .map(|(&name, h)| {
            let (unit, scale) = match h.unit() {
                Unit::Nanos => ("ms", 1e-6),
                Unit::Count => ("count", 1.0),
            };
            vec![
                name.to_string(),
                unit.to_string(),
                h.count().to_string(),
                fmt(h.mean() * scale),
                fmt(h.quantile(0.5) as f64 * scale),
                fmt(h.quantile(0.95) as f64 * scale),
                fmt(h.max() as f64 * scale),
            ]
        })
        .collect()
}

/// The path the `.folded` collapsed-stack profile is written next to a
/// trace at `out` (the trace's extension is replaced).
pub fn folded_path(out: &str) -> String {
    match out.rsplit_once('.') {
        Some((stem, _)) if !stem.is_empty() => format!("{stem}.folded"),
        _ => format!("{out}.folded"),
    }
}

/// Runs the `experiments trace` subcommand: one seeded chunk-default
/// hour through Algorithm 1 and the alternating solver under a single
/// instrumented context, then writes the Chrome trace to `out` and the
/// collapsed-stack profile next to it, validates the emitted trace
/// (round-trip parse + balanced `B`/`E`), and prints the span and
/// histogram summaries.
///
/// # Errors
///
/// I/O failures and trace-validation failures (the latter indicate an
/// exporter bug and fail CI's smoke step).
pub fn trace_run(cfg: ExpConfig, out: &str) -> Result<(), String> {
    let mut sc = Scenario::chunk_default();
    sc.seed = sc.seed.wrapping_add(cfg.seed);
    sc.share_seed = sc.share_seed.wrapping_add(cfg.seed);
    sc.hours = 1;
    let n_edges = sc.topology().edge_nodes.len();
    let rates = sc.demand(n_edges).true_rates(0, n_edges);
    let inst = build_instance(&sc, &rates);

    let ctx = cfg.pool_ctx();
    {
        let _s = ctx.span("trace.alg1");
        let _ = jcr_core::prelude::Algorithm1::new().solve_with_context(&inst, &ctx);
    }
    {
        let _s = ctx.span("trace.alternating");
        let _ = jcr_core::prelude::Alternating::new().solve_with_context(&inst, &ctx);
    }
    let snap = ctx.obs_snapshot();

    let trace_text = chrome_trace(&snap).render();
    let pairs = validate_chrome_trace(&trace_text)?;
    std::fs::write(out, &trace_text).map_err(|e| format!("writing {out}: {e}"))?;
    let folded = folded_path(out);
    std::fs::write(&folded, collapsed_stacks(&snap))
        .map_err(|e| format!("writing {folded}: {e}"))?;

    let mut span_rows = Vec::new();
    span_summary(&snap, 0, 0, &mut span_rows);
    print_table(
        "Span tree — calls, total/self wall time (ms)",
        &["span".into(), "calls".into(), "total".into(), "self".into()],
        &span_rows,
    );
    print_table(
        "Metric histograms (p50/p95 are log₂-bucket upper bounds)",
        &histogram_header(),
        &histogram_rows(&snap),
    );
    eprintln!(
        "[trace] wrote {out} ({pairs} span pairs, {} lanes) and {folded}; open {out} in https://ui.perfetto.dev",
        1 + snap.events.iter().map(|e| e.tid).max().unwrap_or(0)
    );
    Ok(())
}

fn span_summary(snap: &ObsSnapshot, node: usize, depth: usize, rows: &mut Vec<Vec<String>>) {
    let n = &snap.nodes[node];
    if !n.name.is_empty() {
        rows.push(vec![
            format!("{:indent$}{}", "", n.name, indent = (depth - 1) * 2),
            n.count.to_string(),
            fmt(n.total_nanos as f64 / 1e6),
            fmt(n.self_nanos() as f64 / 1e6),
        ]);
    }
    let mut kids = n.children.clone();
    kids.sort_by_key(|&c| snap.nodes[c].name);
    for c in kids {
        span_summary(snap, c, depth + 1, rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_ctx::SolverContext;

    fn sample_snapshot() -> ObsSnapshot {
        let ctx = SolverContext::default();
        {
            let _a = ctx.span("outer");
            for _ in 0..3 {
                let _b = ctx.span("inner");
            }
        }
        {
            let _a = ctx.span("other");
        }
        ctx.obs().add_counter("widgets", 2);
        ctx.metric_value("sizes", 9);
        ctx.metric_nanos("lat", 1500);
        ctx.obs_snapshot()
    }

    #[test]
    fn chrome_trace_round_trips_and_balances() {
        let snap = sample_snapshot();
        let text = chrome_trace(&snap).render();
        let pairs = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(pairs, 5, "three inner + outer + other");
        let doc = Json::parse(&text).unwrap();
        let jcr = doc.get("jcr").unwrap();
        assert_eq!(
            jcr.get("counters")
                .unwrap()
                .get("widgets")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        let sizes = jcr.get("histograms").unwrap().get("sizes").unwrap();
        assert_eq!(sizes.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(sizes.get("unit").unwrap().as_str(), Some("count"));
    }

    #[test]
    fn validator_rejects_unbalanced_and_mismatched() {
        let unbalanced = Json::obj([(
            "traceEvents",
            Json::Arr(vec![Json::obj([
                ("ph", Json::Str("B".into())),
                ("name", Json::Str("a".into())),
                ("tid", Json::Num(0.0)),
                ("ts", Json::Num(1.0)),
            ])]),
        )])
        .render();
        assert!(validate_chrome_trace(&unbalanced)
            .unwrap_err()
            .contains("unclosed"));
        let mismatched = Json::obj([(
            "traceEvents",
            Json::Arr(vec![
                Json::obj([
                    ("ph", Json::Str("B".into())),
                    ("name", Json::Str("a".into())),
                    ("tid", Json::Num(0.0)),
                    ("ts", Json::Num(1.0)),
                ]),
                Json::obj([
                    ("ph", Json::Str("E".into())),
                    ("name", Json::Str("b".into())),
                    ("tid", Json::Num(0.0)),
                    ("ts", Json::Num(2.0)),
                ]),
            ]),
        )])
        .render();
        assert!(validate_chrome_trace(&mismatched).is_err());
    }

    #[test]
    fn collapsed_stacks_follow_tree_shape() {
        let snap = sample_snapshot();
        let text = collapsed_stacks(&snap);
        let paths: Vec<&str> = text
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().0)
            .collect();
        assert_eq!(paths, vec!["other", "outer", "outer;inner"]);
        for line in text.lines() {
            let (_, v) = line.rsplit_once(' ').unwrap();
            v.parse::<u64>().expect("µs value");
        }
    }

    #[test]
    fn histogram_rows_scale_by_unit() {
        let snap = sample_snapshot();
        let rows = histogram_rows(&snap);
        assert_eq!(rows.len(), 2);
        let lat = rows.iter().find(|r| r[0] == "lat").unwrap();
        assert_eq!(lat[1], "ms");
        let sizes = rows.iter().find(|r| r[0] == "sizes").unwrap();
        assert_eq!((sizes[1].as_str(), sizes[2].as_str()), ("count", "1"));
    }

    #[test]
    fn folded_path_replaces_extension() {
        assert_eq!(folded_path("TRACE.json"), "TRACE.folded");
        assert_eq!(folded_path("a/b.trace.json"), "a/b.trace.folded");
        assert_eq!(folded_path("noext"), "noext.folded");
    }
}
