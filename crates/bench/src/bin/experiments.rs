//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--runs N] [--hours N] [--seed N] [--workers N] [--full]
//!                     [--out PATH] [--baseline PATH] [--tolerance F]
//!
//!   ids: fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12 fig13 fig15 cases zipf convergence online ablation topology
//!        table1 table2 table3 table4 stats faults bench all
//! ```
//!
//! Run with `--release`; the quick defaults finish in minutes, `--full`
//! uses paper-scale sweeps. `bench` emits a machine-readable report
//! (`--out BENCH.json`) and, given `--baseline BENCH_BASELINE.json`, exits
//! nonzero on regressions (checksums/counters exactly, wall clock within
//! `--tolerance`, default 0.25).

use jcr_bench::exp::{self, ExpConfig};
use jcr_bench::perf::{self, BenchOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut bench_opts = BenchOpts {
        tolerance: 0.25,
        ..BenchOpts::default()
    };
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => {
                cfg.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs needs a number"));
            }
            "--hours" => {
                cfg.hours = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--hours needs a number"));
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"));
            }
            "--out" => {
                bench_opts.out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a path")),
                );
            }
            "--baseline" => {
                bench_opts.baseline = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--baseline needs a path")),
                );
            }
            "--tolerance" => {
                bench_opts.tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--tolerance needs a number"));
            }
            "--full" => cfg.full = true,
            "--help" | "-h" => usage(""),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if ids.is_empty() {
        usage("no experiment id given");
    }
    if ids.iter().any(|i| i == "all") {
        ids = [
            "table1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig11",
            "fig12",
            "fig13",
            "fig15",
            "cases",
            "zipf",
            "convergence",
            "online",
            "ablation",
            "sim",
            "gap",
            "table2",
            "table3",
            "table4",
            "stats",
            "faults",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for id in &ids {
        eprintln!(
            "[experiments] running {id} (runs={}, hours={}, full={})",
            cfg.runs, cfg.hours, cfg.full
        );
        match id.as_str() {
            "fig4" => exp::fig4(cfg),
            "fig5" => exp::fig5(cfg),
            "fig6" => exp::fig6(cfg),
            "fig7" => exp::fig7(cfg),
            "fig8" => exp::fig8(cfg),
            "fig9" => exp::fig9(cfg),
            "fig11" => exp::fig11(cfg),
            "fig12" => exp::fig12(cfg),
            "fig13" => exp::fig13(cfg),
            "fig15" => exp::fig15(cfg),
            "cases" => exp::cases(cfg),
            "convergence" => exp::convergence(cfg),
            "online" => exp::online(cfg),
            "ablation" => exp::ablation(cfg),
            "topology" => exp::topology(cfg),
            "sim" => exp::sim(cfg),
            "gap" => exp::gap(cfg),
            "zipf" => exp::zipf(cfg),
            "table1" => exp::table1(cfg),
            "table2" => exp::table2(cfg),
            "table3" => exp::table3(cfg),
            "table4" => exp::table4(cfg),
            "stats" => exp::stats(cfg),
            "faults" => exp::faults(cfg),
            "bench" => {
                if let Err(msg) = perf::bench(cfg, &bench_opts) {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
            other => usage(&format!("unknown experiment {other}")),
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: experiments <id>... [--runs N] [--hours N] [--seed N] [--workers N] [--full] \
         [--out PATH] [--baseline PATH] [--tolerance F]\n\
         ids: fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12 fig13 fig15 cases zipf convergence online ablation topology \
         table1 table2 table3 table4 stats faults bench all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
