//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--runs N] [--hours N] [--seed N] [--workers N] [--full]
//!                     [--out PATH] [--baseline PATH] [--tolerance F]
//!                     [--obs-out PATH] [--obs-baseline PATH]
//! experiments diff <a> <b> [--phase NAME] [--top N] [--workers-compare] [--out PATH]
//!
//!   ids: fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12 fig13 fig15 cases zipf convergence online ablation topology
//!        table1 table2 table3 table4 stats faults stress adversary chaos bench trace all
//! ```
//!
//! Run with `--release`; the quick defaults finish in minutes, `--full`
//! uses paper-scale sweeps. `bench` emits a machine-readable report
//! (`--out BENCH.json`) and, given `--baseline BENCH_BASELINE.json`, exits
//! nonzero on regressions (checksums/counters exactly, wall clock within
//! `--tolerance`, default 0.25).
//!
//! `bench` also writes the merged observability snapshot next to the
//! report (`OBS.json`, see `--obs-out`); `diff` loads two such snapshots
//! and prints the attributed delta report — per-span self-time deltas
//! ranked by contribution to the wall-clock difference, counter deltas,
//! and histogram shifts — so a regression names its guilty span.
//!
//! `trace` runs a seeded solve under span instrumentation and writes a
//! Chrome Trace Event file (`--out`, default `TRACE.json`, loadable at
//! <https://ui.perfetto.dev>) plus a collapsed-stack `.folded` profile.
//! Setting `JCR_TRACE=path` overrides the default output path and
//! appends `trace` to any invocation that didn't request it.

use jcr_bench::diff::{self, DiffOpts};
use jcr_bench::exp::{self, ExpConfig};
use jcr_bench::perf::{self, BenchOpts};
use jcr_bench::profile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut bench_opts = BenchOpts {
        tolerance: 0.25,
        ..BenchOpts::default()
    };
    let mut diff_opts = DiffOpts::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => {
                cfg.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs needs a number"));
            }
            "--hours" => {
                cfg.hours = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--hours needs a number"));
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"));
            }
            "--out" => {
                bench_opts.out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a path")),
                );
            }
            "--baseline" => {
                bench_opts.baseline = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--baseline needs a path")),
                );
            }
            "--tolerance" => {
                bench_opts.tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--tolerance needs a number"));
            }
            "--obs-out" => {
                bench_opts.obs_out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--obs-out needs a path")),
                );
            }
            "--obs-baseline" => {
                bench_opts.obs_baseline = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--obs-baseline needs a path")),
                );
            }
            "--phase" => {
                diff_opts.phase = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--phase needs a span name")),
                );
            }
            "--top" => {
                diff_opts.top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--top needs a number"));
            }
            "--workers-compare" => diff_opts.workers_compare = true,
            "--full" => cfg.full = true,
            "--help" | "-h" => usage(""),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    // `diff <a> <b>` is a standalone subcommand: the two positional
    // arguments are snapshot paths, not experiment ids.
    if ids.first().map(String::as_str) == Some("diff") {
        if ids.len() != 3 {
            usage("diff needs exactly two snapshot paths: experiments diff <a> <b>");
        }
        diff_opts.out = bench_opts.out.clone();
        if let Err(msg) = diff::run(&ids[1], &ids[2], &diff_opts) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
        return;
    }
    let env_trace = std::env::var("JCR_TRACE").ok().filter(|p| !p.is_empty());
    if ids.is_empty() && env_trace.is_none() {
        usage("no experiment id given");
    }
    if ids.iter().any(|i| i == "all") {
        ids = [
            "table1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig11",
            "fig12",
            "fig13",
            "fig15",
            "cases",
            "zipf",
            "convergence",
            "online",
            "ablation",
            "sim",
            "gap",
            "table2",
            "table3",
            "table4",
            "stats",
            "faults",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    // JCR_TRACE=path: default trace output path, and an implicit `trace`
    // run appended to invocations that didn't ask for one.
    if let Some(path) = &env_trace {
        if !ids.iter().any(|i| i == "trace") {
            ids.push("trace".to_string());
        }
        eprintln!("[experiments] JCR_TRACE={path}: tracing to {path}");
    }
    for id in &ids {
        eprintln!(
            "[experiments] running {id} (runs={}, hours={}, full={})",
            cfg.runs, cfg.hours, cfg.full
        );
        match id.as_str() {
            "fig4" => exp::fig4(cfg),
            "fig5" => exp::fig5(cfg),
            "fig6" => exp::fig6(cfg),
            "fig7" => exp::fig7(cfg),
            "fig8" => exp::fig8(cfg),
            "fig9" => exp::fig9(cfg),
            "fig11" => exp::fig11(cfg),
            "fig12" => exp::fig12(cfg),
            "fig13" => exp::fig13(cfg),
            "fig15" => exp::fig15(cfg),
            "cases" => exp::cases(cfg),
            "convergence" => exp::convergence(cfg),
            "online" => exp::online(cfg),
            "ablation" => exp::ablation(cfg),
            "topology" => exp::topology(cfg),
            "sim" => exp::sim(cfg),
            "gap" => exp::gap(cfg),
            "zipf" => exp::zipf(cfg),
            "table1" => exp::table1(cfg),
            "table2" => exp::table2(cfg),
            "table3" => exp::table3(cfg),
            "table4" => exp::table4(cfg),
            "stats" => exp::stats(cfg),
            "faults" => exp::faults(cfg),
            "stress" => perf::stress(cfg),
            "adversary" => {
                if let Err(msg) = jcr_bench::adversary::adversary(cfg) {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
            "chaos" => {
                if let Err(msg) = jcr_bench::chaos::chaos(cfg) {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
            "bench" => {
                if let Err(msg) = perf::bench(cfg, &bench_opts) {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
            "trace" => {
                let out = env_trace
                    .clone()
                    .or_else(|| bench_opts.out.clone())
                    .unwrap_or_else(|| "TRACE.json".to_string());
                if let Err(msg) = profile::trace_run(cfg, &out) {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
            other => usage(&format!("unknown experiment {other}")),
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: experiments <id>... [--runs N] [--hours N] [--seed N] [--workers N] [--full] \
         [--out PATH] [--baseline PATH] [--tolerance F] [--obs-out PATH] [--obs-baseline PATH]\n\
       experiments diff <a> <b> [--phase NAME] [--top N] [--workers-compare] [--out PATH]\n\
         ids: fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12 fig13 fig15 cases zipf convergence online ablation topology \
         table1 table2 table3 table4 stats faults stress adversary chaos bench trace all\n\
         `adversary` fuzzes ≥ 200 seeded hostile instances (5 families) against every solver with \
         independent certificate verification; exits nonzero on any panic or unverified claim.\n\
         `chaos` kills/resumes the online loop at snapshot boundaries and replays corrupted, truncated,\n\
         stale, and foreign snapshots; exits nonzero unless resume is bit-identical with zero panics.\n\
         `diff` compares two obs snapshots (`OBS.json`, written by `bench` next to `--out`) and prints\n\
         span/counter/histogram deltas ranked by contribution to the wall-clock difference.\n\
         env: JCR_TRACE=path  write a Chrome trace (implies a trailing `trace` run)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
