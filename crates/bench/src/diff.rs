//! Differential profiler: attributed delta reports between two
//! serialized [`WireSnapshot`]s (see `jcr_ctx::obs::wire`).
//!
//! Given snapshots A and B of the same workload — two commits, two
//! worker widths, two machines — [`diff_snapshots`] answers *which
//! spans the wall-clock difference lives in*:
//!
//! * **Span attribution.** Both span trees are flattened to
//!   `;`-joined name paths (unique, because the aggregate tree keys
//!   children by `parent → name`) and joined on path. Each path gets a
//!   self-time delta `self_B − self_A`; because every node's total is
//!   its self time plus its children's totals, the signed self-deltas
//!   sum to the wall-clock delta exactly (up to the saturating clamp
//!   on negative self times), so ranking by `|Δself|` ranks by
//!   absolute contribution to the wall-clock difference and the report
//!   can state what fraction of the delta it attributed.
//! * **Counter deltas** over the union of counter names, zero-delta
//!   entries dropped.
//! * **Histogram shift detection** over the log₂ bins: mass movement
//!   (total-variation distance between the normalized bucket
//!   distributions) plus p50/p95 drift via the reconstructed
//!   [`Histogram`](jcr_ctx::obs::Histogram) quantiles.
//!
//! Reports render three ways: an aligned human table
//! ([`DiffReport::print`]), canonical JSON ([`DiffReport::to_json`])
//! following the bench suite's conventions, and a markdown table
//! ([`DiffReport::markdown_table`]) the bench gate appends to
//! `$GITHUB_STEP_SUMMARY` when the wall-clock gate trips.
//!
//! Everything here is deterministic: same two documents in, same
//! report out, bit for bit.

use std::collections::BTreeMap;

use jcr_ctx::obs::wire::{WireHistogram, WireSnapshot};
use jcr_ctx::obs::Unit;

use crate::json::Json;
use crate::{fmt, print_table};

/// Options for [`run`] (the `experiments diff` subcommand).
#[derive(Clone, Debug)]
pub struct DiffOpts {
    /// Restrict span attribution to one top-level phase: matches a root
    /// child named `<phase>` or `phase.<phase>`.
    pub phase: Option<String>,
    /// Rows per table.
    pub top: usize,
    /// Also print the width-vs-width efficiency report (requires both
    /// snapshots to carry a `workers` meta entry).
    pub workers_compare: bool,
    /// Write the canonical JSON report here.
    pub out: Option<String>,
}

impl Default for DiffOpts {
    fn default() -> Self {
        DiffOpts {
            phase: None,
            top: 10,
            workers_compare: false,
            out: None,
        }
    }
}

/// One span path's contribution to the wall-clock difference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanDelta {
    /// `;`-joined span names from the attribution root down.
    pub path: String,
    /// Completed entries in A / B.
    pub count_a: u64,
    /// See `count_a`.
    pub count_b: u64,
    /// Total nanoseconds in A / B.
    pub total_a_ns: u64,
    /// See `total_a_ns`.
    pub total_b_ns: u64,
    /// Self nanoseconds (total − children) in A / B.
    pub self_a_ns: u64,
    /// See `self_a_ns`.
    pub self_b_ns: u64,
}

impl SpanDelta {
    /// Signed self-time delta, B − A.
    pub fn self_delta_ns(&self) -> i128 {
        self.self_b_ns as i128 - self.self_a_ns as i128
    }

    /// Signed total-time delta, B − A.
    pub fn total_delta_ns(&self) -> i128 {
        self.total_b_ns as i128 - self.total_a_ns as i128
    }

    fn is_zero(&self) -> bool {
        self.count_a == self.count_b
            && self.total_a_ns == self.total_b_ns
            && self.self_a_ns == self.self_b_ns
    }
}

/// One counter whose value changed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Value in A (0 if absent).
    pub a: u64,
    /// Value in B (0 if absent).
    pub b: u64,
}

impl CounterDelta {
    /// Signed delta, B − A.
    pub fn delta(&self) -> i128 {
        self.b as i128 - self.a as i128
    }
}

/// One histogram whose distribution moved.
#[derive(Clone, Debug)]
pub struct HistogramShift {
    /// Histogram name.
    pub name: String,
    /// Unit both sides record (a unit mismatch is reported as a full
    /// shift of the A side's unit).
    pub unit: Unit,
    /// Observation counts.
    pub count_a: u64,
    /// See `count_a`.
    pub count_b: u64,
    /// Total-variation distance between the normalized log₂-bucket
    /// distributions: 0 = identical shape, 1 = disjoint. This is the
    /// fraction of probability mass that moved between buckets.
    pub moved_mass: f64,
    /// p50 upper bounds.
    pub p50_a: u64,
    /// See `p50_a`.
    pub p50_b: u64,
    /// p95 upper bounds.
    pub p95_a: u64,
    /// See `p95_a`.
    pub p95_b: u64,
    /// Means.
    pub mean_a: f64,
    /// See `mean_a`.
    pub mean_b: f64,
}

/// The attributed delta report between two snapshots.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Phase restriction the report was computed under, if any.
    pub phase: Option<String>,
    /// Wall clock of the attribution root in A / B, nanoseconds (the
    /// sum of top-level span totals, or the phase node's total).
    pub wall_a_ns: u64,
    /// See `wall_a_ns`.
    pub wall_b_ns: u64,
    /// Changed span paths, ranked by `|Δself|` descending (ties by
    /// path).
    pub spans: Vec<SpanDelta>,
    /// Changed counters, ranked by `|Δ|` descending (ties by name).
    pub counters: Vec<CounterDelta>,
    /// Shifted histograms, ranked by moved mass descending (ties by
    /// name).
    pub histograms: Vec<HistogramShift>,
}

impl DiffReport {
    /// Signed wall-clock delta, B − A.
    pub fn wall_delta_ns(&self) -> i128 {
        self.wall_b_ns as i128 - self.wall_a_ns as i128
    }

    /// Signed sum of the span self-time deltas — the part of the
    /// wall-clock delta the report attributes to named spans. Equal to
    /// [`DiffReport::wall_delta_ns`] up to the saturating clamp on
    /// negative self times (clock jitter), i.e. ≥ 90% in practice and
    /// usually 100%.
    pub fn attributed_ns(&self) -> i128 {
        self.spans.iter().map(SpanDelta::self_delta_ns).sum()
    }

    /// Fraction of the wall-clock delta attributed to named spans
    /// (1.0 when the delta is zero).
    pub fn attributed_fraction(&self) -> f64 {
        let wall = self.wall_delta_ns();
        if wall == 0 {
            1.0
        } else {
            self.attributed_ns() as f64 / wall as f64
        }
    }

    /// True iff the two snapshots were observationally identical over
    /// the compared scope: equal walls and no span, counter, or
    /// histogram deltas.
    pub fn is_zero(&self) -> bool {
        self.wall_a_ns == self.wall_b_ns
            && self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
    }

    /// Canonical JSON rendering (exact integers as decimal strings,
    /// sorted keys, stable row order).
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert("kind".to_string(), Json::Str("jcr-obs-diff".to_string()));
        top.insert("schema".to_string(), Json::Num(1.0));
        top.insert(
            "phase".to_string(),
            match &self.phase {
                Some(p) => Json::Str(p.clone()),
                None => Json::Null,
            },
        );
        top.insert(
            "wall_a_ns".to_string(),
            Json::Str(self.wall_a_ns.to_string()),
        );
        top.insert(
            "wall_b_ns".to_string(),
            Json::Str(self.wall_b_ns.to_string()),
        );
        top.insert(
            "wall_delta_ns".to_string(),
            Json::Str(self.wall_delta_ns().to_string()),
        );
        top.insert(
            "attributed_ns".to_string(),
            Json::Str(self.attributed_ns().to_string()),
        );
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let mut o = BTreeMap::new();
                o.insert("path".to_string(), Json::Str(s.path.clone()));
                o.insert("count_a".to_string(), Json::Str(s.count_a.to_string()));
                o.insert("count_b".to_string(), Json::Str(s.count_b.to_string()));
                o.insert(
                    "total_a_ns".to_string(),
                    Json::Str(s.total_a_ns.to_string()),
                );
                o.insert(
                    "total_b_ns".to_string(),
                    Json::Str(s.total_b_ns.to_string()),
                );
                o.insert("self_a_ns".to_string(), Json::Str(s.self_a_ns.to_string()));
                o.insert("self_b_ns".to_string(), Json::Str(s.self_b_ns.to_string()));
                o.insert(
                    "self_delta_ns".to_string(),
                    Json::Str(s.self_delta_ns().to_string()),
                );
                Json::Obj(o)
            })
            .collect();
        top.insert("spans".to_string(), Json::Arr(spans));
        let counters = self
            .counters
            .iter()
            .map(|c| {
                let mut o = BTreeMap::new();
                o.insert("name".to_string(), Json::Str(c.name.clone()));
                o.insert("a".to_string(), Json::Str(c.a.to_string()));
                o.insert("b".to_string(), Json::Str(c.b.to_string()));
                o.insert("delta".to_string(), Json::Str(c.delta().to_string()));
                Json::Obj(o)
            })
            .collect();
        top.insert("counters".to_string(), Json::Arr(counters));
        let hists = self
            .histograms
            .iter()
            .map(|h| {
                let mut o = BTreeMap::new();
                o.insert("name".to_string(), Json::Str(h.name.clone()));
                o.insert("unit".to_string(), Json::Str(h.unit.name().to_string()));
                o.insert("count_a".to_string(), Json::Str(h.count_a.to_string()));
                o.insert("count_b".to_string(), Json::Str(h.count_b.to_string()));
                o.insert("moved_mass".to_string(), Json::Num(h.moved_mass));
                o.insert("p50_a".to_string(), Json::Str(h.p50_a.to_string()));
                o.insert("p50_b".to_string(), Json::Str(h.p50_b.to_string()));
                o.insert("p95_a".to_string(), Json::Str(h.p95_a.to_string()));
                o.insert("p95_b".to_string(), Json::Str(h.p95_b.to_string()));
                Json::Obj(o)
            })
            .collect();
        top.insert("histograms".to_string(), Json::Arr(hists));
        Json::Obj(top)
    }

    /// Prints the human report: wall summary plus the top-`top` span,
    /// counter, and histogram tables.
    pub fn print(&self, top: usize) {
        let scope = match &self.phase {
            Some(p) => format!(" (phase {p})"),
            None => String::new(),
        };
        println!(
            "\nwall{scope}: {} ms -> {} ms  (delta {} ms, {:.1}% attributed to spans)",
            fmt(self.wall_a_ns as f64 / 1e6),
            fmt(self.wall_b_ns as f64 / 1e6),
            fmt_signed_ms(self.wall_delta_ns()),
            self.attributed_fraction() * 100.0
        );
        if self.is_zero() {
            println!("zero deltas: the snapshots are observationally identical");
            return;
        }
        if self.spans.is_empty() {
            println!("no span deltas");
        } else {
            let header: Vec<String> = [
                "span",
                "calls A",
                "calls B",
                "self A ms",
                "self B ms",
                "d self ms",
                "share %",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let wall = self.wall_delta_ns();
            let rows: Vec<Vec<String>> = self
                .spans
                .iter()
                .take(top)
                .map(|s| {
                    vec![
                        s.path.clone(),
                        s.count_a.to_string(),
                        s.count_b.to_string(),
                        fmt(s.self_a_ns as f64 / 1e6),
                        fmt(s.self_b_ns as f64 / 1e6),
                        fmt_signed_ms(s.self_delta_ns()),
                        if wall == 0 {
                            "-".to_string()
                        } else {
                            format!("{:.1}", s.self_delta_ns() as f64 / wall as f64 * 100.0)
                        },
                    ]
                })
                .collect();
            print_table(
                &format!(
                    "Span attribution (top {} of {} by |d self|)",
                    rows.len(),
                    self.spans.len()
                ),
                &header,
                &rows,
            );
        }
        if !self.counters.is_empty() {
            let header: Vec<String> = ["counter", "A", "B", "delta"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let rows: Vec<Vec<String>> = self
                .counters
                .iter()
                .take(top)
                .map(|c| {
                    vec![
                        c.name.clone(),
                        c.a.to_string(),
                        c.b.to_string(),
                        format!("{:+}", c.delta()),
                    ]
                })
                .collect();
            print_table(
                &format!(
                    "Counter deltas (top {} of {})",
                    rows.len(),
                    self.counters.len()
                ),
                &header,
                &rows,
            );
        }
        if !self.histograms.is_empty() {
            let header: Vec<String> = [
                "histogram",
                "unit",
                "n A",
                "n B",
                "moved",
                "p50 A",
                "p50 B",
                "p95 A",
                "p95 B",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let rows: Vec<Vec<String>> = self
                .histograms
                .iter()
                .take(top)
                .map(|h| {
                    vec![
                        h.name.clone(),
                        h.unit.name().to_string(),
                        h.count_a.to_string(),
                        h.count_b.to_string(),
                        format!("{:.3}", h.moved_mass),
                        h.p50_a.to_string(),
                        h.p50_b.to_string(),
                        h.p95_a.to_string(),
                        h.p95_b.to_string(),
                    ]
                })
                .collect();
            print_table(
                &format!(
                    "Histogram shifts (top {} of {} by moved mass)",
                    rows.len(),
                    self.histograms.len()
                ),
                &header,
                &rows,
            );
        }
    }

    /// Markdown span-attribution table for `$GITHUB_STEP_SUMMARY`.
    pub fn markdown_table(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "wall: {} ms \u{2192} {} ms (\u{0394} {} ms, {:.1}% attributed)\n\n",
            fmt(self.wall_a_ns as f64 / 1e6),
            fmt(self.wall_b_ns as f64 / 1e6),
            fmt_signed_ms(self.wall_delta_ns()),
            self.attributed_fraction() * 100.0
        ));
        if self.spans.is_empty() {
            out.push_str("no span deltas\n");
            return out;
        }
        out.push_str(
            "| span | self A (ms) | self B (ms) | \u{0394} self (ms) | share of \u{0394} |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|\n");
        let wall = self.wall_delta_ns();
        for s in self.spans.iter().take(top) {
            let share = if wall == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", s.self_delta_ns() as f64 / wall as f64 * 100.0)
            };
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                s.path,
                fmt(s.self_a_ns as f64 / 1e6),
                fmt(s.self_b_ns as f64 / 1e6),
                fmt_signed_ms(s.self_delta_ns()),
                share
            ));
        }
        out
    }
}

fn fmt_signed_ms(ns: i128) -> String {
    let ms = ns as f64 / 1e6;
    if ms == 0.0 {
        "+0".to_string()
    } else {
        format!("{ms:+.3}")
    }
}

/// Finds the attribution root for `phase` in `snap`: a root child
/// named `phase` or `phase.<phase>`.
fn phase_root(snap: &WireSnapshot, phase: &str, which: &str) -> Result<usize, String> {
    let prefixed = format!("phase.{phase}");
    snap.nodes[0]
        .children
        .iter()
        .copied()
        .find(|&c| snap.nodes[c].name == phase || snap.nodes[c].name == prefixed)
        .ok_or_else(|| {
            let have: Vec<&str> = snap.nodes[0]
                .children
                .iter()
                .map(|&c| snap.nodes[c].name.as_str())
                .collect();
            format!(
                "phase {phase:?} not found in snapshot {which} (top-level spans: {})",
                have.join(", ")
            )
        })
}

/// Flattens `root`'s subtree to `path → (count, total, self)`. The
/// subtree root itself is included unless it is the synthetic node 0.
fn flatten(snap: &WireSnapshot, root: usize) -> BTreeMap<String, (u64, u64, u64)> {
    let mut map = BTreeMap::new();
    fn walk(
        snap: &WireSnapshot,
        node: usize,
        prefix: &str,
        map: &mut BTreeMap<String, (u64, u64, u64)>,
    ) {
        let n = &snap.nodes[node];
        let path = if prefix.is_empty() {
            n.name.clone()
        } else {
            format!("{prefix};{}", n.name)
        };
        map.insert(path.clone(), (n.count, n.total_nanos, n.self_nanos()));
        for &c in &n.children {
            walk(snap, c, &path, map);
        }
    }
    if root == 0 {
        for &c in &snap.nodes[0].children {
            walk(snap, c, "", &mut map);
        }
    } else {
        walk(snap, root, "", &mut map);
    }
    map
}

fn empty_like(unit: Unit) -> WireHistogram {
    WireHistogram {
        unit,
        buckets: BTreeMap::new(),
        count: 0,
        sum: 0,
        min: 0,
        max: 0,
    }
}

fn histogram_shift(name: &str, a: &WireHistogram, b: &WireHistogram) -> HistogramShift {
    let moved_mass = if a.count == 0 && b.count == 0 {
        0.0
    } else if a.count == 0 || b.count == 0 {
        1.0
    } else {
        let mut tv = 0.0;
        let indices: std::collections::BTreeSet<usize> =
            a.buckets.keys().chain(b.buckets.keys()).copied().collect();
        for i in indices {
            let pa = *a.buckets.get(&i).unwrap_or(&0) as f64 / a.count as f64;
            let pb = *b.buckets.get(&i).unwrap_or(&0) as f64 / b.count as f64;
            tv += (pa - pb).abs();
        }
        tv / 2.0
    };
    // The wire invariants were validated at parse time, so the rebuild
    // cannot fail; fall back to an empty histogram defensively.
    let qa = a
        .to_histogram()
        .unwrap_or_else(|_| jcr_ctx::obs::Histogram::new(a.unit));
    let qb = b
        .to_histogram()
        .unwrap_or_else(|_| jcr_ctx::obs::Histogram::new(b.unit));
    HistogramShift {
        name: name.to_string(),
        unit: a.unit,
        count_a: a.count,
        count_b: b.count,
        moved_mass,
        p50_a: qa.quantile(0.5),
        p50_b: qb.quantile(0.5),
        p95_a: qa.quantile(0.95),
        p95_b: qb.quantile(0.95),
        mean_a: qa.mean(),
        mean_b: qb.mean(),
    }
}

/// Computes the attributed delta report from A to B, optionally
/// restricted to one top-level phase.
///
/// # Errors
///
/// If `phase` names a top-level span missing from either snapshot.
pub fn diff_snapshots(
    a: &WireSnapshot,
    b: &WireSnapshot,
    phase: Option<&str>,
) -> Result<DiffReport, String> {
    let (root_a, root_b, wall_a, wall_b) = match phase {
        Some(p) => {
            let ra = phase_root(a, p, "A")?;
            let rb = phase_root(b, p, "B")?;
            (ra, rb, a.nodes[ra].total_nanos, b.nodes[rb].total_nanos)
        }
        None => (0, 0, a.total_span_nanos(), b.total_span_nanos()),
    };
    let flat_a = flatten(a, root_a);
    let flat_b = flatten(b, root_b);
    let mut spans = Vec::new();
    let paths: std::collections::BTreeSet<&String> = flat_a.keys().chain(flat_b.keys()).collect();
    for path in paths {
        let (ca, ta, sa) = flat_a.get(path).copied().unwrap_or((0, 0, 0));
        let (cb, tb, sb) = flat_b.get(path).copied().unwrap_or((0, 0, 0));
        let d = SpanDelta {
            path: path.clone(),
            count_a: ca,
            count_b: cb,
            total_a_ns: ta,
            total_b_ns: tb,
            self_a_ns: sa,
            self_b_ns: sb,
        };
        if !d.is_zero() {
            spans.push(d);
        }
    }
    spans.sort_by(|x, y| {
        y.self_delta_ns()
            .abs()
            .cmp(&x.self_delta_ns().abs())
            .then_with(|| x.path.cmp(&y.path))
    });
    let mut counters = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        a.counters.keys().chain(b.counters.keys()).collect();
    for name in names {
        let va = a.counters.get(name).copied().unwrap_or(0);
        let vb = b.counters.get(name).copied().unwrap_or(0);
        if va != vb {
            counters.push(CounterDelta {
                name: name.clone(),
                a: va,
                b: vb,
            });
        }
    }
    counters.sort_by(|x, y| {
        y.delta()
            .abs()
            .cmp(&x.delta().abs())
            .then_with(|| x.name.cmp(&y.name))
    });
    let mut histograms = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        a.histograms.keys().chain(b.histograms.keys()).collect();
    for name in names {
        let ha = a.histograms.get(name);
        let hb = b.histograms.get(name);
        if ha == hb {
            continue;
        }
        let unit = ha.or(hb).expect("one side present").unit;
        let ea = empty_like(unit);
        let eb = empty_like(unit);
        histograms.push(histogram_shift(name, ha.unwrap_or(&ea), hb.unwrap_or(&eb)));
    }
    histograms.sort_by(|x, y| {
        y.moved_mass
            .partial_cmp(&x.moved_mass)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(&y.name))
    });
    Ok(DiffReport {
        phase: phase.map(str::to_string),
        wall_a_ns: wall_a,
        wall_b_ns: wall_b,
        spans,
        counters,
        histograms,
    })
}

/// Reads `workers` from a snapshot's meta.
fn workers_of(snap: &WireSnapshot, which: &str) -> Result<u64, String> {
    snap.meta
        .get("workers")
        .ok_or_else(|| format!("snapshot {which} records no \"workers\" meta entry"))?
        .parse::<u64>()
        .map_err(|e| format!("snapshot {which}: bad workers meta: {e}"))
}

/// Prints the width-vs-width efficiency report: per-span speedup and
/// parallel efficiency for the top spans by A total time, plus pool
/// utilization from the per-worker accounting.
pub fn print_workers_compare(a: &WireSnapshot, b: &WireSnapshot, top: usize) -> Result<(), String> {
    let wa = workers_of(a, "A")?;
    let wb = workers_of(b, "B")?;
    if wa == 0 || wb == 0 {
        return Err("workers meta must be positive".to_string());
    }
    let width_ratio = wb as f64 / wa as f64;
    let flat_a = flatten(a, 0);
    let flat_b = flatten(b, 0);
    let mut rows: Vec<(&String, u64, u64)> = flat_a
        .iter()
        .filter_map(|(path, &(_, ta, _))| flat_b.get(path).map(|&(_, tb, _)| (path, ta, tb)))
        .collect();
    rows.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(y.0)));
    let header: Vec<String> = [
        "span",
        &format!("total@{wa}w ms"),
        &format!("total@{wb}w ms"),
        "speedup",
        "efficiency",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .take(top)
        .map(|&(path, ta, tb)| {
            let speedup = if tb == 0 {
                f64::NAN
            } else {
                ta as f64 / tb as f64
            };
            vec![
                path.clone(),
                fmt(ta as f64 / 1e6),
                fmt(tb as f64 / 1e6),
                fmt(speedup),
                fmt(speedup / width_ratio),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Width comparison: {wa} -> {wb} workers (top {} spans by A total)",
            table.len()
        ),
        &header,
        &table,
    );
    let pool = |snap: &WireSnapshot, name: &str| -> f64 {
        snap.histograms
            .get(name)
            .map_or(0.0, |h| h.sum as f64 / 1e6)
    };
    let util = |snap: &WireSnapshot| -> f64 {
        let busy = pool(snap, "pool.worker_busy_ns");
        let idle = pool(snap, "pool.worker_idle_ns");
        let steal = pool(snap, "pool.steal_wait_ns");
        let denom = busy + idle + steal;
        if denom == 0.0 {
            0.0
        } else {
            busy / denom
        }
    };
    let header: Vec<String> = [
        "side",
        "busy ms",
        "idle ms",
        "steal ms",
        "util",
        "imbalance",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let pool_rows: Vec<Vec<String>> = [("A", a, wa), ("B", b, wb)]
        .iter()
        .map(|&(side, snap, w)| {
            vec![
                format!("{side} ({w}w)"),
                fmt(pool(snap, "pool.worker_busy_ns")),
                fmt(pool(snap, "pool.worker_idle_ns")),
                fmt(pool(snap, "pool.steal_wait_ns")),
                format!("{:.2}", util(snap)),
                snap.gauge("pool.imbalance")
                    .map_or("-".to_string(), |g| format!("{g:.2}")),
            ]
        })
        .collect();
    print_table("Pool accounting", &header, &pool_rows);
    Ok(())
}

/// Loads a wire snapshot from disk.
///
/// # Errors
///
/// Unreadable file or invalid document.
pub fn load(path: &str) -> Result<WireSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    WireSnapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// The `experiments diff <a> <b>` entry point: loads both snapshots,
/// prints the report (and the width comparison if requested), and
/// optionally writes the canonical JSON report. Returning `Ok` means
/// exit status 0 — a self-diff reports zero deltas and succeeds.
///
/// # Errors
///
/// Unreadable/invalid snapshots, an unknown `--phase`, or a failed
/// report write.
pub fn run(a_path: &str, b_path: &str, opts: &DiffOpts) -> Result<(), String> {
    let a = load(a_path)?;
    let b = load(b_path)?;
    println!("## Differential profile: {a_path} -> {b_path}");
    let report = diff_snapshots(&a, &b, opts.phase.as_deref())?;
    report.print(opts.top);
    if opts.workers_compare {
        print_workers_compare(&a, &b, opts.top)?;
    }
    if let Some(out) = &opts.out {
        std::fs::write(out, report.to_json().render())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("[diff] wrote {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_ctx::SolverContext;

    fn snap(ms_in_slow: u64) -> WireSnapshot {
        let ctx = SolverContext::default();
        {
            let _p = ctx.span("prep");
        }
        {
            let _s = ctx.span("slow");
            let t0 = std::time::Instant::now();
            while t0.elapsed().as_millis() < ms_in_slow as u128 {
                std::hint::spin_loop();
            }
        }
        ctx.obs().add_counter("widgets", 1 + ms_in_slow);
        ctx.obs().record("sizes", Unit::Count, ms_in_slow + 1);
        WireSnapshot::from_snapshot(&ctx.obs_snapshot())
    }

    #[test]
    fn self_diff_is_zero() {
        let a = snap(0);
        let report = diff_snapshots(&a, &a, None).unwrap();
        assert!(report.is_zero());
        assert_eq!(report.attributed_fraction(), 1.0);
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.histograms.is_empty());
    }

    #[test]
    fn slow_span_ranks_first_and_attribution_is_exact() {
        let a = snap(0);
        let b = snap(15);
        let report = diff_snapshots(&a, &b, None).unwrap();
        assert_eq!(report.spans[0].path, "slow");
        assert!(report.wall_delta_ns() > 10_000_000, "15ms spin dominates");
        // Flat trees have no saturating clamp: attribution is exact.
        assert_eq!(report.attributed_ns(), report.wall_delta_ns());
        assert_eq!(report.counters[0].name, "widgets");
        assert_eq!(report.counters[0].delta(), 15);
        assert_eq!(report.histograms[0].name, "sizes");
        assert!(report.histograms[0].moved_mass > 0.0);
    }

    #[test]
    fn phase_restriction_errors_on_unknown_phase() {
        let a = snap(0);
        let err = diff_snapshots(&a, &a, Some("nope")).unwrap_err();
        assert!(err.contains("not found"), "{err}");
    }

    #[test]
    fn report_json_is_canonical() {
        let report = diff_snapshots(&snap(0), &snap(15), None).unwrap();
        let text = report.to_json().render();
        let reparsed = Json::parse(&text).expect("canonical JSON parses");
        assert_eq!(reparsed.render(), text);
    }
}
