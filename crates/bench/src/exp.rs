//! One function per table/figure of the paper's evaluation. Each prints
//! the series behind the published plot as aligned text tables
//! ("true" = decisions on true demand, "pred" = decisions on GPR-predicted
//! demand evaluated against the truth — the paper's light/dark bars).

use std::time::Instant;

use jcr_ctx::rng::SeedableRng;
use jcr_ctx::rng::StdRng;

use jcr_core::prelude::*;
use jcr_core::{alg2, fcfr, hetero, rnr};
use jcr_graph::DiGraph;
use jcr_topo::TopologyKind;
use jcr_trace::videos::TABLE1;

use crate::{
    build_instance, build_instance_with, flatten_rates, fmt, mean, print_table, Level, Scenario,
};

/// Shared experiment knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Monte-Carlo runs (request-distribution seeds); the paper uses 100.
    pub runs: usize,
    /// Evaluation hours simulated per run.
    pub hours: usize,
    /// Paper-scale parameters (slower) instead of the quick defaults.
    pub full: bool,
    /// Base seed offsetting every scenario (topology, trace, shares).
    pub seed: u64,
    /// Worker threads for Monte-Carlo fan-out (`0` = the context default:
    /// `JCR_WORKERS` or the machine's available parallelism).
    pub workers: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            runs: 3,
            hours: 2,
            full: false,
            seed: 0,
            workers: 0,
        }
    }
}

impl ExpConfig {
    /// Applies the base seed to a scenario.
    fn seeded(&self, mut sc: Scenario) -> Scenario {
        sc.seed = sc.seed.wrapping_add(self.seed);
        sc.share_seed = sc.share_seed.wrapping_add(self.seed);
        sc
    }

    /// A context whose pool width follows `self.workers` (0 = default).
    pub(crate) fn pool_ctx(&self) -> jcr_ctx::SolverContext {
        let ctx = jcr_ctx::SolverContext::new();
        if self.workers == 0 {
            ctx
        } else {
            ctx.with_workers(self.workers)
        }
    }
}

/// Solver closure: instance + context → solution (thread-safe so
/// Monte-Carlo runs can evaluate in parallel). The context carries the
/// budget, probe, and metrics registry the solve should charge.
pub type AlgoRun =
    Box<dyn Fn(&Instance, &jcr_ctx::SolverContext) -> Result<Solution, JcrError> + Send + Sync>;

/// Builds the per-run contexts of a Monte-Carlo sweep. Called once per
/// run on the evaluating worker thread; the produced context's stats and
/// observability snapshot are absorbed back into the sweep's context, so
/// every inner solve feeds one shared registry.
pub type CtxFactory<'a> = &'a (dyn Fn() -> jcr_ctx::SolverContext + Sync);

/// An algorithm under evaluation.
pub struct Algo {
    /// Display name (the paper's legend label).
    pub name: String,
    /// Solver closure.
    pub run: AlgoRun,
}

impl Algo {
    fn new(
        name: &str,
        run: impl Fn(&Instance, &jcr_ctx::SolverContext) -> Result<Solution, JcrError>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        Algo {
            name: name.to_string(),
            run: Box::new(run),
        }
    }
}

/// Aggregated metrics of one algorithm on one scenario point.
#[derive(Clone, Copy, Debug, Default)]
pub struct Metrics {
    /// Routing cost (decisions on true demand).
    pub cost_true: f64,
    /// Congestion (decisions on true demand).
    pub congestion_true: f64,
    /// Max cache occupancy ratio (true-demand decisions).
    pub occupancy_true: f64,
    /// Routing cost (decisions on predicted demand, evaluated on truth).
    pub cost_pred: f64,
    /// Congestion (predicted-demand decisions, evaluated on truth).
    pub congestion_pred: f64,
    /// Max cache occupancy ratio (predicted-demand decisions).
    pub occupancy_pred: f64,
}

/// Runs every algorithm over `runs × hours` instances of a scenario and
/// averages the metrics (the paper's Monte-Carlo protocol). Runs fan out
/// over the deterministic pool ([`jcr_ctx::par`]); per-run samples are
/// merged in run order, so the float accumulation — and thus every mean —
/// is bit-identical for any worker count.
pub fn evaluate(scenario: &Scenario, algos: &[Algo], cfg: ExpConfig) -> Vec<Metrics> {
    evaluate_with_factory(scenario, algos, cfg, &default_factory)
}

/// The factory [`evaluate`] uses: a fresh single-worker context per run
/// (the fan-out is one level deep, so inner solves stay serial).
pub fn default_factory() -> jcr_ctx::SolverContext {
    jcr_ctx::SolverContext::new().with_workers(1)
}

/// [`evaluate`] with an explicit per-run context factory (ROADMAP item):
/// each Monte-Carlo run solves under one `factory()` context whose
/// budget and probe the caller controls, and whose counters, span tree,
/// and histograms are absorbed back into the sweep — so an entire sweep
/// feeds a single metrics registry instead of discarding one default
/// context per solve.
pub fn evaluate_with_factory(
    scenario: &Scenario,
    algos: &[Algo],
    cfg: ExpConfig,
    factory: CtxFactory<'_>,
) -> Vec<Metrics> {
    evaluate_in(&cfg.pool_ctx(), scenario, algos, cfg, factory)
}

/// [`evaluate_with_factory`] under an explicit sweep context: the fan-out
/// runs on `sweep`'s pool and every run's stats/observability land on
/// `sweep`, so the caller can export the aggregated registry afterwards
/// (`cfg.workers` is ignored in favour of `sweep.workers()`).
pub fn evaluate_in(
    sweep: &jcr_ctx::SolverContext,
    scenario: &Scenario,
    algos: &[Algo],
    cfg: ExpConfig,
    factory: CtxFactory<'_>,
) -> Vec<Metrics> {
    // Everything share-seed-independent is hoisted out of the fan-out:
    // the topology (one generator run, cloned per instance) and the
    // trace + GPR demand base (shared via `Arc`). Each run then only
    // redraws its edge shares and builds its hourly instances — the
    // per-run closure no longer regenerates identical state `runs` times.
    let topo = scenario.topology();
    let n_edges = topo.edge_nodes.len();
    let base = {
        let mut sc = scenario.clone();
        sc.hours = cfg.hours.max(1);
        sc.demand_base()
    };
    let runs: Vec<usize> = (0..cfg.runs).collect();
    let _s = sweep.span("exp.evaluate");
    let per_run: Vec<Vec<Vec<f64>>> = jcr_ctx::par::par_map(sweep, &runs, |wctx, _, &run| {
        let mut sc = scenario.clone();
        sc.share_seed = scenario.share_seed.wrapping_add(run as u64 * 1009);
        sc.hours = cfg.hours.max(1);
        let demand = sc.demand_from(&base, n_edges);
        let run_ctx = factory();
        let mut local: Vec<Vec<f64>> = vec![Vec::new(); algos.len() * 6];
        for h in 0..sc.hours {
            let true_rates = demand.true_rates(h, n_edges);
            let pred_rates = demand.predicted_rates(h, n_edges);
            let inst_true = build_instance_with(&topo, &sc, &true_rates);
            let inst_pred = build_instance_with(&topo, &sc, &pred_rates);
            let floored_true: Vec<f64> = flatten_rates(&true_rates)
                .into_iter()
                .map(|r| r.max(1e-6))
                .collect();
            for (ai, algo) in algos.iter().enumerate() {
                if let Ok(sol) = (algo.run)(&inst_true, &run_ctx) {
                    local[ai * 6].push(sol.cost(&inst_true));
                    local[ai * 6 + 1].push(sol.congestion(&inst_true));
                    local[ai * 6 + 2].push(sol.placement.max_occupancy_ratio(&inst_true));
                }
                if let Ok(sol) = (algo.run)(&inst_pred, &run_ctx) {
                    let (cost, congestion) = sol.evaluate_under(&inst_pred, &floored_true);
                    local[ai * 6 + 3].push(cost);
                    local[ai * 6 + 4].push(congestion);
                    local[ai * 6 + 5].push(sol.placement.max_occupancy_ratio(&inst_pred));
                }
            }
        }
        wctx.absorb_stats(&run_ctx.stats());
        wctx.absorb_obs(&run_ctx.obs_snapshot());
        local
    });
    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); algos.len() * 6];
    for local in per_run {
        for (dst, src) in acc.iter_mut().zip(local) {
            dst.extend(src);
        }
    }
    (0..algos.len())
        .map(|ai| Metrics {
            cost_true: mean(&acc[ai * 6]),
            congestion_true: mean(&acc[ai * 6 + 1]),
            occupancy_true: mean(&acc[ai * 6 + 2]),
            cost_pred: mean(&acc[ai * 6 + 3]),
            congestion_pred: mean(&acc[ai * 6 + 4]),
            occupancy_pred: mean(&acc[ai * 6 + 5]),
        })
        .collect()
}

// ----- algorithm rosters ----------------------------------------------------

/// Greedy placement + RNR routing (our file-level solver under unlimited
/// link capacities, Theorem 5.2).
fn greedy_rnr(inst: &Instance, _ctx: &jcr_ctx::SolverContext) -> Result<Solution, JcrError> {
    let placement = hetero::greedy_placement_rnr(inst);
    let routing = rnr::route_to_nearest_replica(inst, &placement).ok_or(JcrError::Infeasible)?;
    Ok(Solution { placement, routing })
}

/// The uncapacitated roster of Fig. 5.
fn fig5_algos(level: Level, k: usize) -> Vec<Algo> {
    let ours = match level {
        Level::Chunk { .. } => Algo::new("Alg1 (ours)", |inst, ctx| {
            Algorithm1::new().solve_with_context(inst, ctx)
        }),
        Level::File => Algo::new("greedy (ours)", greedy_rnr),
    };
    vec![
        ours,
        Algo::new("k shortest paths [3]", move |inst, ctx| {
            IoannidisYeh::k_shortest(k).solve_with_context(inst, ctx)
        }),
        Algo::new("shortest path [38]", |inst, ctx| {
            ShortestPathPlacement.solve_with_context(inst, ctx)
        }),
    ]
}

/// The general-case roster of Figs. 7–8, 11–13, 15.
fn general_algos(seed: u64) -> Vec<Algo> {
    vec![
        Algo::new("alternating (ours)", move |inst, ctx| {
            Alternating {
                seed,
                ..Alternating::default()
            }
            .solve_with_context(inst, ctx)
            .map(|r| r.solution)
        }),
        Algo::new("SP [38]", |inst, ctx| {
            ShortestPathPlacement.solve_with_context(inst, ctx)
        }),
        Algo::new("SP + RNR [3]", |inst, ctx| {
            IoannidisYeh::sp_rnr().solve_with_context(inst, ctx)
        }),
        Algo::new("k-SP + RNR [3]", |inst, ctx| {
            IoannidisYeh::ksp_rnr(10).solve_with_context(inst, ctx)
        }),
    ]
}

fn metrics_row(label: String, ms: &[Metrics], with_occupancy: bool) -> Vec<String> {
    let mut row = vec![label];
    for m in ms {
        row.push(fmt(m.cost_true));
        row.push(fmt(m.cost_pred));
        row.push(fmt(m.congestion_true));
        row.push(fmt(m.congestion_pred));
        if with_occupancy {
            row.push(fmt(m.occupancy_true.max(m.occupancy_pred)));
        }
    }
    row
}

fn metrics_header(algos: &[Algo], sweep: &str, with_occupancy: bool) -> Vec<String> {
    let mut h = vec![sweep.to_string()];
    for a in algos {
        h.push(format!("{}:cost", a.name));
        h.push("cost(pred)".into());
        h.push("cong".into());
        h.push("cong(pred)".into());
        if with_occupancy {
            h.push("occ".into());
        }
    }
    h
}

// ----- figures ---------------------------------------------------------------

/// Fig. 4: demand prediction vs ground truth.
pub fn fig4(cfg: ExpConfig) {
    let mut sc = Scenario::chunk_default();
    sc.n_videos = TABLE1.len().min(12);
    sc.hours = if cfg.full { 24 } else { cfg.hours.max(6) };
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let mut rows = Vec::new();
    for (vi, video) in TABLE1.iter().enumerate().take(sc.n_videos.min(4)) {
        let (truth, pred) = demand.views_series(vi);
        for h in 0..sc.hours {
            rows.push(vec![
                video.id.to_string(),
                h.to_string(),
                fmt(truth[h]),
                fmt(pred[h]),
            ]);
        }
    }
    print_table(
        "Fig. 4 — #views per hour, ground truth vs GPR prediction (first 4 videos)",
        &[
            "video".into(),
            "hour".into(),
            "truth".into(),
            "prediction".into(),
        ],
        &rows,
    );
    // RMSE summary across all videos.
    let mut rows = Vec::new();
    for (vi, video) in TABLE1.iter().enumerate().take(sc.n_videos) {
        let (truth, pred) = demand.views_series(vi);
        let rmse = (truth
            .iter()
            .zip(&pred)
            .map(|(t, p)| (t - p).powi(2))
            .sum::<f64>()
            / truth.len() as f64)
            .sqrt();
        let mean_views = mean(&truth);
        rows.push(vec![
            video.id.to_string(),
            fmt(mean_views),
            fmt(rmse),
            fmt(rmse / mean_views),
        ]);
    }
    print_table(
        "Fig. 4 (summary) — prediction RMSE per video",
        &[
            "video".into(),
            "mean views/h".into(),
            "RMSE".into(),
            "relative".into(),
        ],
        &rows,
    );
}

/// Fig. 5: unlimited link capacities — cost (and occupancy at file level)
/// vs cache capacity ζ and vs the number of candidate paths k.
pub fn fig5(cfg: ExpConfig) {
    // Chunk level, ζ sweep.
    let zetas_chunk: &[f64] = if cfg.full {
        &[4.0, 8.0, 12.0, 16.0, 20.0]
    } else {
        &[6.0, 12.0, 18.0]
    };
    let mut rows = Vec::new();
    let mut header = Vec::new();
    for &zeta in zetas_chunk {
        let mut sc = cfg.seeded(Scenario::chunk_default());
        sc.kappa_fraction = None;
        sc.zeta = zeta;
        let algos = fig5_algos(sc.level, 10);
        let ms = evaluate(&sc, &algos, cfg);
        header = metrics_header(&algos, "zeta", false);
        rows.push(metrics_row(fmt(zeta), &ms, false));
    }
    print_table(
        "Fig. 5 (chunk level) — routing cost vs cache capacity ζ (unlimited links)",
        &header,
        &rows,
    );

    // Chunk level, candidate-path sweep for [3].
    let ks: &[usize] = if cfg.full {
        &[1, 2, 5, 10, 20]
    } else {
        &[1, 5, 10]
    };
    let mut rows = Vec::new();
    for &k in ks {
        let mut sc = cfg.seeded(Scenario::chunk_default());
        sc.kappa_fraction = None;
        let algos = fig5_algos(sc.level, k);
        let ms = evaluate(&sc, &algos, cfg);
        rows.push(vec![
            k.to_string(),
            fmt(ms[0].cost_true),
            fmt(ms[1].cost_true),
            fmt(ms[1].cost_pred),
        ]);
    }
    print_table(
        "Fig. 5 (chunk level) — [3]'s cost vs #candidate paths k (ours is k-independent)",
        &[
            "k".into(),
            "Alg1 (ours)".into(),
            "k-SP [3] true".into(),
            "k-SP [3] pred".into(),
        ],
        &rows,
    );

    // File level, ζ sweep, with max cache occupancy.
    let zetas_file: &[f64] = if cfg.full {
        &[1.0, 2.0, 3.0, 4.0]
    } else {
        &[2.0, 4.0]
    };
    let mut rows = Vec::new();
    let mut header = Vec::new();
    for &zeta in zetas_file {
        let mut sc = cfg.seeded(Scenario::file_default());
        sc.kappa_fraction = None;
        sc.zeta = zeta; // counted in videos; converted to size units internally
        let algos = fig5_algos(sc.level, 10);
        let ms = evaluate(&sc, &algos, cfg);
        header = metrics_header(&algos, "zeta(videos)", true);
        rows.push(metrics_row(fmt(zeta), &ms, true));
    }
    print_table(
        "Fig. 5 (file level) — cost and max cache occupancy vs ζ; occupancy > 1 marks the baselines' infeasible placements",
        &header,
        &rows,
    );
}

/// Fig. 6: binary cache capacities — Algorithm 2 (varying K) vs \[33\]
/// (K = 2) vs the splittable lower bound vs RNR.
pub fn fig6(cfg: ExpConfig) {
    for level in [Level::Chunk { chunk_mb: 100.0 }, Level::File] {
        let label = match level {
            Level::Chunk { .. } => "chunk level",
            Level::File => "file level",
        };
        // K sweep at the default capacity.
        let ks: &[u32] = if cfg.full {
            &[1, 2, 5, 10, 100, 1000]
        } else {
            &[2, 10, 100]
        };
        let mut rows = Vec::new();
        for &k in ks {
            let (cost, cong, split) = run_fig6_point(level, 0.007, k, cfg);
            let tag = if k == 2 {
                format!("{k} (=[33])")
            } else {
                k.to_string()
            };
            rows.push(vec![tag, fmt(cost), fmt(split), fmt(cong)]);
        }
        print_table(
            &format!("Fig. 6 ({label}) — Algorithm 2 vs K (κ = 0.7% of total rate)"),
            &[
                "K".into(),
                "cost".into(),
                "splittable LB".into(),
                "congestion".into(),
            ],
            &rows,
        );

        // Capacity sweep: Alg2 (best K) vs [33] vs RNR.
        let fractions: &[f64] = if cfg.full {
            &[0.004, 0.007, 0.011, 0.018, 0.028]
        } else {
            &[0.007, 0.014]
        };
        let mut rows = Vec::new();
        for &fr in fractions {
            let (c_best, g_best, split) = run_fig6_point(level, fr, 1000, cfg);
            let (c_33, g_33, _) = run_fig6_point(level, fr, 2, cfg);
            let (c_rnr, g_rnr) = run_fig6_rnr(level, fr, cfg);
            rows.push(vec![
                fmt(fr),
                fmt(c_best),
                fmt(g_best),
                fmt(c_33),
                fmt(g_33),
                fmt(split),
                fmt(c_rnr),
                fmt(g_rnr),
            ]);
        }
        print_table(
            &format!(
                "Fig. 6 ({label}) — cost/congestion vs link capacity κ (fraction of total rate)"
            ),
            &[
                "kappa".into(),
                "Alg2(K=1000):cost".into(),
                "cong".into(),
                "[33](K=2):cost".into(),
                "cong".into(),
                "splittable:cost".into(),
                "RNR:cost".into(),
                "RNR:cong".into(),
            ],
            &rows,
        );
    }
}

fn fig6_scenario(level: Level, fraction: f64) -> Scenario {
    let mut sc = match level {
        Level::Chunk { .. } => Scenario::chunk_default(),
        Level::File => Scenario::file_default(),
    };
    sc.kappa_fraction = Some(fraction);
    sc
}

fn run_fig6_point(level: Level, fraction: f64, k: u32, cfg: ExpConfig) -> (f64, f64, f64) {
    let sc = fig6_scenario(level, fraction);
    let n_edges = sc.topology().edge_nodes.len();
    let mut costs = Vec::new();
    let mut congs = Vec::new();
    let mut splits = Vec::new();
    for run in 0..cfg.runs {
        let mut s = sc.clone();
        s.share_seed = s.share_seed.wrapping_add(run as u64 * 1009);
        s.hours = cfg.hours.max(1);
        let demand = s.demand(n_edges);
        for h in 0..s.hours {
            let rates = demand.true_rates(h, n_edges);
            let inst = build_instance(&s, &rates);
            let storer = inst.cache_nodes()[0];
            if let Ok(sol) = alg2::solve_binary_caches(&inst, &[storer], k) {
                costs.push(sol.solution.cost(&inst));
                congs.push(sol.solution.congestion(&inst));
                splits.push(sol.splittable_cost);
            }
        }
    }
    (mean(&costs), mean(&congs), mean(&splits))
}

fn run_fig6_rnr(level: Level, fraction: f64, cfg: ExpConfig) -> (f64, f64) {
    let sc = fig6_scenario(level, fraction);
    let n_edges = sc.topology().edge_nodes.len();
    let mut costs = Vec::new();
    let mut congs = Vec::new();
    for run in 0..cfg.runs {
        let mut s = sc.clone();
        s.share_seed = s.share_seed.wrapping_add(run as u64 * 1009);
        s.hours = cfg.hours.max(1);
        let demand = s.demand(n_edges);
        for h in 0..s.hours {
            let rates = demand.true_rates(h, n_edges);
            let inst = build_instance(&s, &rates);
            let storer = inst.cache_nodes()[0];
            if let Ok(sol) = alg2::rnr_binary(&inst, &[storer]) {
                costs.push(sol.cost(&inst));
                congs.push(sol.congestion(&inst));
            }
        }
    }
    (mean(&costs), mean(&congs))
}

/// Figs. 7 (vs ζ) and 8 (vs κ): the general case.
pub fn fig7(cfg: ExpConfig) {
    general_sweep(cfg, SweepAxis::CacheCapacity);
}

/// See [`fig7`].
pub fn fig8(cfg: ExpConfig) {
    general_sweep(cfg, SweepAxis::LinkCapacity);
}

enum SweepAxis {
    CacheCapacity,
    LinkCapacity,
}

fn general_sweep(cfg: ExpConfig, axis: SweepAxis) {
    for level in [Level::Chunk { chunk_mb: 100.0 }, Level::File] {
        let (label, base) = match level {
            Level::Chunk { .. } => ("chunk level", Scenario::chunk_default()),
            Level::File => ("file level", Scenario::file_default()),
        };
        let points: Vec<(String, Scenario)> = match axis {
            SweepAxis::CacheCapacity => {
                let zetas: &[f64] = match (level, cfg.full) {
                    (Level::Chunk { .. }, true) => &[4.0, 8.0, 12.0, 16.0],
                    (Level::Chunk { .. }, false) => &[6.0, 12.0],
                    (Level::File, true) => &[1.0, 2.0, 3.0],
                    (Level::File, false) => &[2.0, 3.0],
                };
                zetas
                    .iter()
                    .map(|&z| {
                        let mut sc = base.clone();
                        sc.zeta = z;
                        (fmt(z), sc)
                    })
                    .collect()
            }
            SweepAxis::LinkCapacity => {
                let fractions: &[f64] = if cfg.full {
                    &[0.005, 0.007, 0.014, 0.028]
                } else {
                    &[0.007, 0.014]
                };
                fractions
                    .iter()
                    .map(|&fr| {
                        let mut sc = base.clone();
                        sc.kappa_fraction = Some(fr);
                        (fmt(fr), sc)
                    })
                    .collect()
            }
        };
        let axis_name = match axis {
            SweepAxis::CacheCapacity => "zeta",
            SweepAxis::LinkCapacity => "kappa",
        };
        let fig = match axis {
            SweepAxis::CacheCapacity => "Fig. 7",
            SweepAxis::LinkCapacity => "Fig. 8",
        };
        let with_occ = matches!(level, Level::File);
        let mut rows = Vec::new();
        let mut header = Vec::new();
        for (tag, sc) in points {
            let algos = general_algos(sc.share_seed);
            let ms = evaluate(&sc, &algos, cfg);
            header = metrics_header(&algos, axis_name, with_occ);
            rows.push(metrics_row(tag, &ms, with_occ));
        }
        print_table(
            &format!("{fig} ({label}) — general case, varying {axis_name}"),
            &header,
            &rows,
        );
    }
}

/// Fig. 9 / Proposition 4.8: the Nash-equilibrium gadget with unbounded
/// approximation ratio.
pub fn fig9(_cfg: ExpConfig) {
    let mut rows = Vec::new();
    for &eps in &[0.1, 0.01, 0.001] {
        let (ne_cost, opt_cost, driver_cost) = prop48_gadget(eps);
        rows.push(vec![
            fmt(eps),
            fmt(ne_cost),
            fmt(opt_cost),
            fmt(ne_cost / opt_cost),
            fmt(driver_cost),
        ]);
    }
    print_table(
        "Fig. 9 / Prop. 4.8 — the bad NE's cost ratio grows without bound; our driver (origin init) still finds the optimum",
        &[
            "eps".into(),
            "NE cost".into(),
            "OPT cost".into(),
            "ratio".into(),
            "alternating (origin init)".into(),
        ],
        &rows,
    );
}

/// Builds the Fig. 9 gadget and returns
/// `(bad NE cost, optimal cost, our driver's cost)`.
pub fn prop48_gadget(eps: f64) -> (f64, f64, f64) {
    let lambda = 1.0;
    let w = 1.0;
    // Nodes: vs (origin-like, capacity 2), v1, v2, s (client).
    let mut g = DiGraph::new();
    let vs = g.add_node();
    let v1 = g.add_node();
    let v2 = g.add_node();
    let s = g.add_node();
    let mut cost = Vec::new();
    let mut cap = Vec::new();
    for (u, v, c) in [(vs, v1, w), (vs, v2, w), (v1, s, eps), (v2, s, w)] {
        g.add_edge(u, v);
        cost.push(c);
        cap.push(lambda + 1.0);
    }
    let mut cache_cap = vec![0.0; 4];
    cache_cap[v1.index()] = 1.0;
    cache_cap[v2.index()] = 1.0;
    let inst = Instance::new(
        g,
        cost,
        cap,
        cache_cap,
        vec![1.0, 1.0],
        vec![
            Request {
                item: 0,
                node: s,
                rate: lambda,
            },
            Request {
                item: 1,
                node: s,
                rate: eps,
            },
        ],
        Some(vs),
    )
    .expect("gadget is valid");

    // The bad NE: item 0 at v2, item 1 at v1, served via RNR.
    let mut ne = Placement::empty(&inst);
    ne.set(v2, 0, true);
    ne.set(v1, 1, true);
    let ne_routing = rnr::route_to_nearest_replica(&inst, &ne).expect("servable");
    let ne_cost = ne_routing.cost(&inst);
    // The optimum: item 0 at v1, item 1 at v2.
    let mut opt = Placement::empty(&inst);
    opt.set(v1, 0, true);
    opt.set(v2, 1, true);
    let opt_cost = rnr::route_to_nearest_replica(&inst, &opt)
        .expect("servable")
        .cost(&inst);
    let driver = Alternating::new().solve(&inst).expect("gadget solvable");
    (ne_cost, opt_cost, driver.solution.cost(&inst))
}

/// Fig. 11 (App. D.1): varying the number of videos.
pub fn fig11(cfg: ExpConfig) {
    let counts: &[usize] = if cfg.full { &[4, 6, 8, 10] } else { &[4, 7] };
    let mut rows = Vec::new();
    let mut header = Vec::new();
    for &n in counts {
        let mut sc = Scenario::chunk_default();
        sc.n_videos = n;
        let algos = general_algos(sc.share_seed);
        let ms = evaluate(&sc, &algos, cfg);
        header = metrics_header(&algos, "#videos", false);
        let mut row = metrics_row(n.to_string(), &ms, false);
        row[0] = format!("{n} (|C|={})", sc.catalog_size());
        rows.push(row);
    }
    print_table(
        "Fig. 11 — general case, varying #videos (chunk level)",
        &header,
        &rows,
    );
}

/// Fig. 12 (App. D.2): varying the chunk size.
pub fn fig12(cfg: ExpConfig) {
    let sizes: &[f64] = if cfg.full {
        &[100.0, 50.0, 25.0]
    } else {
        &[100.0, 50.0]
    };
    let n_videos = if cfg.full { 10 } else { 5 };
    let mut rows = Vec::new();
    let mut header = Vec::new();
    for &chunk_mb in sizes {
        let mut sc = Scenario::chunk_default();
        sc.n_videos = n_videos;
        sc.level = Level::Chunk { chunk_mb };
        // Keep the same cached bytes: ζ scales with 100/chunk_mb.
        sc.zeta = (12.0 * 100.0 / chunk_mb).round();
        let algos = general_algos(sc.share_seed);
        let ms = evaluate(&sc, &algos, cfg);
        // Costs are per *chunk* transfer; normalize to 100-MB units so
        // different chunk sizes are comparable byte-for-byte.
        let scale = chunk_mb / 100.0;
        let normalized: Vec<Metrics> = ms
            .iter()
            .map(|m| Metrics {
                cost_true: m.cost_true * scale,
                cost_pred: m.cost_pred * scale,
                ..*m
            })
            .collect();
        header = metrics_header(&algos, "chunk MB", false);
        let mut row = metrics_row(fmt(chunk_mb), &normalized, false);
        row[0] = format!("{chunk_mb} (|C|={})", sc.catalog_size());
        rows.push(row);
    }
    print_table(
        "Fig. 12 — general case, varying chunk size (same videos, same cached bytes; costs normalized to 100-MB units)",
        &header,
        &rows,
    );
}

/// Fig. 13 (App. D.3): sensitivity to synthetic prediction error.
pub fn fig13(cfg: ExpConfig) {
    let sigmas: &[f64] = if cfg.full {
        &[0.0, 0.1, 0.2, 0.5, 1.0]
    } else {
        &[0.0, 0.3, 1.0]
    };
    let sc = Scenario::chunk_default();
    let n_edges = sc.topology().edge_nodes.len();
    let algos = general_algos(sc.share_seed);
    let run_ctx = default_factory();
    let mut rows = Vec::new();
    for &sigma_rel in sigmas {
        let mut acc = vec![(Vec::new(), Vec::new()); algos.len()];
        for run in 0..cfg.runs {
            let mut s = sc.clone();
            s.share_seed = s.share_seed.wrapping_add(run as u64 * 1009);
            s.hours = cfg.hours.max(1);
            let demand = s.demand(n_edges);
            let mut rng = StdRng::seed_from_u64(4242 + run as u64);
            for h in 0..s.hours {
                let true_rates = demand.true_rates(h, n_edges);
                let flat_true: Vec<f64> = flatten_rates(&true_rates)
                    .into_iter()
                    .map(|r| r.max(1e-6))
                    .collect();
                let sigma = sigma_rel * mean(&flat_true);
                let noisy: Vec<Vec<f64>> = true_rates
                    .iter()
                    .map(|row| jcr_trace::synth::perturb_demand(row, sigma, &mut rng))
                    .collect();
                let inst = build_instance(&s, &noisy);
                for (ai, algo) in algos.iter().enumerate() {
                    if let Ok(sol) = (algo.run)(&inst, &run_ctx) {
                        let (cost, cong) = sol.evaluate_under(&inst, &flat_true);
                        acc[ai].0.push(cost);
                        acc[ai].1.push(cong);
                    }
                }
            }
        }
        let mut row = vec![fmt(sigma_rel)];
        for (costs, congs) in &acc {
            row.push(fmt(mean(costs)));
            row.push(fmt(mean(congs)));
        }
        rows.push(row);
    }
    let mut header = vec!["sigma/mean".to_string()];
    for a in &algos {
        header.push(format!("{}:cost", a.name));
        header.push("cong".into());
    }
    print_table(
        "Fig. 13 — sensitivity to synthetic prediction error N(0, σ²) (chunk level)",
        &header,
        &rows,
    );
}

/// Fig. 15 (App. D.4): varying network topology.
pub fn fig15(cfg: ExpConfig) {
    let kinds = [
        TopologyKind::Abvt,
        TopologyKind::Tinet,
        TopologyKind::Deltacom,
    ];
    let mut rows = Vec::new();
    let mut header = Vec::new();
    for kind in kinds {
        let mut sc = Scenario::chunk_default();
        sc.kind = kind;
        if !cfg.full {
            sc.n_videos = 6;
        }
        let algos = general_algos(sc.share_seed);
        let ms = evaluate(&sc, &algos, cfg);
        header = metrics_header(&algos, "topology", false);
        rows.push(metrics_row(kind.name().to_string(), &ms, false));
    }
    print_table(
        "Fig. 15 — general case on Abvt / Tinet / Deltacom",
        &header,
        &rows,
    );
}

/// The IC-IR / IC-FR / FC-FR trade-off of §2.4 (complexity vs routing
/// cost vs implementation requirements, Fig. 1's three tractable cases).
pub fn cases(cfg: ExpConfig) {
    use jcr_core::fcfr;
    let mut rows = Vec::new();
    for seed in 0..cfg.runs.max(1) as u64 {
        // Small instances so the exact FC-FR LP stays cheap.
        let topo = jcr_topo::Topology::generate_custom(10, 13, 3, seed)
            .expect("10-node/13-link/3-edge shape is generator-valid for any seed");
        let inst = InstanceBuilder::new(topo)
            .items(5)
            .cache_capacity(2.0)
            .zipf_demand(0.9, 200.0, seed)
            .link_capacity_fraction(0.05)
            .build()
            .expect("builder scenarios are feasible by construction");
        let fcfr_cost = fcfr::solve_fcfr(&inst).map(|s| s.cost).unwrap_or(f64::NAN);
        let icfr = Alternating {
            integral_routing: false,
            seed,
            ..Alternating::default()
        }
        .solve(&inst)
        .map(|r| (r.solution.cost(&inst), r.solution.congestion(&inst)))
        .unwrap_or((f64::NAN, f64::NAN));
        let icir = Alternating {
            seed,
            ..Alternating::default()
        }
        .solve(&inst)
        .map(|r| (r.solution.cost(&inst), r.solution.congestion(&inst)))
        .unwrap_or((f64::NAN, f64::NAN));
        rows.push(vec![
            seed.to_string(),
            fmt(fcfr_cost),
            fmt(icfr.0),
            fmt(icfr.1),
            fmt(icir.0),
            fmt(icir.1),
            fmt(icir.0 / fcfr_cost),
        ]);
    }
    if cfg.full {
        // Full evaluation scale via the column-generation FC-FR solver.
        let mut sc = Scenario::chunk_default();
        sc.hours = 1;
        let n_edges = sc.topology().edge_nodes.len();
        let demand = sc.demand(n_edges);
        let inst = build_instance(&sc, &demand.true_rates(0, n_edges));
        let fcfr_cost = fcfr::solve_fcfr_cg(&inst)
            .map(|s| s.cost)
            .unwrap_or(f64::NAN);
        let icir = Alternating::default()
            .solve(&inst)
            .map(|r| (r.solution.cost(&inst), r.solution.congestion(&inst)))
            .unwrap_or((f64::NAN, f64::NAN));
        rows.push(vec![
            "full-scale".into(),
            fmt(fcfr_cost),
            "-".into(),
            "-".into(),
            fmt(icir.0),
            fmt(icir.1),
            fmt(icir.0 / fcfr_cost),
        ]);
    }
    print_table(
        "§2.4 — the three cases on a common instance (FC-FR exactly lower-bounds every capacity-feasible solution; an IC-IR undercut implies congestion > 1)",
        &[
            "seed".into(),
            "FC-FR (LP)".into(),
            "IC-FR:cost".into(),
            "cong".into(),
            "IC-IR:cost".into(),
            "cong".into(),
            "IC-IR/FC-FR".into(),
        ],
        &rows,
    );
}

/// The conference version's synthetic Zipf workload: cost vs the Zipf
/// skew α under the general case.
pub fn zipf(cfg: ExpConfig) {
    let alphas: &[f64] = if cfg.full {
        &[0.2, 0.5, 0.8, 1.1, 1.4]
    } else {
        &[0.4, 0.8, 1.2]
    };
    let mut rows = Vec::new();
    let mut header = Vec::new();
    for &alpha in alphas {
        let mut costs: Vec<Vec<f64>> = vec![Vec::new(); 4];
        let mut congs: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for run in 0..cfg.runs {
            let seed = 100 + run as u64;
            let topo = jcr_topo::Topology::generate(TopologyKind::Abovenet, 1)
                .expect("built-in kinds generate");
            let inst = InstanceBuilder::new(topo)
                .items(30)
                .cache_capacity(6.0)
                .zipf_demand(alpha, 10_000.0, seed)
                .link_capacity_fraction(0.01)
                .build()
                .expect("builder scenarios are feasible by construction");
            let algos = general_algos(seed);
            let run_ctx = default_factory();
            for (ai, algo) in algos.iter().enumerate() {
                if let Ok(sol) = (algo.run)(&inst, &run_ctx) {
                    costs[ai].push(sol.cost(&inst));
                    congs[ai].push(sol.congestion(&inst));
                }
            }
            if header.is_empty() {
                header = vec!["alpha".to_string()];
                for a in &algos {
                    header.push(format!("{}:cost", a.name));
                    header.push("cong".into());
                }
            }
        }
        let mut row = vec![fmt(alpha)];
        for ai in 0..4 {
            row.push(fmt(mean(&costs[ai])));
            row.push(fmt(mean(&congs[ai])));
        }
        rows.push(row);
    }
    print_table(
        "Synthetic Zipf workload (conference version [1]) — cost/congestion vs skew α",
        &header,
        &rows,
    );
}

/// Convergence of the alternating optimization (the paper reports
/// convergence within 10 iterations in all evaluated cases).
pub fn convergence(cfg: ExpConfig) {
    let mut rows = Vec::new();
    let mut max_iters_seen = 0usize;
    for run in 0..cfg.runs.max(1) {
        let mut sc = Scenario::chunk_default();
        sc.share_seed = sc.share_seed.wrapping_add(run as u64 * 1009);
        sc.hours = 1;
        let n_edges = sc.topology().edge_nodes.len();
        let demand = sc.demand(n_edges);
        let rates = demand.true_rates(0, n_edges);
        let inst = build_instance(&sc, &rates);
        let result = Alternating {
            seed: run as u64,
            ..Alternating::default()
        }
        .solve(&inst)
        .expect("default scenario is feasible");
        max_iters_seen = max_iters_seen.max(result.iterations);
        for (t, (congestion, cost)) in result.history.iter().enumerate() {
            rows.push(vec![
                run.to_string(),
                t.to_string(),
                fmt(*cost),
                fmt(*congestion),
            ]);
        }
    }
    print_table(
        "Convergence — accepted (cost, congestion) per alternating iteration (iteration 0 = origin-only init)",
        &["run".into(), "iter".into(), "cost".into(), "congestion".into()],
        &rows,
    );
    println!("max iterations to convergence: {max_iters_seen} (paper: within 10)");
}

/// The online protocol end to end: hourly re-optimization on GPR
/// forecasts with warm starts, reporting realized cost, congestion, cache
/// churn, and the regret against a truth-knowing oracle.
pub fn online(cfg: ExpConfig) {
    use jcr_core::online::OnlineSimulator;
    let mut sc = Scenario::chunk_default();
    sc.n_videos = if cfg.full { 10 } else { 6 };
    sc.hours = cfg.hours.max(4);
    let n_edges = sc.topology().edge_nodes.len();
    let demand = sc.demand(n_edges);
    let mut sim = OnlineSimulator::new(Alternating::new());
    let mut rows = Vec::new();
    for h in 0..sc.hours {
        let true_rates = demand.true_rates(h, n_edges);
        let pred_rates = demand.predicted_rates(h, n_edges);
        let inst_pred = build_instance(&sc, &pred_rates);
        let inst_true = build_instance(&sc, &true_rates);
        let flat_true: Vec<f64> = flatten_rates(&true_rates)
            .into_iter()
            .map(|r| r.max(1e-6))
            .collect();
        let outcome = sim.step(&inst_pred, &flat_true).expect("feasible hour");
        let oracle = Alternating::new()
            .solve(&inst_true)
            .expect("feasible hour")
            .solution
            .cost(&inst_true);
        rows.push(vec![
            h.to_string(),
            fmt(outcome.realized_cost),
            fmt(oracle),
            format!("{:.1}%", 100.0 * (outcome.realized_cost / oracle - 1.0)),
            fmt(outcome.realized_congestion),
            outcome.placement_churn.to_string(),
        ]);
    }
    print_table(
        "Online protocol — hourly re-optimization on GPR forecasts (warm-started)",
        &[
            "hour".into(),
            "realized cost".into(),
            "oracle cost".into(),
            "regret".into(),
            "congestion".into(),
            "cache churn".into(),
        ],
        &rows,
    );
}

/// Ablations of the design choices DESIGN.md calls out: the placement
/// subroutine (pipage LP vs greedy), the MMUFP heuristic (LP + randomized
/// rounding vs greedy sequential), the number of rounding draws, and the
/// online warm start.
pub fn ablation(cfg: ExpConfig) {
    use jcr_core::alternating::{PlacementMethod, RoutingMethod};
    use jcr_core::online::OnlineSimulator;
    // One representative instance per run; all variants solve the same ones.
    let mut variants: Vec<(String, Alternating)> = vec![
        (
            "pipage-LP + LP-rounding (default)".into(),
            Alternating::default(),
        ),
        (
            "greedy placement".into(),
            Alternating {
                placement: Some(PlacementMethod::Greedy),
                ..Alternating::default()
            },
        ),
        (
            "greedy sequential routing".into(),
            Alternating {
                routing: RoutingMethod::GreedySequential,
                ..Alternating::default()
            },
        ),
    ];
    for &draws in &[1usize, 10, 50] {
        variants.push((
            format!("rounding draws = {draws}"),
            Alternating {
                rounding_draws: draws,
                ..Alternating::default()
            },
        ));
    }
    let mut rows = Vec::new();
    for (name, base_cfg) in &variants {
        let mut costs = Vec::new();
        let mut congs = Vec::new();
        let mut iters = Vec::new();
        for run in 0..cfg.runs.max(1) {
            let mut sc = Scenario::chunk_default();
            sc.share_seed = sc.share_seed.wrapping_add(run as u64 * 1009);
            sc.hours = 1;
            let n_edges = sc.topology().edge_nodes.len();
            let demand = sc.demand(n_edges);
            let inst = build_instance(&sc, &demand.true_rates(0, n_edges));
            let mut solver = base_cfg.clone();
            solver.seed = run as u64;
            if let Ok(result) = solver.solve(&inst) {
                costs.push(result.solution.cost(&inst));
                congs.push(result.solution.congestion(&inst));
                iters.push(result.iterations as f64);
            }
        }
        rows.push(vec![
            name.clone(),
            fmt(mean(&costs)),
            fmt(mean(&congs)),
            fmt(mean(&iters)),
        ]);
    }
    print_table(
        "Ablation — alternating-optimization design choices (chunk level, default setting)",
        &[
            "variant".into(),
            "cost".into(),
            "congestion".into(),
            "iterations".into(),
        ],
        &rows,
    );

    // Warm vs cold online start.
    let mut rows = Vec::new();
    for (label, warm) in [("warm start", true), ("cold start", false)] {
        let mut sc = Scenario::chunk_default();
        sc.n_videos = 6;
        sc.hours = cfg.hours.max(4);
        let n_edges = sc.topology().edge_nodes.len();
        let demand = sc.demand(n_edges);
        let mut sim = OnlineSimulator::new(Alternating::new());
        sim.warm_start = warm;
        let mut costs = Vec::new();
        let mut churns = Vec::new();
        for h in 0..sc.hours {
            let true_rates = demand.true_rates(h, n_edges);
            let pred_rates = demand.predicted_rates(h, n_edges);
            let inst_pred = build_instance(&sc, &pred_rates);
            let flat_true: Vec<f64> = flatten_rates(&true_rates)
                .into_iter()
                .map(|r| r.max(1e-6))
                .collect();
            let outcome = sim.step(&inst_pred, &flat_true).expect("feasible hour");
            costs.push(outcome.realized_cost);
            churns.push(outcome.placement_churn as f64);
        }
        rows.push(vec![
            label.to_string(),
            fmt(mean(&costs)),
            fmt(mean(&churns)),
        ]);
    }
    print_table(
        "Ablation — online warm start vs cold start (realized cost and hourly cache churn)",
        &[
            "variant".into(),
            "realized cost".into(),
            "mean churn".into(),
        ],
        &rows,
    );
}

/// Figs. 3/14 analogue: emits Graphviz DOT renderings of the evaluation
/// topologies (origin red, edge nodes blue, internal grey) to stdout.
pub fn topology(_cfg: ExpConfig) {
    for kind in [
        TopologyKind::Abovenet,
        TopologyKind::Abvt,
        TopologyKind::Tinet,
        TopologyKind::Deltacom,
    ] {
        let topo = jcr_topo::Topology::generate(kind, 1).expect("built-in kinds generate");
        println!(
            "\n// ---- {kind} ({} nodes, {} links) ----",
            topo.graph.node_count(),
            topo.graph.edge_count() / 2
        );
        println!("{}", topo.to_dot());
    }
}

/// Request-level simulation: the optimized static placement versus
/// reactive LRU/LFU caching, measured on actual Poisson arrivals (an
/// extension beyond the paper's fluid-model evaluation).
pub fn sim(cfg: ExpConfig) {
    use jcr_sim::policy::{ReactivePolicy, Replacement, StaticPolicy};
    use jcr_sim::Simulator;
    // Scaled-down demand (the simulator bills per event).
    let topo =
        jcr_topo::Topology::generate(TopologyKind::Abovenet, 1).expect("built-in kinds generate");
    let inst = InstanceBuilder::new(topo)
        .items(30)
        .cache_capacity(6.0)
        .zipf_demand(0.8, 50_000.0, 7)
        .link_capacity_fraction(0.01)
        .build()
        .expect("builder scenarios are feasible by construction");
    let horizon = if cfg.full { 8.0 } else { 2.0 };
    let simulator = Simulator {
        horizon,
        seed: 13,
        ..Simulator::default()
    };

    let optimized = Alternating::new().solve(&inst).expect("feasible").solution;
    let fluid_cost = optimized.cost(&inst);
    let mut rows = Vec::new();
    {
        let mut policy = StaticPolicy::new(&optimized);
        let report = simulator.run(&inst, &mut policy);
        rows.push(vec![
            "optimized (alternating)".into(),
            fmt(report.cost_rate()),
            fmt(report.congestion(&inst)),
            fmt(report.local_hit_ratio),
            report.requests_served.to_string(),
        ]);
    }
    for (name, discipline) in [("LRU", Replacement::Lru), ("LFU", Replacement::Lfu)] {
        let mut policy = ReactivePolicy::new(&inst, discipline);
        let report = simulator.run(&inst, &mut policy);
        rows.push(vec![
            format!("reactive {name}"),
            fmt(report.cost_rate()),
            fmt(report.congestion(&inst)),
            fmt(report.local_hit_ratio),
            report.requests_served.to_string(),
        ]);
    }
    print_table(
        "Request-level simulation — optimized placement vs reactive caching (Poisson arrivals)",
        &[
            "policy".into(),
            "cost/hour".into(),
            "congestion".into(),
            "local hit ratio".into(),
            "#requests".into(),
        ],
        &rows,
    );
    println!(
        "fluid-model cost of the optimized solution: {} (empirical should match)",
        fmt(fluid_cost)
    );
}

/// Empirical optimality gaps on brute-forceable instances: the paper
/// claims the alternating heuristic performs well despite Prop. 4.8's
/// worst case; here it is measured against the *exact* IC-IR optimum.
pub fn gap(cfg: ExpConfig) {
    use jcr_core::exact::ExactIcIr;
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for seed in 0..(3 * cfg.runs.max(1)) as u64 {
        let inst = InstanceBuilder::new(
            jcr_topo::Topology::generate_custom(7, 8, 2, seed)
                .expect("7-node/8-link/2-edge shape is generator-valid for any seed"),
        )
        .items(3)
        .cache_capacity(1.0)
        .zipf_demand(0.9, 50.0, seed)
        .link_capacity_fraction(0.3)
        .build()
        .expect("builder scenarios are feasible by construction");
        let Ok(exact) = (ExactIcIr {
            max_paths: 4,
            ..ExactIcIr::default()
        })
        .solve(&inst) else {
            continue;
        };
        let Ok(alt) = (Alternating {
            seed,
            ..Alternating::default()
        })
        .solve(&inst) else {
            continue;
        };
        let opt = exact.cost(&inst);
        let heur = alt.solution.cost(&inst);
        let feasible = alt.solution.congestion(&inst) <= 1.0 + 1e-6;
        let ratio = heur / opt;
        if feasible {
            ratios.push(ratio);
        }
        rows.push(vec![
            seed.to_string(),
            fmt(opt),
            fmt(heur),
            fmt(ratio),
            if feasible { "yes".into() } else { "no".into() },
        ]);
    }
    print_table(
        "Optimality gap — alternating vs exact IC-IR on brute-forceable instances",
        &[
            "seed".into(),
            "exact OPT".into(),
            "alternating".into(),
            "ratio".into(),
            "feasible".into(),
        ],
        &rows,
    );
    if !ratios.is_empty() {
        println!(
            "mean feasible ratio: {:.4} over {} instances (Prop. 4.8's worst case is unbounded)",
            mean(&ratios),
            ratios.len()
        );
    }
}

// ----- tables ----------------------------------------------------------------

/// Table 1: the embedded video statistics plus derived catalog sizes.
pub fn table1(_cfg: ExpConfig) {
    let rows: Vec<Vec<String>> = TABLE1
        .iter()
        .map(|v| {
            vec![
                v.id.to_string(),
                fmt(v.size_mb),
                v.chunks_100mb.to_string(),
                v.total_views.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1 — YouTube video statistics (embedded verbatim)",
        &[
            "video_id".into(),
            "size (MB)".into(),
            "#100-MB chunks".into(),
            "total #views".into(),
        ],
        &rows,
    );
    println!(
        "derived: top-10 catalog = {} chunks @100MB, {} @50MB, {} @25MB; total rate = {:.2} chunks/hour",
        jcr_trace::videos::catalog_size(10, 100.0),
        jcr_trace::videos::catalog_size(10, 50.0),
        jcr_trace::videos::catalog_size(10, 25.0),
        jcr_trace::videos::total_chunk_rate(10, 100.0),
    );
}

/// Table 2: the qualitative summary, with measured numbers attached.
pub fn table2(cfg: ExpConfig) {
    // Scenario 1: unlimited links.
    let mut sc = Scenario::chunk_default();
    sc.kappa_fraction = None;
    let algos = fig5_algos(sc.level, 10);
    let ms = evaluate(&sc, &algos, cfg);
    let mut rows = Vec::new();
    for (a, m) in algos.iter().zip(&ms) {
        rows.push(vec![
            "c_uv = inf".into(),
            a.name.clone(),
            fmt(m.cost_true),
            "-".into(),
        ]);
    }
    // Scenario 2: binary cache capacities.
    let (c_a2, g_a2, _) = run_fig6_point(Level::Chunk { chunk_mb: 100.0 }, 0.007, 1000, cfg);
    let (c_33, g_33, _) = run_fig6_point(Level::Chunk { chunk_mb: 100.0 }, 0.007, 2, cfg);
    let (c_rnr, g_rnr) = run_fig6_rnr(Level::Chunk { chunk_mb: 100.0 }, 0.007, cfg);
    rows.push(vec![
        "c_v = 0/|C|".into(),
        "Alg2 (K=1000)".into(),
        fmt(c_a2),
        fmt(g_a2),
    ]);
    rows.push(vec![
        "c_v = 0/|C|".into(),
        "[33] (K=2)".into(),
        fmt(c_33),
        fmt(g_33),
    ]);
    rows.push(vec![
        "c_v = 0/|C|".into(),
        "[3] (RNR)".into(),
        fmt(c_rnr),
        fmt(g_rnr),
    ]);
    // Scenario 3: general case.
    let sc = Scenario::chunk_default();
    let algos = general_algos(sc.share_seed);
    let ms = evaluate(&sc, &algos, cfg);
    for (a, m) in algos.iter().zip(&ms) {
        rows.push(vec![
            "general".into(),
            a.name.clone(),
            fmt(m.cost_true),
            fmt(m.congestion_true),
        ]);
    }
    print_table(
        "Table 2 — summary of evaluation results (chunk level, IC-IR)",
        &[
            "scenario".into(),
            "algorithm".into(),
            "routing cost".into(),
            "congestion".into(),
        ],
        &rows,
    );
}

/// Tables 3–4: average execution time per algorithm.
pub fn table3(cfg: ExpConfig) {
    timing_table(
        Scenario::chunk_default(),
        "Table 3 — execution time, chunk level",
        cfg,
    );
}

/// See [`table3`].
pub fn table4(cfg: ExpConfig) {
    timing_table(
        Scenario::file_default(),
        "Table 4 — execution time, file level",
        cfg,
    );
}

fn timing_table(base: Scenario, title: &str, cfg: ExpConfig) {
    let n_edges = base.topology().edge_nodes.len();
    let mut sc = base.clone();
    sc.hours = 1;
    let demand = sc.demand(n_edges);
    let rates = demand.true_rates(0, n_edges);

    // Uncapacitated variant for the c_uv = ∞ scenario.
    let mut sc_unlim = sc.clone();
    sc_unlim.kappa_fraction = None;
    let inst_unlim = build_instance(&sc_unlim, &rates);
    let inst = build_instance(&sc, &rates);
    let storer = inst.cache_nodes()[0];

    let chunk_level = matches!(sc.level, Level::Chunk { .. });
    let ours_name = if chunk_level { "Alg1" } else { "greedy" };
    type TimedRun<'a> = (&'a str, &'a str, Box<dyn Fn() + 'a>);
    let timed: Vec<TimedRun> = vec![
        (
            "c_uv = inf",
            ours_name,
            if chunk_level {
                let i = inst_unlim.clone();
                Box::new(move || {
                    let _ = Algorithm1::new().solve(&i);
                })
            } else {
                let i = inst_unlim.clone();
                Box::new(move || {
                    let _ = greedy_rnr(&i, &jcr_ctx::SolverContext::new());
                })
            },
        ),
        ("c_uv = inf", "[3] k shortest paths", {
            let i = inst_unlim.clone();
            Box::new(move || {
                let _ = IoannidisYeh::k_shortest(10).solve(&i);
            })
        }),
        ("c_uv = inf", "[38] shortest path", {
            let i = inst_unlim.clone();
            Box::new(move || {
                let _ = ShortestPathPlacement.solve(&i);
            })
        }),
        ("c_v = 0/|C|", "Alg2 (K=1000)", {
            let i = inst.clone();
            Box::new(move || {
                let _ = alg2::solve_binary_caches(&i, &[storer], 1000);
            })
        }),
        ("c_v = 0/|C|", "[33] (K=2)", {
            let i = inst.clone();
            Box::new(move || {
                let _ = alg2::solve_binary_caches(&i, &[storer], 2);
            })
        }),
        ("c_v = 0/|C|", "[3] RNR", {
            let i = inst.clone();
            Box::new(move || {
                let _ = alg2::rnr_binary(&i, &[storer]);
            })
        }),
        ("general", "alternating", {
            let i = inst.clone();
            Box::new(move || {
                let _ = Alternating::new().solve(&i);
            })
        }),
        ("general", "[38] SP", {
            let i = inst.clone();
            Box::new(move || {
                let _ = ShortestPathPlacement.solve(&i);
            })
        }),
        ("general", "[3] SP + RNR", {
            let i = inst.clone();
            Box::new(move || {
                let _ = IoannidisYeh::sp_rnr().solve(&i);
            })
        }),
        ("general", "[3] k-SP + RNR", {
            let i = inst.clone();
            Box::new(move || {
                let _ = IoannidisYeh::ksp_rnr(10).solve(&i);
            })
        }),
    ];
    let reps = cfg.runs.max(1);
    let mut rows = Vec::new();
    for (scenario, name, f) in &timed {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        let avg = start.elapsed().as_secs_f64() / reps as f64;
        rows.push(vec![
            (*scenario).to_string(),
            (*name).to_string(),
            format!("{avg:.4}"),
        ]);
    }
    print_table(
        title,
        &[
            "scenario".into(),
            "algorithm".into(),
            "avg execution time (s)".into(),
        ],
        &rows,
    );
}

/// Solver-work table: runs each pipeline once under a fresh
/// [`jcr_ctx::SolverContext`] on the chunk-default scenario and prints the
/// instrumentation counters (pivots, pricing Dijkstras, generated columns,
/// decomposition paths, rounding passes) plus total wall time — the
/// operational complement to the paper's Table 3 timing comparison.
pub fn stats(cfg: ExpConfig) {
    use jcr_ctx::{Counter, SolverContext};

    let sc = cfg.seeded(Scenario::chunk_default());
    let n_edges = sc.topology().edge_nodes.len();
    let rates = sc.demand(n_edges).true_rates(0, n_edges);
    let inst = build_instance(&sc, &rates);
    let storer = inst.cache_nodes()[0];

    type Run<'a> = Box<dyn Fn(&SolverContext) + 'a>;
    let solvers: Vec<(&str, Run)> = vec![
        (
            "Alg1",
            Box::new(|ctx| {
                let _ = Algorithm1::new().solve_with_context(&inst, ctx);
            }),
        ),
        (
            "Alg2 (K=8)",
            Box::new(|ctx| {
                let _ = alg2::solve_binary_caches_with_context(&inst, &[storer], 8, ctx);
            }),
        ),
        (
            "alternating",
            Box::new(|ctx| {
                let _ = Alternating::new().solve_with_context(&inst, ctx);
            }),
        ),
        (
            "FC-FR (CG)",
            Box::new(|ctx| {
                let _ = fcfr::solve_fcfr_cg_with_context(&inst, ctx);
            }),
        ),
        (
            "[3] k-SP + RNR",
            Box::new(|ctx| {
                let _ = IoannidisYeh::ksp_rnr(10).solve_with_context(&inst, ctx);
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, run) in &solvers {
        let ctx = SolverContext::new();
        let start = Instant::now();
        run(&ctx);
        let elapsed = start.elapsed().as_secs_f64();
        let s = ctx.stats();
        let mut row = vec![(*name).to_string()];
        row.extend(Counter::ALL.iter().map(|&c| s.counter(c).to_string()));
        row.push(format!("{elapsed:.4}"));
        rows.push(row);
    }
    let mut header = vec!["algorithm".to_string()];
    header.extend(Counter::ALL.iter().map(|c| c.name().to_string()));
    header.push("time (s)".into());
    print_table(
        "Solver statistics — chunk level, one solve per pipeline",
        &header,
        &rows,
    );

    // Monte-Carlo aggregation: the same counters across runs × hours of
    // the alternating solver, reported as mean and max per counter (how
    // much work a typical vs worst hour costs). Runs fan out over the
    // pool; per-solve contexts come from one factory (fresh single-worker
    // context per solve, so the fan-out stays one level deep) and are
    // absorbed into the sweep context, so the whole sweep accumulates one
    // metrics registry whose histograms are summarized below.
    let sweep = cfg.pool_ctx();
    let runs: Vec<usize> = (0..cfg.runs.max(1)).collect();
    let _s = sweep.span("exp.stats_sweep");
    let per_run: Vec<Vec<jcr_ctx::SolverStats>> =
        jcr_ctx::par::par_map(&sweep, &runs, |wctx, _, &run| {
            let mut s = cfg.seeded(Scenario::chunk_default());
            s.share_seed = s.share_seed.wrapping_add(run as u64 * 1009);
            s.hours = cfg.hours.max(1);
            let demand = s.demand(n_edges);
            let mut local = Vec::with_capacity(s.hours);
            for h in 0..s.hours {
                let inst = build_instance(&s, &demand.true_rates(h, n_edges));
                let ctx = crate::exp::default_factory();
                let solver = Alternating {
                    seed: run as u64,
                    ..Alternating::default()
                };
                let _ = solver.solve_with_context(&inst, &ctx);
                local.push(ctx.stats());
                wctx.absorb_obs(&ctx.obs_snapshot());
            }
            local
        });
    let samples: Vec<jcr_ctx::SolverStats> = per_run.into_iter().flatten().collect();
    let mut rows = Vec::new();
    for &c in Counter::ALL.iter() {
        let values: Vec<f64> = samples.iter().map(|s| s.counter(c) as f64).collect();
        let max = values.iter().fold(0.0f64, |a, &b| a.max(b));
        rows.push(vec![c.name().to_string(), fmt(mean(&values)), fmt(max)]);
    }
    print_table(
        &format!(
            "Solver statistics — alternating, aggregated over {} solves (runs × hours)",
            samples.len()
        ),
        &["counter".into(), "mean".into(), "max".into()],
        &rows,
    );

    // Histogram summaries from the sweep's shared registry (pivot times,
    // basis-solve fill-in, heap pops, pricing rounds, pool chunks …).
    let snap = sweep.obs_snapshot();
    print_table(
        &format!(
            "Metric histograms — shared registry over {} solves (p50/p95 are log₂-bucket upper bounds)",
            samples.len()
        ),
        &crate::profile::histogram_header(),
        &crate::profile::histogram_rows(&snap),
    );
}

/// Fault-injection sweep: the online loop's anytime degradation ladder
/// under seeded link/node failures, capacity cuts, demand spikes, and
/// solver-budget trips, sweeping the per-class fault probability. Reports
/// realized cost, cache churn, the number of injected faults, and the
/// histogram of ladder rungs that served the hours — the ladder's
/// acceptance criterion is that every hour is served (no errors) no
/// matter the fault rate.
pub fn faults(cfg: ExpConfig) {
    use std::time::Duration;

    use jcr_core::online::{AnytimeConfig, OnlineSimulator, Rung};
    use jcr_ctx::Budget;
    use jcr_sim::faults::{FaultConfig, FaultInjector};

    let rates: &[f64] = if cfg.full {
        &[0.0, 0.1, 0.25, 0.5]
    } else {
        &[0.0, 0.35]
    };
    let mut sc = cfg.seeded(Scenario::chunk_default());
    sc.n_videos = if cfg.full { 10 } else { 6 };
    sc.hours = cfg.hours.max(4);
    let n_edges = sc.topology().edge_nodes.len();
    let base_budget = Budget::deadline(Duration::from_secs(10));

    let mut rows = Vec::new();
    for &rate in rates {
        // Each Monte-Carlo run is an independent simulation (own injector,
        // own simulator state); fan runs out over the pool and merge their
        // samples in run order so the aggregates are worker-count
        // independent. Per-hour solves inside a run stay serial.
        let runs: Vec<usize> = (0..cfg.runs.max(1)).collect();
        type FaultSamples = (Vec<f64>, Vec<f64>, usize, [usize; Rung::ALL.len()]);
        let pool = cfg.pool_ctx();
        let _s = pool.span("exp.fault_sweep");
        let per_run: Vec<FaultSamples> = jcr_ctx::par::par_map(&pool, &runs, |_, _, &run| {
            let mut s = sc.clone();
            s.share_seed = s.share_seed.wrapping_add(run as u64 * 1009);
            let demand = s.demand(n_edges);
            let injector = FaultInjector::new(FaultConfig::uniform(
                cfg.seed.wrapping_add(run as u64 * 7919),
                rate,
            ));
            let mut sim = OnlineSimulator::new(Alternating {
                seed: run as u64,
                ..Alternating::default()
            });
            let mut costs = Vec::new();
            let mut churns = Vec::new();
            let mut fault_count = 0usize;
            let mut hist = [0usize; Rung::ALL.len()];
            for h in 0..s.hours {
                let true_rates = demand.true_rates(h, n_edges);
                let pred_rates = demand.predicted_rates(h, n_edges);
                let base = build_instance(&s, &pred_rates);
                let faulted = injector.inject(h, &base, base_budget);
                fault_count += faulted.events.len();
                // Demand spikes scale rates but never change the request
                // set or order, so the flattened truth stays aligned.
                let flat_true: Vec<f64> = flatten_rates(&true_rates)
                    .into_iter()
                    .map(|r| r.max(1e-6))
                    .collect();
                let cfg_hour = AnytimeConfig::new().with_budget(faulted.budget);
                let outcome = sim
                    .step_anytime(&faulted.instance, &flat_true, &cfg_hour)
                    .expect("the ladder serves every servable hour");
                hist[outcome.rung.index()] += 1;
                costs.push(outcome.realized_cost);
                churns.push(outcome.placement_churn as f64);
            }
            (costs, churns, fault_count, hist)
        });
        let mut costs = Vec::new();
        let mut churns = Vec::new();
        let mut fault_count = 0usize;
        let mut hist = [0usize; Rung::ALL.len()];
        for (run_costs, run_churns, run_faults, run_hist) in per_run {
            costs.extend(run_costs);
            churns.extend(run_churns);
            fault_count += run_faults;
            for (dst, src) in hist.iter_mut().zip(run_hist) {
                *dst += src;
            }
        }
        let mut row = vec![
            fmt(rate),
            fmt(mean(&costs)),
            fmt(mean(&churns)),
            fault_count.to_string(),
        ];
        row.extend(hist.iter().map(usize::to_string));
        rows.push(row);
    }
    let mut header = vec![
        "fault rate".to_string(),
        "realized cost".into(),
        "mean churn".into(),
        "#faults".into(),
    ];
    header.extend(Rung::ALL.iter().map(|r| r.name().to_string()));
    print_table(
        "Fault injection — realized cost, churn, and the rung histogram of the anytime ladder vs fault rate",
        &header,
        &rows,
    );
}
