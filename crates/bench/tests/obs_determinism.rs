//! Reproducibility of the observability layer across pool widths: the
//! aggregate span-tree shape, every named counter, and every
//! `Count`-unit histogram must be **bit-identical** for any worker count
//! (only durations may differ), both for a direct instrumented solve and
//! for a Monte-Carlo sweep through the context-factory path.

use jcr_bench::exp::{default_factory, evaluate_in, Algo, ExpConfig};
use jcr_bench::{build_instance, profile, Scenario};
use jcr_core::prelude::*;
use jcr_ctx::SolverContext;

/// A trimmed chunk-default scenario so three full alternating solves
/// stay test-suite friendly.
fn small_scenario() -> Scenario {
    let mut sc = Scenario::chunk_default();
    sc.n_videos = 5;
    sc.hours = 1;
    sc
}

fn instrumented_solve(workers: usize) -> jcr_ctx::obs::ObsSnapshot {
    let sc = small_scenario();
    let n_edges = sc.topology().edge_nodes.len();
    let rates = sc.demand(n_edges).true_rates(0, n_edges);
    let inst = build_instance(&sc, &rates);
    let ctx = SolverContext::new().with_workers(workers);
    Alternating::new()
        .solve_with_context(&inst, &ctx)
        .expect("solves");
    ctx.obs_snapshot()
}

#[test]
fn span_tree_and_metrics_are_identical_across_worker_counts() {
    let baseline = instrumented_solve(1);
    let shape = baseline.shape();
    for needle in ["alt.solve", "alt.round", "lp.solve", "pool.chunk"] {
        assert!(shape.contains(needle), "missing {needle} in:\n{shape}");
    }
    assert!(
        baseline.histograms.contains_key("lp.pivot_ns"),
        "pivot latency histogram recorded"
    );
    for workers in [2, 8] {
        let snap = instrumented_solve(workers);
        assert_eq!(snap.shape(), shape, "workers = {workers}");
    }
}

#[test]
fn pool_accounting_is_bit_identical_across_repeated_runs() {
    // The per-worker accounting contract: at a fixed seed and width, the
    // deterministic side of the pool metrics — region/chunk/item
    // counters, the chunk-length histogram, and the *number* of
    // busy/idle/steal observations (= regions × width) — is bit-identical
    // run to run. `shape()` covers the counters and Count histograms;
    // the Nanos observation counts are pinned explicitly because their
    // values (durations) are the one thing allowed to vary.
    let width = jcr_ctx::default_workers().max(1);
    let a = instrumented_solve(width);
    let b = instrumented_solve(width);
    assert_eq!(a.shape(), b.shape(), "repeated run at width {width}");

    let regions = a.counters["pool.regions"];
    assert!(regions > 0, "the solve fans out at least once");
    assert_eq!(a.counters["pool.chunks"], b.counters["pool.chunks"]);
    assert_eq!(a.counters["pool.items"], b.counters["pool.items"]);
    for name in [
        jcr_ctx::par::WORKER_BUSY_NS,
        jcr_ctx::par::WORKER_IDLE_NS,
        jcr_ctx::par::STEAL_WAIT_NS,
    ] {
        let ha = &a.histograms[name];
        let hb = &b.histograms[name];
        assert_eq!(
            ha.count(),
            regions * width as u64,
            "{name}: one observation per worker per region"
        );
        assert_eq!(ha.count(), hb.count(), "{name}: repeated run");
    }
    for name in [jcr_ctx::par::CHUNK_START_NS, jcr_ctx::par::CHUNK_END_NS] {
        assert_eq!(
            a.histograms[name].count(),
            a.counters["pool.chunks"],
            "{name}: one offset per chunk"
        );
    }
    assert_eq!(
        a.histograms[jcr_ctx::par::REGION_WALL_NS].count(),
        regions,
        "one wall observation per region"
    );
    // The imbalance gauge exists and is ≥ 1 by construction
    // (max busy ÷ mean busy).
    assert!(a.gauges[jcr_ctx::par::IMBALANCE] >= 1.0);
    assert!(a.gauges[jcr_ctx::par::CRITICAL_CHUNK_NS] >= 0.0);
}

#[test]
fn pool_accounting_counts_match_across_worker_widths() {
    // Chunking is width-independent, so the chunk/item counters and the
    // chunk-length histogram agree at any width; only the *per-worker*
    // observation counts scale with the width.
    let s1 = instrumented_solve(1);
    for width in [2usize, 8] {
        let sw = instrumented_solve(width);
        assert_eq!(sw.counters["pool.regions"], s1.counters["pool.regions"]);
        assert_eq!(sw.counters["pool.chunks"], s1.counters["pool.chunks"]);
        assert_eq!(sw.counters["pool.items"], s1.counters["pool.items"]);
        let ha = &s1.histograms[jcr_ctx::par::CHUNK_LEN];
        let hb = &sw.histograms[jcr_ctx::par::CHUNK_LEN];
        assert_eq!(ha.buckets(), hb.buckets(), "width {width}: chunk lengths");
        assert_eq!(
            sw.histograms[jcr_ctx::par::WORKER_BUSY_NS].count(),
            sw.counters["pool.regions"] * width as u64,
            "width {width}: busy observations scale with width"
        );
    }
}

#[test]
fn chrome_trace_from_a_real_solve_is_valid_at_any_width() {
    for workers in [1, 2] {
        let snap = instrumented_solve(workers);
        let text = profile::chrome_trace(&snap).render();
        let pairs = profile::validate_chrome_trace(&text).expect("balanced B/E");
        let expected: u64 = snap.nodes.iter().map(|n| n.count).sum();
        assert_eq!(pairs as u64, expected, "workers = {workers}");
        // Collapsed stacks enumerate the same tree deterministically.
        let folded = profile::collapsed_stacks(&snap);
        assert_eq!(folded.lines().count(), snap.nodes.len() - 1);
    }
}

#[test]
fn factory_sweep_shares_one_registry_and_stays_deterministic() {
    let sc = small_scenario();
    let cfg = ExpConfig {
        runs: 2,
        hours: 1,
        ..ExpConfig::default()
    };
    let run_sweep = |workers: usize| {
        let sweep = SolverContext::new().with_workers(workers);
        let algos = vec![Algo {
            name: "SP".into(),
            run: Box::new(|inst, ctx| ShortestPathPlacement.solve_with_context(inst, ctx)),
        }];
        let metrics = evaluate_in(&sweep, &sc, &algos, cfg, &default_factory);
        (metrics, sweep.obs_snapshot())
    };
    let (m1, s1) = run_sweep(1);
    // The per-run contexts were absorbed: the sweep context holds the
    // inner solves' spans and metric histograms.
    assert!(s1.shape().contains("lp.solve"), "shape:\n{}", s1.shape());
    assert!(s1.shape().contains("graph.ksp"), "shape:\n{}", s1.shape());
    assert!(s1.histograms.contains_key("lp.pivot_ns"));
    let (m2, s2) = run_sweep(4);
    assert_eq!(s1.shape(), s2.shape(), "registry shape across widths");
    for (a, b) in m1.iter().zip(&m2) {
        assert_eq!(a.cost_true.to_bits(), b.cost_true.to_bits());
        assert_eq!(a.cost_pred.to_bits(), b.cost_pred.to_bits());
    }
}
