//! Reproducibility of the observability layer across pool widths: the
//! aggregate span-tree shape, every named counter, and every
//! `Count`-unit histogram must be **bit-identical** for any worker count
//! (only durations may differ), both for a direct instrumented solve and
//! for a Monte-Carlo sweep through the context-factory path.

use jcr_bench::exp::{default_factory, evaluate_in, Algo, ExpConfig};
use jcr_bench::{build_instance, profile, Scenario};
use jcr_core::prelude::*;
use jcr_ctx::SolverContext;

/// A trimmed chunk-default scenario so three full alternating solves
/// stay test-suite friendly.
fn small_scenario() -> Scenario {
    let mut sc = Scenario::chunk_default();
    sc.n_videos = 5;
    sc.hours = 1;
    sc
}

fn instrumented_solve(workers: usize) -> jcr_ctx::obs::ObsSnapshot {
    let sc = small_scenario();
    let n_edges = sc.topology().edge_nodes.len();
    let rates = sc.demand(n_edges).true_rates(0, n_edges);
    let inst = build_instance(&sc, &rates);
    let ctx = SolverContext::new().with_workers(workers);
    Alternating::new()
        .solve_with_context(&inst, &ctx)
        .expect("solves");
    ctx.obs_snapshot()
}

#[test]
fn span_tree_and_metrics_are_identical_across_worker_counts() {
    let baseline = instrumented_solve(1);
    let shape = baseline.shape();
    for needle in ["alt.solve", "alt.round", "lp.solve", "pool.chunk"] {
        assert!(shape.contains(needle), "missing {needle} in:\n{shape}");
    }
    assert!(
        baseline.histograms.contains_key("lp.pivot_ns"),
        "pivot latency histogram recorded"
    );
    for workers in [2, 8] {
        let snap = instrumented_solve(workers);
        assert_eq!(snap.shape(), shape, "workers = {workers}");
    }
}

#[test]
fn chrome_trace_from_a_real_solve_is_valid_at_any_width() {
    for workers in [1, 2] {
        let snap = instrumented_solve(workers);
        let text = profile::chrome_trace(&snap).render();
        let pairs = profile::validate_chrome_trace(&text).expect("balanced B/E");
        let expected: u64 = snap.nodes.iter().map(|n| n.count).sum();
        assert_eq!(pairs as u64, expected, "workers = {workers}");
        // Collapsed stacks enumerate the same tree deterministically.
        let folded = profile::collapsed_stacks(&snap);
        assert_eq!(folded.lines().count(), snap.nodes.len() - 1);
    }
}

#[test]
fn factory_sweep_shares_one_registry_and_stays_deterministic() {
    let sc = small_scenario();
    let cfg = ExpConfig {
        runs: 2,
        hours: 1,
        ..ExpConfig::default()
    };
    let run_sweep = |workers: usize| {
        let sweep = SolverContext::new().with_workers(workers);
        let algos = vec![Algo {
            name: "SP".into(),
            run: Box::new(|inst, ctx| ShortestPathPlacement.solve_with_context(inst, ctx)),
        }];
        let metrics = evaluate_in(&sweep, &sc, &algos, cfg, &default_factory);
        (metrics, sweep.obs_snapshot())
    };
    let (m1, s1) = run_sweep(1);
    // The per-run contexts were absorbed: the sweep context holds the
    // inner solves' spans and metric histograms.
    assert!(s1.shape().contains("lp.solve"), "shape:\n{}", s1.shape());
    assert!(s1.shape().contains("graph.ksp"), "shape:\n{}", s1.shape());
    assert!(s1.histograms.contains_key("lp.pivot_ns"));
    let (m2, s2) = run_sweep(4);
    assert_eq!(s1.shape(), s2.shape(), "registry shape across widths");
    for (a, b) in m1.iter().zip(&m2) {
        assert_eq!(a.cost_true.to_bits(), b.cost_true.to_bits());
        assert_eq!(a.cost_pred.to_bits(), b.cost_pred.to_bits());
    }
}
