//! End-to-end smoke test of the `experiments diff` subcommand through
//! the real binary: `bench` writes an `OBS.json` artifact next to the
//! report, and diffing that artifact against itself reports zero deltas
//! and exits 0 — the contract the CI bench gate's artifact pipeline
//! rests on.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn bench_writes_obs_artifact_and_self_diff_exits_zero() {
    let dir = std::env::temp_dir().join("jcr_diff_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let bench_out = dir.join("BENCH_SMOKE.json");
    let obs_out = dir.join("OBS_SMOKE.json");

    // A minimal bench run: one repetition, one hour, narrow pool.
    let status = experiments()
        .args([
            "bench",
            "--runs",
            "1",
            "--hours",
            "1",
            "--workers",
            "2",
            "--out",
            bench_out.to_str().unwrap(),
        ])
        .status()
        .expect("spawn experiments bench");
    assert!(status.success(), "bench exits 0 without a baseline");
    assert!(
        obs_out.exists(),
        "bench derives OBS_SMOKE.json from --out BENCH_SMOKE.json"
    );

    // Self-diff: zero deltas, exit 0, and the summary says so.
    let out = experiments()
        .args(["diff", obs_out.to_str().unwrap(), obs_out.to_str().unwrap()])
        .output()
        .expect("spawn experiments diff");
    assert!(out.status.success(), "self-diff exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("zero deltas"),
        "self-diff reports zero deltas: {stdout}"
    );

    // The artifact is a valid canonical snapshot (parse + re-render is
    // the identity), so uploads are diffable by later runs.
    let text = std::fs::read_to_string(&obs_out).unwrap();
    let wire = jcr_ctx::obs::wire::WireSnapshot::parse(&text).expect("valid snapshot");
    assert_eq!(wire.render(), text, "artifact is canonical");
    assert_eq!(
        wire.meta.get("kind").map(String::as_str),
        Some("jcr-bench-obs")
    );
    assert_eq!(wire.meta.get("workers").map(String::as_str), Some("2"));

    // Unknown phase: a named error and nonzero exit.
    let out = experiments()
        .args([
            "diff",
            obs_out.to_str().unwrap(),
            obs_out.to_str().unwrap(),
            "--phase",
            "no_such_phase",
        ])
        .output()
        .expect("spawn experiments diff --phase");
    assert!(!out.status.success(), "unknown phase exits nonzero");

    // Wrong arity: usage error, exit 2.
    let out = experiments()
        .args(["diff", obs_out.to_str().unwrap()])
        .output()
        .expect("spawn experiments diff with one path");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}
