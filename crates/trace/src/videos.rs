//! The paper's Table 1: statistics of the YouTube videos used in the
//! evaluation, embedded verbatim.

/// One row of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VideoStats {
    /// YouTube video id.
    pub id: &'static str,
    /// File size in MB.
    pub size_mb: f64,
    /// Number of 100-MB chunks (last chunk padded, footnote 4).
    pub chunks_100mb: usize,
    /// Total views over the 100 evaluation hours (footnote 5).
    pub total_views: u64,
}

/// Table 1 of the paper, in row order (the first 10 rows are the "top-10"
/// videos used by the default setting).
pub const TABLE1: [VideoStats; 12] = [
    VideoStats {
        id: "dNCWe_6HAM8",
        size_mb: 450.8789,
        chunks_100mb: 5,
        total_views: 14_144_021,
    },
    VideoStats {
        id: "f5_wn8mexmM",
        size_mb: 611.7188,
        chunks_100mb: 7,
        total_views: 6_046_921,
    },
    VideoStats {
        id: "3YqPKLZF_WU",
        size_mb: 746.1914,
        chunks_100mb: 8,
        total_views: 3_516_996,
    },
    VideoStats {
        id: "2dTMIH5gCHg",
        size_mb: 387.5977,
        chunks_100mb: 4,
        total_views: 2_724_433,
    },
    VideoStats {
        id: "CULF91XH87w",
        size_mb: 851.6602,
        chunks_100mb: 9,
        total_views: 1_935_258,
    },
    VideoStats {
        id: "QDYDRA5JPLE",
        size_mb: 427.1484,
        chunks_100mb: 5,
        total_views: 1_606_676,
    },
    VideoStats {
        id: "LWAI7HkQMyc",
        size_mb: 158.2031,
        chunks_100mb: 2,
        total_views: 2_701_699,
    },
    VideoStats {
        id: "Zpi7CTDvi1A",
        size_mb: 709.2773,
        chunks_100mb: 8,
        total_views: 1_286_994,
    },
    VideoStats {
        id: "vH7n1vj-cwQ",
        size_mb: 155.5664,
        chunks_100mb: 2,
        total_views: 128_860,
    },
    VideoStats {
        id: "JNCkUEeUFy0",
        size_mb: 308.4961,
        chunks_100mb: 4,
        total_views: 369_157,
    },
    VideoStats {
        id: "CaimKeDcudo",
        size_mb: 337.5,
        chunks_100mb: 4,
        total_views: 613_737,
    },
    VideoStats {
        id: "gXH7_XaGuPc",
        size_mb: 680.2734,
        chunks_100mb: 7,
        total_views: 368_432,
    },
];

/// Number of evaluation hours in the trace (§6).
pub const EVAL_HOURS: usize = 100;

/// Number of training hours preceding the evaluation window (§6).
pub const TRAIN_HOURS: usize = 550;

/// The first `n` videos of Table 1 (the paper's "top-N").
pub fn top_videos(n: usize) -> &'static [VideoStats] {
    &TABLE1[..n.min(TABLE1.len())]
}

/// Number of chunks of `video` under chunk size `chunk_mb` (last chunk
/// padded).
pub fn chunk_count(video: &VideoStats, chunk_mb: f64) -> usize {
    (video.size_mb / chunk_mb).ceil() as usize
}

/// Total catalog size (#chunks) of the top-`n` videos at chunk size
/// `chunk_mb`. The paper's values: 54 chunks at 100 MB, 103 at 50 MB,
/// 199 at 25 MB (Appendix D.2).
pub fn catalog_size(n: usize, chunk_mb: f64) -> usize {
    top_videos(n).iter().map(|v| chunk_count(v, chunk_mb)).sum()
}

/// Total request rate of the top-`n` videos in chunks/hour at the given
/// chunk size: each view requests every chunk of the video once, averaged
/// over the 100 evaluation hours. The paper reports 1 949 666.52
/// chunks/hour for the top-10 at 100 MB.
pub fn total_chunk_rate(n: usize, chunk_mb: f64) -> f64 {
    top_videos(n)
        .iter()
        .map(|v| v.total_views as f64 * chunk_count(v, chunk_mb) as f64)
        .sum::<f64>()
        / EVAL_HOURS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_counts_match_table1() {
        for v in &TABLE1 {
            assert_eq!(chunk_count(v, 100.0), v.chunks_100mb, "{}", v.id);
        }
    }

    #[test]
    fn top10_catalog_is_54_chunks() {
        assert_eq!(catalog_size(10, 100.0), 54);
    }

    #[test]
    fn appendix_d2_catalog_sizes() {
        assert_eq!(catalog_size(10, 50.0), 103);
        assert_eq!(catalog_size(10, 25.0), 199);
    }

    #[test]
    fn total_rate_matches_paper() {
        // §6: "the top-10 videos have a total request rate of 1949666.52
        // chunks/hour".
        let rate = total_chunk_rate(10, 100.0);
        assert!((rate - 1_949_666.52).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn top_videos_clamps() {
        assert_eq!(top_videos(99).len(), 12);
        assert_eq!(top_videos(3).len(), 3);
    }
}
