//! Exact Gaussian-process regression with the paper's kernel family
//! (white noise + periodic + RBF) and log-marginal-likelihood
//! hyperparameter selection — a from-scratch stand-in for the
//! scikit-learn GPR the paper uses to predict next-hour demand (§6,
//! Fig. 4).
//!
//! Targets are standardized internally; inputs are time stamps in hours.

/// Kernel hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Kernel {
    /// RBF variance.
    pub rbf_var: f64,
    /// RBF length scale (hours).
    pub rbf_len: f64,
    /// Periodic-kernel variance.
    pub per_var: f64,
    /// Periodic length scale.
    pub per_len: f64,
    /// Period (hours); the diurnal cycle is 24.
    pub period: f64,
    /// White-noise variance.
    pub noise_var: f64,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel {
            rbf_var: 0.5,
            rbf_len: 20.0,
            per_var: 0.5,
            per_len: 1.0,
            period: 24.0,
            noise_var: 0.05,
        }
    }
}

impl Kernel {
    /// Covariance between time stamps `a` and `b` (noise excluded).
    pub fn eval(&self, a: f64, b: f64) -> f64 {
        let d = a - b;
        let rbf = self.rbf_var * (-d * d / (2.0 * self.rbf_len * self.rbf_len)).exp();
        let s = (std::f64::consts::PI * d / self.period).sin();
        let per = self.per_var * (-2.0 * s * s / (self.per_len * self.per_len)).exp();
        rbf + per
    }
}

/// A fitted Gaussian-process regressor.
#[derive(Clone, Debug)]
pub struct Gpr {
    kernel: Kernel,
    times: Vec<f64>,
    /// `K⁻¹ (y − μ)` via Cholesky.
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    log_marginal: f64,
}

/// Errors from GPR fitting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GprError {
    /// Fewer than two observations.
    TooFewObservations,
    /// The kernel matrix was not positive definite.
    NotPositiveDefinite,
}

impl std::fmt::Display for GprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GprError::TooFewObservations => write!(f, "need at least two observations"),
            GprError::NotPositiveDefinite => write!(f, "kernel matrix not positive definite"),
        }
    }
}

impl std::error::Error for GprError {}

impl Gpr {
    /// Fits a GP with fixed hyperparameters to observations
    /// `(times[i], values[i])`.
    ///
    /// # Errors
    ///
    /// [`GprError`] on degenerate inputs.
    pub fn fit(kernel: Kernel, times: &[f64], values: &[f64]) -> Result<Self, GprError> {
        let n = times.len();
        if n < 2 || values.len() != n {
            return Err(GprError::TooFewObservations);
        }
        let y_mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-12);
        let y: Vec<f64> = values.iter().map(|v| (v - y_mean) / y_std).collect();

        // K + σ_n² I, lower-triangular Cholesky.
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut v = kernel.eval(times[i], times[j]);
                if i == j {
                    v += kernel.noise_var + 1e-10;
                }
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }
        let l = cholesky(&mut k, n).ok_or(GprError::NotPositiveDefinite)?;
        // alpha = L⁻ᵀ L⁻¹ y.
        let mut alpha = y.clone();
        forward_solve(&l, n, &mut alpha);
        let mut log_det = 0.0;
        for i in 0..n {
            log_det += l[i * n + i].ln();
        }
        // log ML before back substitution: −½‖L⁻¹y‖² − Σ log L_ii − n/2·log 2π.
        let log_marginal = -0.5 * alpha.iter().map(|a| a * a).sum::<f64>()
            - log_det
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        backward_solve(&l, n, &mut alpha);

        Ok(Gpr {
            kernel,
            times: times.to_vec(),
            alpha,
            y_mean,
            y_std,
            log_marginal,
        })
    }

    /// Fits with a small grid search over hyperparameters, keeping the
    /// maximum log-marginal-likelihood model (the paper's "maximum
    /// marginal likelihood fitting").
    ///
    /// # Errors
    ///
    /// [`GprError`] if every candidate fails.
    pub fn fit_grid(times: &[f64], values: &[f64]) -> Result<Self, GprError> {
        let mut best: Option<Gpr> = None;
        for &rbf_len in &[10.0, 40.0, 150.0] {
            for &per_len in &[0.6, 1.2] {
                for &noise_var in &[0.01, 0.1] {
                    let kernel = Kernel {
                        rbf_var: 0.5,
                        rbf_len,
                        per_var: 0.5,
                        per_len,
                        period: 24.0,
                        noise_var,
                    };
                    if let Ok(model) = Gpr::fit(kernel, times, values) {
                        if best
                            .as_ref()
                            .is_none_or(|b| model.log_marginal > b.log_marginal)
                        {
                            best = Some(model);
                        }
                    }
                }
            }
        }
        best.ok_or(GprError::NotPositiveDefinite)
    }

    /// Posterior-mean prediction at time `t`.
    pub fn predict(&self, t: f64) -> f64 {
        let k_star: f64 = self
            .times
            .iter()
            .zip(&self.alpha)
            .map(|(&ti, &a)| self.kernel.eval(t, ti) * a)
            .sum();
        self.y_mean + self.y_std * k_star
    }

    /// Log marginal likelihood of the fitted model (standardized targets).
    pub fn log_marginal(&self) -> f64 {
        self.log_marginal
    }

    /// The kernel used by the fitted model.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

/// In-place lower Cholesky; returns the factor on success.
fn cholesky(a: &mut [f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solves `L x = b` in place.
fn forward_solve(l: &[f64], n: usize, b: &mut [f64]) {
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * b[k];
        }
        b[i] = sum / l[i * n + i];
    }
}

/// Solves `Lᵀ x = b` in place.
fn backward_solve(l: &[f64], n: usize, b: &mut [f64]) {
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * b[k];
        }
        b[i] = sum / l[i * n + i];
    }
}

/// Rolling next-hour prediction over an evaluation window, refitting every
/// `refit_every` hours (the paper refits every 5 hours, footnote 6).
///
/// `series` holds training history followed by `eval_hours` evaluation
/// points; returns one prediction per evaluation hour. The model only ever
/// sees observations strictly before the hour it predicts. `window` caps
/// the history length used for fitting (most recent points).
///
/// # Errors
///
/// Propagates [`GprError`] from fitting.
pub fn rolling_forecast(
    series: &[f64],
    eval_hours: usize,
    refit_every: usize,
    window: usize,
) -> Result<Vec<f64>, GprError> {
    assert!(eval_hours < series.len(), "series too short");
    assert!(refit_every >= 1);
    let train_len = series.len() - eval_hours;
    let mut predictions = Vec::with_capacity(eval_hours);
    let mut model: Option<Gpr> = None;
    for h in 0..eval_hours {
        if h % refit_every == 0 {
            let end = train_len + h;
            let start = end.saturating_sub(window);
            let times: Vec<f64> = (start..end).map(|t| t as f64).collect();
            let values = &series[start..end];
            model = Some(Gpr::fit_grid(&times, values)?);
        }
        let t = (train_len + h) as f64;
        // `refit_every >= 1` (asserted above) makes the first iteration
        // (`h == 0`) fit, so a model is always present from then on.
        let fitted = model.as_ref().expect("first iteration fits a model");
        predictions.push(fitted.predict(t).max(0.0));
    }
    Ok(predictions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_smooth_function() {
        let times: Vec<f64> = (0..48).map(|t| t as f64).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|t| 10.0 + 3.0 * (2.0 * std::f64::consts::PI * t / 24.0).sin())
            .collect();
        let model = Gpr::fit(Kernel::default(), &times, &values).unwrap();
        // In-sample prediction close to truth.
        for (&t, &v) in times.iter().zip(&values) {
            assert!((model.predict(t) - v).abs() < 0.5, "t={t}");
        }
        // One-step extrapolation continues the cycle.
        let t = 48.0;
        let truth = 10.0 + 3.0 * (2.0 * std::f64::consts::PI * t / 24.0).sin();
        assert!((model.predict(t) - truth).abs() < 1.0);
    }

    #[test]
    fn grid_prefers_better_likelihood() {
        let times: Vec<f64> = (0..72).map(|t| t as f64).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|t| (2.0 * std::f64::consts::PI * t / 24.0).sin())
            .collect();
        let fixed = Gpr::fit(
            Kernel {
                noise_var: 1.0,
                ..Kernel::default()
            },
            &times,
            &values,
        )
        .unwrap();
        let grid = Gpr::fit_grid(&times, &values).unwrap();
        assert!(grid.log_marginal() >= fixed.log_marginal());
    }

    #[test]
    fn kernel_is_symmetric_positive_and_periodic() {
        let k = Kernel::default();
        for (a, b) in [(0.0, 5.0), (3.0, 100.0), (-2.0, 7.5)] {
            assert!((k.eval(a, b) - k.eval(b, a)).abs() < 1e-15, "symmetry");
            assert!(k.eval(a, b) > 0.0, "positivity for the sum kernel");
            assert!(k.eval(a, a) >= k.eval(a, b), "diagonal dominance");
        }
        // The periodic component repeats every `period` hours: at lag 24
        // the periodic part is maximal again (only the RBF decays).
        let no_rbf = Kernel {
            rbf_var: 0.0,
            ..Kernel::default()
        };
        assert!((no_rbf.eval(0.0, 24.0) - no_rbf.eval(0.0, 0.0)).abs() < 1e-12);
        assert!(no_rbf.eval(0.0, 12.0) < no_rbf.eval(0.0, 24.0));
    }

    #[test]
    fn constant_series_predicts_the_constant() {
        let times: Vec<f64> = (0..30).map(|t| t as f64).collect();
        let values = vec![42.0; 30];
        let model = Gpr::fit(Kernel::default(), &times, &values).unwrap();
        assert!((model.predict(30.0) - 42.0).abs() < 1e-6);
        assert!((model.predict(15.5) - 42.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_tiny_input() {
        assert_eq!(
            Gpr::fit(Kernel::default(), &[0.0], &[1.0]).unwrap_err(),
            GprError::TooFewObservations
        );
    }

    #[test]
    fn rolling_forecast_beats_naive_on_periodic_signal() {
        // Periodic signal with mild noise: GPR should out-predict the
        // "previous hour" baseline.
        use crate::standard_normal;
        use jcr_ctx::rng::SeedableRng;
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(12);
        let n = 120;
        let eval = 24;
        let series: Vec<f64> = (0..n)
            .map(|t| {
                100.0
                    + 40.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
                    + 2.0 * standard_normal(&mut rng)
            })
            .collect();
        let preds = rolling_forecast(&series, eval, 5, 96).unwrap();
        let truth = &series[n - eval..];
        let rmse_gpr: f64 = (preds
            .iter()
            .zip(truth)
            .map(|(p, t)| (p - t).powi(2))
            .sum::<f64>()
            / eval as f64)
            .sqrt();
        let rmse_naive: f64 = ((0..eval)
            .map(|h| (series[n - eval + h - 1] - truth[h]).powi(2))
            .sum::<f64>()
            / eval as f64)
            .sqrt();
        assert!(
            rmse_gpr < rmse_naive,
            "GPR RMSE {rmse_gpr} ≥ naive RMSE {rmse_naive}"
        );
    }
}
