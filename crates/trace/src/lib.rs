//! Demand substrate for the cache-network evaluation.
//!
//! The paper drives its simulations with per-hour view counts of the
//! top-12 YouTube videos (Table 1; 100 evaluation hours plus 550 training
//! hours) and predicts next-hour demand with scikit-learn Gaussian-process
//! regression. The raw traces are not redistributable, so this crate:
//!
//! * embeds the **published Table-1 statistics** verbatim
//!   ([`videos::TABLE1`]) — video ids, sizes, chunk counts, total views —
//!   and reproduces the paper's derived quantities (54 hundred-MB chunks
//!   for the top-10 videos, 1 949 666.52 chunks/hour total request rate);
//! * synthesizes seeded hourly view series with diurnal periodicity and
//!   log-normal noise, scaled to the published totals
//!   ([`synth::ViewTrace`]);
//! * implements exact **Gaussian-process regression** with the same kernel
//!   family the paper uses (RBF + periodic + white noise) and
//!   log-marginal-likelihood hyperparameter selection ([`gpr`]);
//! * provides the Zipf synthetic workload of the conference version, the
//!   Gaussian prediction-error injection of Appendix D.3, and the
//!   file ↔ chunk catalog conversion of Appendix D.2
//!   ([`zipf`], [`synth::perturb_demand`], [`chunking`]).

pub mod chunking;
pub mod gpr;
pub mod synth;
pub mod videos;
pub mod zipf;

/// Samples a standard normal via Box–Muller (the `rand` crate alone does
/// not ship distributions).
pub fn standard_normal<R: jcr_ctx::rng::Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_ctx::rng::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
