//! Synthetic hourly view traces calibrated to the paper's Table 1.
//!
//! The algorithms consume only per-hour request rates, so the substitute
//! trace must preserve what the evaluation depends on: heterogeneous video
//! popularity (taken verbatim from Table 1's total views) and learnable
//! temporal structure (a diurnal cycle plus noise, which the GPR predictor
//! of Fig. 4 can track). Each video's series is
//!
//! ```text
//!     views_i(t) = base_i · (1 + A·sin(2π(t − φ_i)/24)) · lognormal(σ)
//! ```
//!
//! scaled so that the evaluation window sums exactly to the published
//! `total_views`.

use jcr_ctx::rng::StdRng;
use jcr_ctx::rng::{Rng, SeedableRng};

use crate::standard_normal;
use crate::videos::{VideoStats, EVAL_HOURS, TRAIN_HOURS};

/// Amplitude of the diurnal cycle.
const DIURNAL_AMPLITUDE: f64 = 0.6;
/// Log-normal noise sigma.
const NOISE_SIGMA: f64 = 0.15;

/// A synthetic per-video hourly view trace: `TRAIN_HOURS` of history
/// followed by `EVAL_HOURS` of evaluation data.
#[derive(Clone, Debug)]
pub struct ViewTrace {
    /// Per-video hourly views, each of length `train_hours + eval_hours`.
    pub views: Vec<Vec<f64>>,
    /// Number of leading training hours.
    pub train_hours: usize,
    /// Number of trailing evaluation hours.
    pub eval_hours: usize,
}

impl ViewTrace {
    /// Generates the trace for the given videos with the paper's horizon
    /// (550 training hours + 100 evaluation hours).
    pub fn generate(videos: &[VideoStats], seed: u64) -> Self {
        Self::generate_with_horizon(videos, seed, TRAIN_HOURS, EVAL_HOURS)
    }

    /// Generates with a custom horizon (tests use shorter ones).
    pub fn generate_with_horizon(
        videos: &[VideoStats],
        seed: u64,
        train_hours: usize,
        eval_hours: usize,
    ) -> Self {
        assert!(eval_hours > 0, "need at least one evaluation hour");
        let total = train_hours + eval_hours;
        let mut views = Vec::with_capacity(videos.len());
        for (vi, v) in videos.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x7472_6163 + vi as u64 * 0x9e37_79b9));
            let phase: f64 = rng.gen_range(0.0..24.0);
            let mut series: Vec<f64> = (0..total)
                .map(|t| {
                    let seasonal = 1.0
                        + DIURNAL_AMPLITUDE
                            * (2.0 * std::f64::consts::PI * (t as f64 - phase) / 24.0).sin();
                    let noise = (NOISE_SIGMA * standard_normal(&mut rng)).exp();
                    seasonal.max(0.05) * noise
                })
                .collect();
            // Scale the evaluation window to the published total.
            let eval_sum: f64 = series[train_hours..].iter().sum();
            let scale = v.total_views as f64 / eval_sum;
            for s in &mut series {
                *s *= scale;
            }
            views.push(series);
        }
        ViewTrace {
            views,
            train_hours,
            eval_hours,
        }
    }

    /// Views of video `vi` during evaluation hour `h` (0-based).
    pub fn eval_views(&self, vi: usize, h: usize) -> f64 {
        self.views[vi][self.train_hours + h]
    }

    /// The training history of video `vi` up to (excluding) evaluation
    /// hour `h`: everything the predictor may see when forecasting hour `h`.
    pub fn history_until(&self, vi: usize, h: usize) -> &[f64] {
        &self.views[vi][..self.train_hours + h]
    }

    /// Hourly views of video `vi` averaged over the evaluation window.
    pub fn mean_eval_views(&self, vi: usize) -> f64 {
        let s: f64 = self.views[vi][self.train_hours..].iter().sum();
        s / self.eval_hours as f64
    }
}

impl ViewTrace {
    /// Serializes the trace to a plain-text format (`#` comments, one
    /// `series` line per video with space-separated hourly views).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        // `fmt::Write` into a `String` is infallible; the expects below
        // document that invariant rather than a reachable failure.
        let mut out = String::from("jcr-trace v1\n");
        writeln!(out, "train_hours {}", self.train_hours).expect("write to string");
        writeln!(out, "eval_hours {}", self.eval_hours).expect("write to string");
        for series in &self.views {
            out.push_str("series");
            for v in series {
                write!(out, " {v}").expect("write to string");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a trace from the plain-text format — the hook for feeding
    /// *real* measured traces into the evaluation pipeline.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i, l.split('#').next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty());
        let (_, header) = lines.next().ok_or("empty input")?;
        if header != "jcr-trace v1" {
            return Err("expected header `jcr-trace v1`".into());
        }
        let mut train_hours = None;
        let mut eval_hours = None;
        let mut views: Vec<Vec<f64>> = Vec::new();
        for (lineno, line) in lines {
            let mut parts = line.split_whitespace();
            // Empty lines are filtered above; an empty keyword can only
            // mean that invariant broke, and falls through to the
            // unknown-keyword parse error instead of panicking.
            match parts.next().unwrap_or_default() {
                "train_hours" => {
                    train_hours = Some(
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or(format!("line {}: bad train_hours", lineno + 1))?,
                    )
                }
                "eval_hours" => {
                    eval_hours = Some(
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or(format!("line {}: bad eval_hours", lineno + 1))?,
                    )
                }
                "series" => {
                    let series: Vec<f64> = parts
                        .map(|t| {
                            t.parse()
                                .map_err(|_| format!("line {}: bad value", lineno + 1))
                        })
                        .collect::<Result<_, _>>()?;
                    views.push(series);
                }
                other => return Err(format!("line {}: unknown keyword {other:?}", lineno + 1)),
            }
        }
        let train_hours = train_hours.ok_or("missing train_hours")?;
        let eval_hours: usize = eval_hours.ok_or("missing eval_hours")?;
        if eval_hours == 0 {
            return Err("eval_hours must be positive".into());
        }
        for (vi, series) in views.iter().enumerate() {
            if series.len() != train_hours + eval_hours {
                return Err(format!(
                    "series {vi} has {} entries, expected {}",
                    series.len(),
                    train_hours + eval_hours
                ));
            }
        }
        Ok(ViewTrace {
            views,
            train_hours,
            eval_hours,
        })
    }
}

/// Injects synthetic prediction errors (Appendix D.3): returns
/// `max(0, rate + N(0, σ²))` per entry. `sigma` is in the same units as
/// the rates (the appendix's RMSE).
pub fn perturb_demand<R: Rng>(rates: &[f64], sigma: f64, rng: &mut R) -> Vec<f64> {
    rates
        .iter()
        .map(|&r| (r + sigma * standard_normal(rng)).max(0.0))
        .collect()
}

/// Splits each video's hourly views across edge nodes: node `k` receives
/// share `weights[vi][k]` of video `vi`'s views (the paper "randomly
/// distributes the requests for each video among the edge nodes").
/// Returns per-video Dirichlet-like weights drawn from normalized uniform
/// samples.
pub fn random_edge_shares<R: Rng>(n_videos: usize, n_edges: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..n_videos)
        .map(|_| {
            let raw: Vec<f64> = (0..n_edges).map(|_| rng.gen_range(0.05..1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / sum).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::videos::TABLE1;

    #[test]
    fn eval_window_sums_to_published_totals() {
        let trace = ViewTrace::generate_with_horizon(&TABLE1, 42, 50, 100);
        for (vi, v) in TABLE1.iter().enumerate() {
            let sum: f64 = trace.views[vi][trace.train_hours..].iter().sum();
            assert!(
                (sum - v.total_views as f64).abs() < 1.0,
                "{}: {sum} vs {}",
                v.id,
                v.total_views
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ViewTrace::generate_with_horizon(&TABLE1[..3], 7, 20, 10);
        let b = ViewTrace::generate_with_horizon(&TABLE1[..3], 7, 20, 10);
        assert_eq!(a.views, b.views);
        let c = ViewTrace::generate_with_horizon(&TABLE1[..3], 8, 20, 10);
        assert_ne!(a.views, c.views);
    }

    #[test]
    fn views_positive_and_diurnal() {
        let trace = ViewTrace::generate_with_horizon(&TABLE1[..1], 3, 0, 96);
        let series = &trace.views[0];
        assert!(series.iter().all(|&v| v > 0.0));
        // A diurnal signal should make the per-hour-of-day means differ
        // noticeably.
        let mut by_hour = [0.0; 24];
        for (t, &v) in series.iter().enumerate() {
            by_hour[t % 24] += v;
        }
        let max = by_hour.iter().copied().fold(0.0f64, f64::max);
        let min = by_hour.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > 1.5 * min, "no visible diurnal cycle: {min}..{max}");
    }

    #[test]
    fn history_grows_with_hour() {
        let trace = ViewTrace::generate_with_horizon(&TABLE1[..1], 3, 30, 10);
        assert_eq!(trace.history_until(0, 0).len(), 30);
        assert_eq!(trace.history_until(0, 7).len(), 37);
    }

    #[test]
    fn text_round_trip() {
        let trace = ViewTrace::generate_with_horizon(&TABLE1[..3], 7, 12, 6);
        let text = trace.to_text();
        let back = ViewTrace::from_text(&text).unwrap();
        assert_eq!(back.train_hours, 12);
        assert_eq!(back.eval_hours, 6);
        assert_eq!(back.views.len(), 3);
        for (a, b) in back.views.iter().zip(&trace.views) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9 * y.abs().max(1.0));
            }
        }
    }

    #[test]
    fn text_rejects_malformed() {
        assert!(ViewTrace::from_text("").is_err());
        assert!(ViewTrace::from_text("nope").is_err());
        assert!(ViewTrace::from_text("jcr-trace v1\ntrain_hours 2").is_err());
        assert!(
            ViewTrace::from_text("jcr-trace v1\ntrain_hours 1\neval_hours 1\nseries 1 2 3")
                .is_err()
        );
        assert!(
            ViewTrace::from_text("jcr-trace v1\ntrain_hours 1\neval_hours 1\nseries 1 oops")
                .is_err()
        );
    }

    #[test]
    fn perturbation_clamps_at_zero() {
        use jcr_ctx::rng::SeedableRng;
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(1);
        let rates = vec![1.0, 0.001, 100.0];
        let noisy = perturb_demand(&rates, 10.0, &mut rng);
        assert!(noisy.iter().all(|&r| r >= 0.0));
        // With sigma 0 it is the identity.
        assert_eq!(perturb_demand(&rates, 0.0, &mut rng), rates);
    }

    #[test]
    fn edge_shares_normalized() {
        use jcr_ctx::rng::SeedableRng;
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(2);
        let shares = random_edge_shares(4, 6, &mut rng);
        for row in &shares {
            assert_eq!(row.len(), 6);
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&w| w > 0.0));
        }
    }
}
