//! Zipf-distributed synthetic demand (the conference version's workload).

use jcr_ctx::rng::Rng;

/// Zipf popularity weights: `p_i ∝ 1 / (i+1)^alpha`, normalized to sum
/// to 1.
///
/// # Panics
///
/// Panics if `n == 0` or `alpha < 0`.
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one item");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let raw: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Per-(item, requester) request rates: item popularity is Zipf(`alpha`),
/// the total rate is `total_rate`, and each item's rate is split across
/// `n_requesters` with uniformly random shares.
pub fn zipf_demand<R: Rng>(
    n_items: usize,
    n_requesters: usize,
    alpha: f64,
    total_rate: f64,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let weights = zipf_weights(n_items, alpha);
    weights
        .iter()
        .map(|w| {
            let raw: Vec<f64> = (0..n_requesters)
                .map(|_| rng.gen_range(0.05..1.0))
                .collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|r| total_rate * w * r / s).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_ctx::rng::SeedableRng;

    #[test]
    fn weights_normalized_and_decreasing() {
        let w = zipf_weights(10, 0.8);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let w = zipf_weights(4, 0.0);
        for &v in &w {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn demand_totals_match() {
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(3);
        let d = zipf_demand(5, 3, 1.0, 100.0, &mut rng);
        let total: f64 = d.iter().flatten().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|row| row.len() == 3));
    }
}
