//! Zipf-distributed synthetic demand (the conference version's workload).

use jcr_ctx::rng::Rng;

/// Zipf popularity weights: `p_i ∝ 1 / (i+1)^alpha`, normalized to sum
/// to 1.
///
/// # Panics
///
/// Panics if `n == 0` or `alpha < 0`.
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one item");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let raw: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Per-(item, requester) request rates: item popularity is Zipf(`alpha`),
/// the total rate is `total_rate`, and each item's rate is split across
/// `n_requesters` with uniformly random shares.
pub fn zipf_demand<R: Rng>(
    n_items: usize,
    n_requesters: usize,
    alpha: f64,
    total_rate: f64,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    let weights = zipf_weights(n_items, alpha);
    weights
        .iter()
        .map(|w| {
            let raw: Vec<f64> = (0..n_requesters)
                .map(|_| rng.gen_range(0.05..1.0))
                .collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|r| total_rate * w * r / s).collect()
        })
        .collect()
}

/// Sparse Zipf demand for stress-scale catalogs: popularity is
/// Zipf(`alpha`) over the full `n_items` catalog, but requests are
/// emitted only for the `active_items` most popular items (the
/// deterministic head of the distribution — Zipf weights strictly
/// decrease in rank), each requested by `requesters_per_item` requesters
/// chosen by rotation. Rates are renormalized over the active head so
/// they sum to `total_rate`.
///
/// Returns `(item, requester, rate)` triples — `active_items ×
/// requesters_per_item` of them rather than the `n_items × n_requesters`
/// dense matrix, which for a 10⁵–10⁶-chunk catalog is the difference
/// between kilobytes and gigabytes.
///
/// # Panics
///
/// Panics if `active_items > n_items`, `requesters_per_item >
/// n_requesters`, either is zero, or `zipf_weights`'s preconditions fail.
pub fn zipf_demand_sparse<R: Rng>(
    n_items: usize,
    n_requesters: usize,
    alpha: f64,
    total_rate: f64,
    active_items: usize,
    requesters_per_item: usize,
    rng: &mut R,
) -> Vec<(usize, usize, f64)> {
    assert!(active_items > 0 && active_items <= n_items);
    assert!(requesters_per_item > 0 && requesters_per_item <= n_requesters);
    let weights = zipf_weights(n_items, alpha);
    let head_mass: f64 = weights[..active_items].iter().sum();
    let mut out = Vec::with_capacity(active_items * requesters_per_item);
    for (i, &w) in weights[..active_items].iter().enumerate() {
        let item_rate = total_rate * w / head_mass;
        let raw: Vec<f64> = (0..requesters_per_item)
            .map(|_| rng.gen_range(0.05..1.0))
            .collect();
        let s: f64 = raw.iter().sum();
        for (j, r) in raw.into_iter().enumerate() {
            // Rotate the requester assignment with the item rank so load
            // spreads across all requesters deterministically.
            let requester = (i + j) % n_requesters;
            out.push((i, requester, item_rate * r / s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_ctx::rng::SeedableRng;

    #[test]
    fn weights_normalized_and_decreasing() {
        let w = zipf_weights(10, 0.8);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let w = zipf_weights(4, 0.0);
        for &v in &w {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn demand_totals_match() {
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(3);
        let d = zipf_demand(5, 3, 1.0, 100.0, &mut rng);
        let total: f64 = d.iter().flatten().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|row| row.len() == 3));
    }

    #[test]
    fn sparse_demand_covers_the_head_and_conserves_rate() {
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(7);
        let d = zipf_demand_sparse(100_000, 64, 0.8, 5000.0, 256, 4, &mut rng);
        assert_eq!(d.len(), 256 * 4);
        let total: f64 = d.iter().map(|&(_, _, r)| r).sum();
        assert!((total - 5000.0).abs() < 1e-6);
        assert!(d.iter().all(|&(i, s, r)| i < 256 && s < 64 && r > 0.0));
        // Per-item rates follow the Zipf head: item 0 outweighs item 255.
        let rate_of = |item: usize| -> f64 {
            d.iter()
                .filter(|&&(i, _, _)| i == item)
                .map(|&(_, _, r)| r)
                .sum()
        };
        assert!(rate_of(0) > rate_of(255));
    }

    #[test]
    fn sparse_demand_is_deterministic_per_seed() {
        let gen = || {
            let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(11);
            zipf_demand_sparse(1000, 8, 1.0, 100.0, 16, 2, &mut rng)
        };
        assert_eq!(gen(), gen());
    }
}
