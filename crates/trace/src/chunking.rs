//! File ↔ chunk catalog conversion (§6's two simulation granularities and
//! Appendix D.2's chunk-size sweep).
//!
//! Chunk-level operation divides each file into equal-sized chunks (the
//! last one padded, footnote 4), turning a heterogeneous catalog into a
//! homogeneous one at the price of application-layer reassembly; every
//! view of a file requests each of its chunks once.

/// A mapping between a heterogeneous file catalog and its equal-chunk
/// expansion.
#[derive(Clone, Debug, PartialEq)]
pub struct Chunking {
    /// For each chunk, the file it belongs to.
    pub file_of_chunk: Vec<usize>,
    /// For each file, the half-open chunk-index range `[start, end)`.
    pub chunks_of_file: Vec<(usize, usize)>,
    /// Chunk size (same unit as the file sizes).
    pub chunk_size: f64,
}

impl Chunking {
    /// Splits `file_sizes` into `chunk_size`-sized chunks (last chunk
    /// padded).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is not positive or a file size is not
    /// positive.
    pub fn new(file_sizes: &[f64], chunk_size: f64) -> Self {
        assert!(chunk_size > 0.0, "chunk size must be positive");
        assert!(
            file_sizes.iter().all(|&s| s > 0.0),
            "file sizes must be positive"
        );
        let mut file_of_chunk = Vec::new();
        let mut chunks_of_file = Vec::with_capacity(file_sizes.len());
        for (fi, &size) in file_sizes.iter().enumerate() {
            let count = (size / chunk_size).ceil() as usize;
            let start = file_of_chunk.len();
            file_of_chunk.extend(std::iter::repeat_n(fi, count));
            chunks_of_file.push((start, start + count));
        }
        Chunking {
            file_of_chunk,
            chunks_of_file,
            chunk_size,
        }
    }

    /// Total number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.file_of_chunk.len()
    }

    /// Number of chunks of one file.
    pub fn chunk_count(&self, file: usize) -> usize {
        let (s, e) = self.chunks_of_file[file];
        e - s
    }

    /// Expands per-file request rates (`rates[file][requester]`, in
    /// requests per unit time) to per-chunk rates: every view of a file
    /// requests each of its chunks once, so each chunk inherits its file's
    /// rate profile.
    pub fn expand_rates(&self, file_rates: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            file_rates.len(),
            self.chunks_of_file.len(),
            "one row per file"
        );
        self.file_of_chunk
            .iter()
            .map(|&fi| file_rates[fi].clone())
            .collect()
    }

    /// Collapses a per-chunk quantity back to files by summation (e.g.
    /// per-chunk cached counts into per-file cached fractions when divided
    /// by [`Chunking::chunk_count`]).
    pub fn collapse_sum(&self, per_chunk: &[f64]) -> Vec<f64> {
        assert_eq!(per_chunk.len(), self.num_chunks(), "one value per chunk");
        let mut out = vec![0.0; self.chunks_of_file.len()];
        for (c, &v) in per_chunk.iter().enumerate() {
            out[self.file_of_chunk[c]] += v;
        }
        out
    }

    /// The padding overhead: total padded chunk volume over the raw file
    /// volume (≥ 1; footnote 4's cost of equal-sized chunks).
    pub fn padding_overhead(&self, file_sizes: &[f64]) -> f64 {
        let raw: f64 = file_sizes.iter().sum();
        let padded = self.num_chunks() as f64 * self.chunk_size;
        padded / raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::videos::{top_videos, TABLE1};

    #[test]
    fn reproduces_the_paper_catalog_sizes() {
        let sizes: Vec<f64> = top_videos(10).iter().map(|v| v.size_mb).collect();
        assert_eq!(Chunking::new(&sizes, 100.0).num_chunks(), 54);
        assert_eq!(Chunking::new(&sizes, 50.0).num_chunks(), 103);
        assert_eq!(Chunking::new(&sizes, 25.0).num_chunks(), 199);
    }

    #[test]
    fn chunk_counts_match_table1() {
        let sizes: Vec<f64> = TABLE1.iter().map(|v| v.size_mb).collect();
        let ch = Chunking::new(&sizes, 100.0);
        for (fi, v) in TABLE1.iter().enumerate() {
            assert_eq!(ch.chunk_count(fi), v.chunks_100mb, "{}", v.id);
        }
    }

    #[test]
    fn rates_expand_and_collapse() {
        let ch = Chunking::new(&[250.0, 90.0], 100.0); // 3 + 1 chunks
        assert_eq!(ch.num_chunks(), 4);
        let file_rates = vec![vec![2.0, 1.0], vec![5.0, 0.5]];
        let chunk_rates = ch.expand_rates(&file_rates);
        assert_eq!(chunk_rates.len(), 4);
        assert_eq!(chunk_rates[0], vec![2.0, 1.0]);
        assert_eq!(chunk_rates[2], vec![2.0, 1.0]);
        assert_eq!(chunk_rates[3], vec![5.0, 0.5]);
        // Collapse per-chunk totals back to files.
        let per_chunk = vec![1.0, 1.0, 1.0, 0.5];
        assert_eq!(ch.collapse_sum(&per_chunk), vec![3.0, 0.5]);
    }

    #[test]
    fn padding_overhead_positive_and_shrinks_with_chunk_size() {
        let sizes: Vec<f64> = top_videos(10).iter().map(|v| v.size_mb).collect();
        let big = Chunking::new(&sizes, 100.0).padding_overhead(&sizes);
        let small = Chunking::new(&sizes, 25.0).padding_overhead(&sizes);
        assert!(big >= 1.0 && small >= 1.0);
        assert!(
            small <= big,
            "finer chunks waste less padding: {small} vs {big}"
        );
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn rejects_bad_chunk_size() {
        Chunking::new(&[10.0], 0.0);
    }
}
