//! Serving policies: how a single request arrival is routed (and how
//! caches react to it).

use jcr_ctx::rng::StdRng;
use jcr_ctx::rng::{Rng, SeedableRng};

use jcr_core::instance::Instance;
use jcr_core::routing::Solution;
use jcr_graph::{NodeId, Path};

/// A policy serving one request at a time.
pub trait ServingPolicy {
    /// Serves an arrival of `inst.requests[request]` at simulation time
    /// `time`, returning the response path (empty = served from the
    /// requester's own cache).
    fn serve(&mut self, inst: &Instance, request: usize, time: f64) -> Path;
}

/// Replays a fixed optimized [`Solution`]: each arrival samples one of the
/// request's paths with probability proportional to its fractional flow
/// (a single-path routing always uses its one path).
#[derive(Clone, Debug)]
pub struct StaticPolicy {
    /// Per request: (cumulative weight, path).
    distributions: Vec<Vec<(f64, Path)>>,
    rng: StdRng,
}

impl StaticPolicy {
    /// Wraps a solution; multi-path (fractional) routings are sampled per
    /// arrival.
    pub fn new(solution: &Solution) -> Self {
        let distributions = solution
            .routing
            .per_request
            .iter()
            .map(|flows| {
                let mut cum = 0.0;
                flows
                    .iter()
                    .map(|pf| {
                        cum += pf.amount;
                        (cum, pf.path.clone())
                    })
                    .collect()
            })
            .collect();
        StaticPolicy {
            distributions,
            rng: StdRng::seed_from_u64(0x7374_6174_6963),
        }
    }
}

impl ServingPolicy for StaticPolicy {
    fn serve(&mut self, _inst: &Instance, request: usize, _time: f64) -> Path {
        let dist = &self.distributions[request];
        match dist.len() {
            0 => Path::default(),
            1 => dist[0].1.clone(),
            _ => {
                let total = dist.last().expect("non-empty").0;
                let pick = self.rng.gen_range(0.0..total);
                let idx = dist.partition_point(|(cum, _)| *cum <= pick);
                dist[idx.min(dist.len() - 1)].1.clone()
            }
        }
    }
}

/// Cache replacement discipline for [`ReactivePolicy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least recently used item.
    Lru,
    /// Evict the least frequently used item (ties: least recently used).
    Lfu,
}

#[derive(Clone, Debug)]
struct CacheState {
    capacity: f64,
    used: f64,
    /// item -> (last use stamp, use count)
    entries: Vec<Option<(u64, u64)>>,
    /// Item sizes (copied from the instance so eviction is self-contained).
    size_table: Vec<f64>,
}

impl CacheState {
    fn contains(&self, item: usize) -> bool {
        self.entries[item].is_some()
    }

    fn touch(&mut self, item: usize, stamp: u64) {
        if let Some((last, count)) = &mut self.entries[item] {
            *last = stamp;
            *count += 1;
        }
    }

    /// Inserts `item`, evicting per `discipline` until it fits. Items
    /// larger than the whole cache are not admitted.
    fn insert(&mut self, item: usize, size: f64, stamp: u64, discipline: Replacement) {
        if self.contains(item) || size > self.capacity {
            return;
        }
        while self.used + size > self.capacity + 1e-9 {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.map(|(last, count)| (i, last, count)))
                .min_by_key(|&(_, last, count)| match discipline {
                    Replacement::Lru => (last, 0),
                    Replacement::Lfu => (count, last),
                });
            let Some((victim, _, _)) = victim else { break };
            self.used -= self.sizes_of(victim);
            self.entries[victim] = None;
        }
        if self.used + size <= self.capacity + 1e-9 {
            self.entries[item] = Some((stamp, 1));
            self.used += size;
        }
    }

    fn sizes_of(&self, item: usize) -> f64 {
        self.size_table[item]
    }
}

/// Reactive caching: every miss pulls the item from the nearest *current*
/// replica and inserts it into the requester's cache under LRU or LFU
/// eviction — the baseline behaviour of deployed caches, against which
/// the paper's optimized placements can be compared empirically.
#[derive(Clone, Debug)]
pub struct ReactivePolicy {
    discipline: Replacement,
    caches: Vec<Option<CacheState>>,
    stamp: u64,
}

impl ReactivePolicy {
    /// Creates empty caches (capacity from the instance) with the given
    /// replacement discipline.
    pub fn new(inst: &Instance, discipline: Replacement) -> Self {
        let caches = inst
            .graph
            .nodes()
            .map(|v| {
                let capacity = inst.cache_cap[v.index()];
                (capacity > 0.0 && Some(v) != inst.origin).then(|| CacheState {
                    capacity,
                    used: 0.0,
                    entries: vec![None; inst.num_items()],
                    size_table: inst.item_size.clone(),
                })
            })
            .collect();
        ReactivePolicy {
            discipline,
            caches,
            stamp: 0,
        }
    }

    /// The nearest node currently holding `item` for requester `s`
    /// (origin included).
    fn nearest_holder(&self, inst: &Instance, item: usize, s: NodeId) -> Option<NodeId> {
        let ap = inst.all_pairs();
        let mut best: Option<(NodeId, f64)> = None;
        for v in inst.graph.nodes() {
            let holds = match &self.caches[v.index()] {
                Some(c) => c.contains(item),
                None => Some(v) == inst.origin,
            };
            if holds {
                let d = ap.dist(v, s);
                if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((v, d));
                }
            }
        }
        best.map(|(v, _)| v)
    }
}

impl ServingPolicy for ReactivePolicy {
    fn serve(&mut self, inst: &Instance, request: usize, _time: f64) -> Path {
        self.stamp += 1;
        let req = inst.requests[request];
        // Local hit?
        if let Some(cache) = &mut self.caches[req.node.index()] {
            if cache.contains(req.item) {
                cache.touch(req.item, self.stamp);
                return Path::default();
            }
        }
        // Miss: fetch from the nearest current replica (the origin is the
        // last resort and always holds everything).
        let holder = self
            .nearest_holder(inst, req.item, req.node)
            .expect("origin holds every item");
        let path = inst
            .all_pairs()
            .path(holder, req.node)
            .expect("holder reachable");
        // Admit into the requester's cache.
        let size = inst.item_size[req.item];
        let (discipline, stamp) = (self.discipline, self.stamp);
        if let Some(cache) = &mut self.caches[req.node.index()] {
            cache.insert(req.item, size, stamp, discipline);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_core::instance::Request;
    use jcr_graph::DiGraph;

    fn line_instance(zeta: f64) -> Instance {
        // origin -> s with a cache at s.
        let mut g = DiGraph::new();
        let o = g.add_node();
        let s = g.add_node();
        g.add_edge(o, s);
        Instance::new(
            g,
            vec![10.0],
            vec![f64::INFINITY],
            vec![0.0, zeta],
            vec![1.0, 1.0, 1.0],
            vec![
                Request {
                    item: 0,
                    node: s,
                    rate: 5.0,
                },
                Request {
                    item: 1,
                    node: s,
                    rate: 2.0,
                },
                Request {
                    item: 2,
                    node: s,
                    rate: 1.0,
                },
            ],
            Some(o),
        )
        .unwrap()
    }

    #[test]
    fn first_request_misses_then_hits() {
        let inst = line_instance(1.0);
        let mut p = ReactivePolicy::new(&inst, Replacement::Lru);
        let miss = p.serve(&inst, 0, 0.0);
        assert_eq!(miss.len(), 1, "first access fetches from the origin");
        let hit = p.serve(&inst, 0, 0.1);
        assert!(hit.is_empty(), "second access is a local hit");
    }

    #[test]
    fn lru_evicts_oldest() {
        let inst = line_instance(2.0);
        let mut p = ReactivePolicy::new(&inst, Replacement::Lru);
        p.serve(&inst, 0, 0.0); // cache {0}
        p.serve(&inst, 1, 0.1); // cache {0, 1}
        p.serve(&inst, 0, 0.2); // touch 0
        p.serve(&inst, 2, 0.3); // evicts 1 (older than 0)
        assert!(p.serve(&inst, 0, 0.4).is_empty(), "0 retained");
        assert_eq!(p.serve(&inst, 1, 0.5).len(), 1, "1 was evicted");
    }

    #[test]
    fn lfu_keeps_frequent_items() {
        let inst = line_instance(2.0);
        let mut p = ReactivePolicy::new(&inst, Replacement::Lfu);
        p.serve(&inst, 0, 0.0);
        for t in 0..5 {
            p.serve(&inst, 0, 0.1 + t as f64); // item 0 used often
        }
        p.serve(&inst, 1, 6.0); // cache {0, 1}
        p.serve(&inst, 2, 7.0); // evicts 1 (freq 1 < freq 6)
        assert!(p.serve(&inst, 0, 8.0).is_empty(), "hot item retained");
        assert_eq!(p.serve(&inst, 1, 9.0).len(), 1, "cold item evicted");
    }

    #[test]
    fn oversized_items_are_never_admitted() {
        let mut inst = line_instance(1.0);
        inst.item_size[0] = 5.0; // larger than the cache
        let mut p = ReactivePolicy::new(&inst, Replacement::Lru);
        p.serve(&inst, 0, 0.0);
        assert_eq!(p.serve(&inst, 0, 0.1).len(), 1, "still a miss");
    }

    #[test]
    fn heterogeneous_sizes_respected_by_eviction() {
        // Cache capacity 5; items sized 3, 3, 2. Two size-3 items cannot
        // coexist; a size-2 item fits beside one size-3 item.
        let mut g = DiGraph::new();
        let o = g.add_node();
        let s = g.add_node();
        g.add_edge(o, s);
        let inst = Instance::new(
            g,
            vec![10.0],
            vec![f64::INFINITY],
            vec![0.0, 5.0],
            vec![3.0, 3.0, 2.0],
            vec![
                Request {
                    item: 0,
                    node: s,
                    rate: 1.0,
                },
                Request {
                    item: 1,
                    node: s,
                    rate: 1.0,
                },
                Request {
                    item: 2,
                    node: s,
                    rate: 1.0,
                },
            ],
            Some(o),
        )
        .unwrap();
        let mut p = ReactivePolicy::new(&inst, Replacement::Lru);
        p.serve(&inst, 0, 0.0); // cache {0} (3/5)
        p.serve(&inst, 2, 0.1); // cache {0, 2} (5/5)
        assert!(p.serve(&inst, 0, 0.2).is_empty());
        assert!(p.serve(&inst, 2, 0.3).is_empty());
        // Item 1 (size 3) forces evictions until it fits: LRU evicts 0.
        p.serve(&inst, 1, 0.4);
        assert!(p.serve(&inst, 1, 0.5).is_empty(), "item 1 admitted");
        assert_eq!(p.serve(&inst, 0, 0.6).len(), 1, "item 0 evicted");
    }

    #[test]
    fn static_policy_samples_fractional_paths_proportionally() {
        // Two parallel links with a 3:1 fractional split.
        let mut g = DiGraph::new();
        let o = g.add_node();
        let s = g.add_node();
        let e0 = g.add_edge(o, s);
        let e1 = g.add_edge(o, s);
        let inst = Instance::new(
            g.clone(),
            vec![1.0, 2.0],
            vec![f64::INFINITY, f64::INFINITY],
            vec![0.0, 0.0],
            vec![1.0],
            vec![Request {
                item: 0,
                node: s,
                rate: 4.0,
            }],
            Some(o),
        )
        .unwrap();
        let routing = jcr_core::routing::Routing {
            per_request: vec![vec![
                jcr_flow::PathFlow {
                    path: jcr_graph::Path::new(vec![e0]),
                    amount: 3.0,
                },
                jcr_flow::PathFlow {
                    path: jcr_graph::Path::new(vec![e1]),
                    amount: 1.0,
                },
            ]],
        };
        let sol = Solution {
            placement: jcr_core::placement::Placement::empty(&inst),
            routing,
        };
        let mut p = StaticPolicy::new(&sol);
        let mut on_e0 = 0usize;
        let n = 4000;
        for _ in 0..n {
            if p.serve(&inst, 0, 0.0).edges()[0] == e0 {
                on_e0 += 1;
            }
        }
        let share = on_e0 as f64 / n as f64;
        assert!(
            (share - 0.75).abs() < 0.04,
            "sampled share {share}, want 0.75"
        );
    }

    #[test]
    fn static_policy_replays_single_paths() {
        let inst = line_instance(1.0);
        let placement = jcr_core::placement::Placement::empty(&inst);
        let routing = jcr_core::rnr::route_to_nearest_replica(&inst, &placement).unwrap();
        let sol = Solution { placement, routing };
        let mut p = StaticPolicy::new(&sol);
        for r in 0..inst.requests.len() {
            assert_eq!(p.serve(&inst, r, 0.0).len(), 1);
        }
    }
}
