//! Deterministic seeded fault injection for online re-optimization.
//!
//! The online loop's degradation ladder (`jcr_core::online`) only earns
//! its keep under adversity: failed links, dead nodes, shrunken
//! capacities, demand spikes, and solver budgets that trip mid-solve.
//! [`FaultInjector`] manufactures exactly that, hour by hour, from a
//! pristine base instance:
//!
//! * every hour draws its faults from an RNG seeded by `(seed, hour)`
//!   alone — replaying an hour reproduces its faults bit for bit, and
//!   hours are independent (faults are memoryless, always applied to the
//!   *base* instance, never compounding);
//! * a link or node failure is only committed when the origin can still
//!   reach every requester over the surviving links, so the faulted
//!   instance stays servable and the ladder's carry-forward repair has a
//!   fighting chance (the acceptance criterion of the anytime mode);
//! * after structural faults, origin paths are re-augmented in the spirit
//!   of the paper's §6 capacity model: each requester's total demand is
//!   added to the finite capacities along its cheapest surviving path
//!   from the origin, so the origin fallback is never capacity-starved.
//!
//! The injector also perturbs the hour's *solver budget*
//! ([`FaultEvent::BudgetTrip`]) to exercise the incumbent and
//! carry-forward rungs, not just the topology-repair ones.

use std::fmt;
use std::time::Duration;

use jcr_core::instance::Instance;
use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_ctx::{Budget, Phase};
use jcr_graph::{shortest, EdgeId, NodeId};

/// Per-hour fault probabilities and magnitudes. All probabilities are
/// independent per fault class; `Default` disables everything (an
/// injector that never injects).
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Master seed; combined with the hour index per draw.
    pub seed: u64,
    /// Probability that the hour loses links.
    pub link_failure: f64,
    /// Most links lost in one hour (each candidate guarded for
    /// servability).
    pub max_link_failures: usize,
    /// Probability that the hour loses a whole (non-origin) node.
    pub node_failure: f64,
    /// Probability that every finite link capacity is scaled down.
    pub capacity_cut: f64,
    /// Scale factor of a capacity cut (e.g. `0.5` halves capacities).
    pub cut_factor: f64,
    /// Probability that a subset of requests spikes.
    pub demand_spike: f64,
    /// Rate multiplier for spiked requests.
    pub spike_factor: f64,
    /// Probability that the hour's solver budget is sabotaged (a zero
    /// deadline or a one-iteration alternating cap, 50/50).
    pub budget_trip: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            link_failure: 0.0,
            max_link_failures: 2,
            node_failure: 0.0,
            capacity_cut: 0.0,
            cut_factor: 0.5,
            demand_spike: 0.0,
            spike_factor: 3.0,
            budget_trip: 0.0,
        }
    }
}

impl FaultConfig {
    /// A config injecting every fault class with the same probability
    /// `rate` (the bench sweep's single knob).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            link_failure: rate,
            node_failure: rate,
            capacity_cut: rate,
            demand_spike: rate,
            budget_trip: rate,
            ..FaultConfig::default()
        }
    }
}

/// One injected fault, for logs and histograms.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Link `edge` failed (infinite cost, zero capacity).
    LinkFailed {
        /// The failed edge.
        edge: EdgeId,
    },
    /// Node `node` failed: all `links` incident edges went down.
    NodeFailed {
        /// The failed node.
        node: NodeId,
        /// How many incident edges were killed.
        links: usize,
    },
    /// Every finite link capacity was scaled by `factor`.
    CapacityCut {
        /// The scale factor applied.
        factor: f64,
    },
    /// `requests` request rates were scaled by `factor`.
    DemandSpike {
        /// How many requests spiked.
        requests: usize,
        /// The rate multiplier.
        factor: f64,
    },
    /// The hour's solver budget was sabotaged.
    BudgetTrip {
        /// `true` for a zero wall-clock deadline, `false` for a
        /// one-iteration alternating phase cap.
        zero_deadline: bool,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::LinkFailed { edge } => write!(f, "link {} failed", edge.index()),
            FaultEvent::NodeFailed { node, links } => {
                write!(f, "node {} failed ({links} links down)", node.index())
            }
            FaultEvent::CapacityCut { factor } => write!(f, "capacities cut to {factor}×"),
            FaultEvent::DemandSpike { requests, factor } => {
                write!(f, "{requests} requests spiked {factor}×")
            }
            FaultEvent::BudgetTrip { zero_deadline } => write!(
                f,
                "budget tripped ({})",
                if *zero_deadline {
                    "zero deadline"
                } else {
                    "alternating cap 1"
                }
            ),
        }
    }
}

/// The instance, fault log, and solver budget for one faulted hour.
#[derive(Debug)]
pub struct FaultedHour {
    /// The base instance with this hour's faults applied.
    pub instance: Instance,
    /// What was injected (empty on a quiet hour).
    pub events: Vec<FaultEvent>,
    /// The hour's solver budget (the base budget unless tripped).
    pub budget: Budget,
}

/// Deterministic fault injector (see the module docs).
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// Creates an injector from a config.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Produces hour `hour`'s faulted instance and budget from the
    /// pristine `base`. Deterministic in `(seed, hour, base)`.
    pub fn inject(&self, hour: usize, base: &Instance, base_budget: Budget) -> FaultedHour {
        let mut rng = self.hour_rng(hour);
        let cfg = &self.cfg;
        let mut events = Vec::new();

        let mut cost = base.link_cost.clone();
        let mut cap = base.link_cap.clone();
        let mut requests = base.requests.clone();
        let mut structural = false;

        // Link failures, each guarded for servability.
        if base.graph.edge_count() > 0 && rng.gen_bool(cfg.link_failure) {
            let n = rng.gen_range(1..=cfg.max_link_failures.max(1));
            for _ in 0..n {
                let e = EdgeId::new(rng.gen_range(0..base.graph.edge_count()));
                if cap[e.index()] > 0.0 && self.survivable(base, &cap, &[e]) {
                    kill_edge(&mut cost, &mut cap, e);
                    events.push(FaultEvent::LinkFailed { edge: e });
                    structural = true;
                }
            }
        }

        // A whole-node failure: all incident edges of a non-origin node.
        if rng.gen_bool(cfg.node_failure) {
            let v = NodeId::new(rng.gen_range(0..base.graph.node_count()));
            if base.origin != Some(v) {
                let incident: Vec<EdgeId> = base
                    .graph
                    .out_edges(v)
                    .iter()
                    .chain(base.graph.in_edges(v))
                    .copied()
                    .filter(|e| cap[e.index()] > 0.0)
                    .collect();
                if !incident.is_empty() && self.survivable(base, &cap, &incident) {
                    for &e in &incident {
                        kill_edge(&mut cost, &mut cap, e);
                    }
                    events.push(FaultEvent::NodeFailed {
                        node: v,
                        links: incident.len(),
                    });
                    structural = true;
                }
            }
        }

        // Capacity cut across every finite-capacity link.
        if rng.gen_bool(cfg.capacity_cut) {
            for c in cap.iter_mut().filter(|c| c.is_finite()) {
                *c *= cfg.cut_factor;
            }
            events.push(FaultEvent::CapacityCut {
                factor: cfg.cut_factor,
            });
            structural = true;
        }

        // Demand spike on a random subset of requests (the request set
        // and order never change, only rates).
        if !requests.is_empty() && rng.gen_bool(cfg.demand_spike) {
            let mut spiked = 0;
            for r in requests.iter_mut() {
                if rng.gen_bool(0.5) {
                    r.rate *= cfg.spike_factor;
                    spiked += 1;
                }
            }
            if spiked > 0 {
                events.push(FaultEvent::DemandSpike {
                    requests: spiked,
                    factor: cfg.spike_factor,
                });
                structural = true;
            }
        }

        // Keep the origin fallback viable (§6's capacity augmentation,
        // re-applied to the surviving topology and spiked demand).
        if structural {
            augment_origin_paths(base, &cost, &mut cap, &requests);
        }

        // Budget sabotage.
        let budget = if rng.gen_bool(cfg.budget_trip) {
            let zero_deadline = rng.gen_bool(0.5);
            events.push(FaultEvent::BudgetTrip { zero_deadline });
            if zero_deadline {
                Budget::deadline(Duration::ZERO)
            } else {
                Budget::unlimited().with_phase_cap(Phase::Alternating, 1)
            }
        } else {
            base_budget
        };

        let instance = Instance::new(
            base.graph.clone(),
            cost,
            cap,
            base.cache_cap.clone(),
            base.item_size.clone(),
            requests,
            base.origin,
        )
        .expect(
            "invariant: injection preserves shapes and non-negativity \
             (caps floor at 0, rates only scale up), so validation holds",
        );
        FaultedHour {
            instance,
            events,
            budget,
        }
    }

    /// The hour's RNG: a fresh stream per `(seed, hour)` pair.
    fn hour_rng(&self, hour: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add(1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (hour as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        )
    }

    /// Whether the origin still reaches every requester when the edges in
    /// `kill` go down on top of the current `cap` state. Instances
    /// without an origin are never considered survivable (no fallback to
    /// protect).
    fn survivable(&self, base: &Instance, cap: &[f64], kill: &[EdgeId]) -> bool {
        let Some(origin) = base.origin else {
            return false;
        };
        let tree = shortest::dijkstra_filtered(&base.graph, origin, &base.link_cost, |e| {
            cap[e.index()] > 0.0 && !kill.contains(&e)
        });
        base.requests.iter().all(|r| tree.path(r.node).is_some())
    }
}

/// Fails one edge in place: infinite cost, zero capacity.
fn kill_edge(cost: &mut [f64], cap: &mut [f64], e: EdgeId) {
    cost[e.index()] = f64::INFINITY;
    cap[e.index()] = 0.0;
}

/// Re-applies the §6 origin-path augmentation on the faulted topology:
/// for each requester, its total demand is added to every finite capacity
/// along the cheapest surviving origin path, so serving everything from
/// the origin remains link-feasible.
fn augment_origin_paths(
    base: &Instance,
    cost: &[f64],
    cap: &mut [f64],
    requests: &[jcr_core::instance::Request],
) {
    let Some(origin) = base.origin else {
        return;
    };
    let tree = shortest::dijkstra_filtered(&base.graph, origin, cost, |e| cap[e.index()] > 0.0);
    let mut per_node_demand: Vec<f64> = vec![0.0; base.graph.node_count()];
    for r in requests {
        per_node_demand[r.node.index()] += r.rate;
    }
    for v in base.graph.nodes() {
        let demand = per_node_demand[v.index()];
        if demand <= 0.0 {
            continue;
        }
        if let Some(path) = tree.path(v) {
            for e in path.edges() {
                if cap[e.index()].is_finite() {
                    cap[e.index()] += demand;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_core::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn base() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 9).unwrap())
            .items(6)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 300.0, 9)
            .link_capacity_fraction(0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn default_config_is_a_noop() {
        let inst = base();
        let inj = FaultInjector::new(FaultConfig::default());
        for hour in 0..5 {
            let faulted = inj.inject(hour, &inst, Budget::unlimited());
            assert!(faulted.events.is_empty());
            assert_eq!(faulted.instance.link_cap, inst.link_cap);
            assert_eq!(faulted.instance.link_cost, inst.link_cost);
            assert_eq!(faulted.instance.requests, inst.requests);
        }
    }

    #[test]
    fn injection_is_deterministic_and_memoryless() {
        let inst = base();
        let inj = FaultInjector::new(FaultConfig::uniform(42, 0.8));
        let a = inj.inject(3, &inst, Budget::unlimited());
        let b = inj.inject(3, &inst, Budget::unlimited());
        assert_eq!(a.events, b.events);
        assert_eq!(a.instance.link_cap, b.instance.link_cap);
        assert_eq!(a.instance.link_cost, b.instance.link_cost);
        assert_eq!(a.instance.requests, b.instance.requests);
        // A different seed draws a different fault history over a window.
        let other = FaultInjector::new(FaultConfig::uniform(43, 0.8));
        let differs = (0..8).any(|h| {
            other.inject(h, &inst, Budget::unlimited()).events
                != inj.inject(h, &inst, Budget::unlimited()).events
        });
        assert!(differs, "seeds 42 and 43 injected identical histories");
    }

    #[test]
    fn faulted_instances_stay_servable() {
        let inst = base();
        let origin = inst.origin.unwrap();
        let inj = FaultInjector::new(FaultConfig::uniform(7, 0.9));
        let mut saw_fault = false;
        for hour in 0..12 {
            let faulted = inj.inject(hour, &inst, Budget::unlimited());
            saw_fault |= !faulted.events.is_empty();
            let fi = &faulted.instance;
            let tree = shortest::dijkstra_filtered(&fi.graph, origin, &fi.link_cost, |e| {
                fi.link_cap[e.index()] > 0.0
            });
            for r in &fi.requests {
                let path = tree.path(r.node).expect("requester cut off from origin");
                // The augmented origin path carries the full demand.
                for e in path.edges() {
                    assert!(
                        !fi.link_cap[e.index()].is_finite() || fi.link_cap[e.index()] >= r.rate
                    );
                }
            }
        }
        assert!(saw_fault, "rate 0.9 over 12 hours injected nothing");
    }

    #[test]
    fn budget_trips_replace_the_base_budget() {
        let inst = base();
        let cfg = FaultConfig {
            budget_trip: 1.0,
            ..FaultConfig::uniform(5, 0.0)
        };
        let inj = FaultInjector::new(cfg);
        let base_budget = Budget::deadline(Duration::from_secs(10));
        let mut saw_zero = false;
        let mut saw_cap = false;
        for hour in 0..16 {
            let faulted = inj.inject(hour, &inst, base_budget);
            match faulted.events.as_slice() {
                [FaultEvent::BudgetTrip {
                    zero_deadline: true,
                }] => {
                    saw_zero = true;
                    assert_eq!(faulted.budget.deadline_limit(), Some(Duration::ZERO));
                }
                [FaultEvent::BudgetTrip {
                    zero_deadline: false,
                }] => {
                    saw_cap = true;
                    assert_eq!(faulted.budget.phase_cap(Phase::Alternating), Some(1));
                }
                other => panic!("expected exactly one budget trip, got {other:?}"),
            }
        }
        assert!(saw_zero && saw_cap, "both trip flavors should appear");
    }
}
