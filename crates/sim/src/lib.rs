//! Request-level discrete-event simulation of a cache network.
//!
//! The paper works in the fluid regime: demands are Poisson *rates*
//! `λ_{(i,s)}` and link loads are rate sums. This crate closes the loop by
//! replaying actual Poisson request arrivals against a serving policy and
//! measuring the *empirical* loads, costs, and hit ratios — validating
//! that the fluid-model decisions behave as predicted (law of large
//! numbers), and enabling a comparison the optimization literature is
//! usually silent about: optimized static placements versus the reactive
//! **LRU/LFU** caching that deployed systems default to.
//!
//! * [`arrivals::ArrivalGenerator`] — merged Poisson streams, one per
//!   request type, via lazily advanced exponential inter-arrival times.
//! * [`policy::ServingPolicy`] — how a single request is served:
//!   [`policy::StaticPolicy`] (a fixed [`Solution`] from the optimizers),
//!   [`policy::ReactivePolicy`] (LRU or LFU caches filled on misses, with
//!   nearest-replica routing against the *current* cache contents).
//! * [`Simulator`] — drives arrivals through a policy and accumulates
//!   [`SimReport`] statistics.
//! * [`faults::FaultInjector`] — deterministic seeded fault injection
//!   (link/node failures, capacity cuts, demand spikes, budget trips) for
//!   exercising the online loop's anytime degradation ladder.
//!
//! [`Solution`]: jcr_core::routing::Solution
//!
//! # Examples
//!
//! ```
//! use jcr_core::prelude::*;
//! use jcr_core::rnr;
//! use jcr_sim::policy::StaticPolicy;
//! use jcr_sim::Simulator;
//! use jcr_topo::{Topology, TopologyKind};
//!
//! let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 1).unwrap())
//!     .items(4)
//!     .cache_capacity(2.0)
//!     .zipf_demand(0.8, 5_000.0, 1)
//!     .build()
//!     .unwrap();
//! let placement = Placement::empty(&inst);
//! let routing = rnr::route_to_nearest_replica(&inst, &placement).unwrap();
//! let solution = Solution { placement, routing };
//! let report = Simulator::new(1.0).run(&inst, &mut StaticPolicy::new(&solution));
//! // Empirical cost per hour tracks the fluid-model cost.
//! let fluid = solution.routing.cost(&inst);
//! assert!((report.cost_rate() - fluid).abs() < 0.2 * fluid);
//! ```

pub mod arrivals;
pub mod faults;
pub mod policy;

use jcr_core::instance::Instance;

use crate::arrivals::ArrivalGenerator;
use crate::policy::ServingPolicy;

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Number of requests served.
    pub requests_served: usize,
    /// Simulated horizon (hours).
    pub horizon: f64,
    /// Total size-weighted routing cost incurred.
    pub total_cost: f64,
    /// Empirical load per link (size units per hour, averaged over the
    /// horizon).
    pub link_loads: Vec<f64>,
    /// Fraction of requests served from the requester's own cache.
    pub local_hit_ratio: f64,
}

impl SimReport {
    /// Routing cost per hour.
    pub fn cost_rate(&self) -> f64 {
        self.total_cost / self.horizon
    }

    /// Maximum relative deviation between the empirical link loads and a
    /// fluid-model prediction, over links whose predicted load exceeds
    /// `floor` (tiny links are Poisson-noise dominated). This is the
    /// law-of-large-numbers check in one number: values of a few percent
    /// mean the fluid model predicts the packet-level reality.
    pub fn max_relative_load_deviation(&self, predicted: &[f64], floor: f64) -> f64 {
        assert_eq!(
            predicted.len(),
            self.link_loads.len(),
            "one prediction per link"
        );
        self.link_loads
            .iter()
            .zip(predicted)
            .filter(|(_, p)| **p > floor)
            .map(|(e, p)| (e - p).abs() / p)
            .fold(0.0, f64::max)
    }

    /// Maximum empirical load-to-capacity ratio over finite-capacity
    /// links.
    pub fn congestion(&self, inst: &Instance) -> f64 {
        self.link_loads
            .iter()
            .zip(&inst.link_cap)
            .filter(|(_, c)| c.is_finite() && **c > 0.0)
            .map(|(l, c)| l / c)
            .fold(0.0, f64::max)
    }
}

/// Drives Poisson arrivals through a serving policy.
#[derive(Clone, Debug)]
pub struct Simulator {
    /// Simulated horizon in hours.
    pub horizon: f64,
    /// Hard cap on processed events (guards against huge rate sums).
    pub max_events: usize,
    /// RNG seed for the arrival streams.
    pub seed: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator {
            horizon: 1.0,
            max_events: 2_000_000,
            seed: 0,
        }
    }
}

impl Simulator {
    /// Creates a simulator with the given horizon (hours).
    pub fn new(horizon: f64) -> Self {
        Simulator {
            horizon,
            ..Simulator::default()
        }
    }

    /// Replays Poisson arrivals for every request type of `inst` through
    /// `policy` and reports the empirical statistics.
    ///
    /// Rates are interpreted per hour, and each arrival of request
    /// `(i, s)` transfers `item_size[i]` size units along the path the
    /// policy picks.
    ///
    /// # Panics
    ///
    /// Panics if the expected event count `Σλ · horizon` exceeds
    /// `max_events` by more than 2× (scale the demand down instead of
    /// silently truncating the simulation).
    pub fn run<P: ServingPolicy>(&self, inst: &Instance, policy: &mut P) -> SimReport {
        let expected = inst.total_rate() * self.horizon;
        assert!(
            expected <= 2.0 * self.max_events as f64,
            "expected {expected:.0} events exceeds max_events = {}; scale the demand",
            self.max_events
        );
        let mut arrivals = ArrivalGenerator::new(inst, self.seed);
        let mut link_volume = vec![0.0; inst.graph.edge_count()];
        let mut total_cost = 0.0;
        let mut served = 0usize;
        let mut local_hits = 0usize;
        while let Some(event) = arrivals.next_before(self.horizon) {
            if served >= self.max_events {
                break;
            }
            let req = inst.requests[event.request];
            let path = policy.serve(inst, event.request, event.time);
            let size = inst.item_size[req.item];
            if path.is_empty() {
                local_hits += 1;
            }
            total_cost += size * path.cost(&inst.link_cost);
            for e in path.edges() {
                link_volume[e.index()] += size;
            }
            served += 1;
        }
        let link_loads = link_volume.into_iter().map(|v| v / self.horizon).collect();
        SimReport {
            requests_served: served,
            horizon: self.horizon,
            total_cost,
            link_loads,
            local_hit_ratio: if served == 0 {
                0.0
            } else {
                local_hits as f64 / served as f64
            },
        }
    }
}

impl Simulator {
    /// Replays a sequence of hourly instances (same network and catalog,
    /// time-varying rates) through one persistent policy — reactive cache
    /// state carries over between hours, matching how deployed caches
    /// experience a demand trace. Returns one report per hour.
    ///
    /// # Panics
    ///
    /// Panics if the instances disagree on topology or catalog size, or an
    /// hour's expected event count exceeds the cap (see [`Simulator::run`]).
    pub fn run_sequence<P: ServingPolicy>(
        &self,
        instances: &[&Instance],
        policy: &mut P,
    ) -> Vec<SimReport> {
        if let Some(first) = instances.first() {
            for inst in instances {
                assert_eq!(
                    inst.graph.node_count(),
                    first.graph.node_count(),
                    "hourly instances must share the topology"
                );
                assert_eq!(
                    inst.num_items(),
                    first.num_items(),
                    "hourly instances must share the catalog"
                );
            }
        }
        instances
            .iter()
            .enumerate()
            .map(|(h, inst)| {
                let mut hourly = self.clone();
                hourly.seed = self.seed.wrapping_add(h as u64 * 7919);
                hourly.run(inst, policy)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;
    use jcr_core::instance::InstanceBuilder;
    use jcr_core::placement::Placement;
    use jcr_core::rnr;
    use jcr_core::routing::Solution;
    use jcr_topo::{Topology, TopologyKind};

    fn small_instance() -> Instance {
        // Scaled-down demand so a 4-hour horizon stays ~40k events.
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 3).unwrap())
            .items(6)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 10_000.0, 3)
            .link_capacity_fraction(0.02)
            .build()
            .unwrap()
    }

    #[test]
    fn empirical_loads_converge_to_fluid_loads() {
        let inst = small_instance();
        let placement = Placement::empty(&inst);
        let routing = rnr::route_to_nearest_replica(&inst, &placement).unwrap();
        let expected_loads = routing.link_loads(&inst);
        let solution = Solution { placement, routing };
        let mut policy = StaticPolicy::new(&solution);
        let report = Simulator {
            horizon: 4.0,
            seed: 7,
            ..Simulator::default()
        }
        .run(&inst, &mut policy);
        assert!(report.requests_served > 10_000);
        // Law of large numbers: every meaningful link within a few percent.
        let dev = report.max_relative_load_deviation(&expected_loads, 0.02 * inst.total_rate());
        assert!(dev < 0.1, "max relative deviation {dev}");
        // Cost rate likewise.
        let fluid_cost = solution.routing.cost(&inst);
        let rel = (report.cost_rate() - fluid_cost).abs() / fluid_cost;
        assert!(
            rel < 0.05,
            "cost rate {} vs fluid {fluid_cost}",
            report.cost_rate()
        );
    }

    #[test]
    fn horizon_scales_event_count() {
        let inst = small_instance();
        let placement = Placement::empty(&inst);
        let routing = rnr::route_to_nearest_replica(&inst, &placement).unwrap();
        let solution = Solution { placement, routing };
        let short = Simulator {
            horizon: 0.5,
            seed: 1,
            ..Simulator::default()
        }
        .run(&inst, &mut StaticPolicy::new(&solution));
        let long = Simulator {
            horizon: 2.0,
            seed: 1,
            ..Simulator::default()
        }
        .run(&inst, &mut StaticPolicy::new(&solution));
        let ratio = long.requests_served as f64 / short.requests_served as f64;
        assert!(
            (ratio - 4.0).abs() < 0.3,
            "event count should scale with horizon: {ratio}"
        );
    }

    #[test]
    fn sequence_preserves_reactive_cache_state() {
        use crate::policy::{ReactivePolicy, Replacement};
        // Hour 1 warms the caches; hour 2 (same rates) must hit more.
        let inst = small_instance();
        let refs = [&inst, &inst];
        let mut policy = ReactivePolicy::new(&inst, Replacement::Lru);
        let sim = Simulator {
            horizon: 0.5,
            seed: 3,
            ..Simulator::default()
        };
        let reports = sim.run_sequence(&refs, &mut policy);
        assert_eq!(reports.len(), 2);
        assert!(
            reports[1].local_hit_ratio > reports[0].local_hit_ratio,
            "warmed caches must hit more: {} vs {}",
            reports[1].local_hit_ratio,
            reports[0].local_hit_ratio
        );
        assert!(reports[1].cost_rate() < reports[0].cost_rate());
    }

    #[test]
    #[should_panic(expected = "scale the demand")]
    fn refuses_oversized_runs() {
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 3).unwrap())
            .items(2)
            .zipf_demand(0.8, 1e9, 1)
            .build()
            .unwrap();
        let placement = Placement::empty(&inst);
        let routing = rnr::route_to_nearest_replica(&inst, &placement).unwrap();
        let solution = Solution { placement, routing };
        let _ = Simulator::default().run(&inst, &mut StaticPolicy::new(&solution));
    }
}
