//! Merged Poisson arrival streams, one independent stream per request
//! type, generated lazily through a priority queue of next-arrival times.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use jcr_ctx::rng::StdRng;
use jcr_ctx::rng::{Rng, SeedableRng};

use jcr_core::instance::Instance;

/// One request arrival.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arrival {
    /// Arrival time (hours from simulation start).
    pub time: f64,
    /// Index into the instance's request list.
    pub request: usize,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    time: f64,
    request: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.request.cmp(&self.request))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazily merged Poisson streams: each request type `r` with rate `λ_r`
/// produces arrivals with Exp(`λ_r`) inter-arrival times; the generator
/// yields the global time-ordered sequence.
#[derive(Debug)]
pub struct ArrivalGenerator {
    rates: Vec<f64>,
    heap: BinaryHeap<HeapEntry>,
    rng: StdRng,
}

impl ArrivalGenerator {
    /// Creates the generator over all request types of an instance.
    pub fn new(inst: &Instance, seed: u64) -> Self {
        let rates: Vec<f64> = inst.requests.iter().map(|r| r.rate).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6172_7269_7661_6c73);
        let mut heap = BinaryHeap::with_capacity(rates.len());
        for (request, &rate) in rates.iter().enumerate() {
            if rate > 0.0 {
                heap.push(HeapEntry {
                    time: exp_sample(&mut rng, rate),
                    request,
                });
            }
        }
        ArrivalGenerator { rates, heap, rng }
    }

    /// The next arrival strictly before `horizon`, advancing the stream.
    pub fn next_before(&mut self, horizon: f64) -> Option<Arrival> {
        if self.heap.peek()?.time >= horizon {
            return None;
        }
        let HeapEntry { time, request } = self.heap.pop()?;
        let rate = self.rates[request];
        self.heap.push(HeapEntry {
            time: time + exp_sample(&mut self.rng, rate),
            request,
        });
        Some(Arrival { time, request })
    }
}

/// Exponential sample with the given rate (inverse-CDF).
fn exp_sample<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcr_core::instance::{Instance, Request};
    use jcr_graph::DiGraph;

    fn two_type_instance(rate_a: f64, rate_b: f64) -> Instance {
        let mut g = DiGraph::new();
        let o = g.add_node();
        let s = g.add_node();
        g.add_edge(o, s);
        Instance::new(
            g,
            vec![1.0],
            vec![f64::INFINITY],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![
                Request {
                    item: 0,
                    node: s,
                    rate: rate_a,
                },
                Request {
                    item: 1,
                    node: s,
                    rate: rate_b,
                },
            ],
            Some(o),
        )
        .unwrap()
    }

    #[test]
    fn arrivals_are_time_ordered() {
        let inst = two_type_instance(50.0, 20.0);
        let mut gen = ArrivalGenerator::new(&inst, 3);
        let mut last = 0.0;
        let mut count = 0;
        while let Some(a) = gen.next_before(10.0) {
            assert!(a.time >= last);
            last = a.time;
            count += 1;
        }
        assert!(count > 500);
    }

    #[test]
    fn counts_match_rates() {
        let inst = two_type_instance(100.0, 25.0);
        let mut gen = ArrivalGenerator::new(&inst, 11);
        let mut counts = [0usize; 2];
        while let Some(a) = gen.next_before(50.0) {
            counts[a.request] += 1;
        }
        // Expect ≈ 5000 and ≈ 1250; allow 10 %.
        assert!((counts[0] as f64 - 5000.0).abs() < 500.0, "{counts:?}");
        assert!((counts[1] as f64 - 1250.0).abs() < 125.0, "{counts:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = two_type_instance(10.0, 10.0);
        let collect = |seed| {
            let mut gen = ArrivalGenerator::new(&inst, seed);
            let mut v = Vec::new();
            while let Some(a) = gen.next_before(3.0) {
                v.push((a.request, (a.time * 1e9) as u64));
            }
            v
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn empty_horizon_yields_nothing() {
        let inst = two_type_instance(10.0, 10.0);
        let mut gen = ArrivalGenerator::new(&inst, 1);
        assert_eq!(gen.next_before(0.0), None);
    }
}
