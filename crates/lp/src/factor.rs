//! Sparse LU factorization of the simplex basis.
//!
//! Replaces the dense `B⁻¹` the engine historically carried. The basis
//! `B` (one sparse column per basic variable, slacks implicit `−1`) is
//! factorized left-looking, one column at a time in a static
//! Markowitz-flavoured order (ascending column nonzero count), with
//! threshold partial pivoting: any row whose eliminated value is within
//! a factor [`PIVOT_THRESHOLD`] of the column maximum is admissible, and
//! among admissible rows the sparsest (by static row count, then lowest
//! index) wins — the classic stability/fill compromise, made fully
//! deterministic by the explicit tie-breaks.
//!
//! Between refactorizations the factorization is *not* rebuilt: each
//! simplex basis change appends a product-form eta (the pivot column in
//! basis-position space) to an eta file, and `ftran`/`btran` apply the
//! LU triangles followed by the etas (transposed, in reverse, for
//! `btran`). The eta file is bounded by the engine's refactorization
//! cadence plus a nonzero budget; when either trips, the basis is
//! refactorized from scratch (the Bartels–Golub-style fallback) and the
//! file is cleared.
//!
//! Layout (all indices `usize`, all values `f64`):
//!
//! * `L` — one eta column per elimination step: `(original row,
//!   multiplier)` pairs over the rows *not yet pivotal* at that step;
//!   unit diagonal implicit.
//! * `U` — one column per step: `(earlier step, value)` pairs plus a
//!   separate diagonal array.
//! * `pivot_row[k]` — the original row chosen at step `k`;
//!   `col_at[k]` — the basis *position* eliminated at step `k`.
//!
//! `ftran` solves `B·x = a` (row-space input, position-space output);
//! `btran` solves `Bᵀ·y = c` (position-space input, row-space output).
//! Both exploit sparsity of the right-hand side: the `L`-forward pass
//! skips steps whose pivot entry is exactly zero, which is where the
//! ftran-fill histograms come from.

/// Threshold partial pivoting factor: a row is an admissible pivot when
/// its magnitude is at least this fraction of the column maximum.
const PIVOT_THRESHOLD: f64 = 0.1;

/// One product-form eta: the pivot column `α = B⁻¹·A_q` recorded at a
/// basis change on position `r`.
#[derive(Clone, Debug)]
pub(crate) struct Eta {
    /// Basis position the entering column replaced.
    pub r: usize,
    /// Pivot element `α_r`.
    pub pivot: f64,
    /// Off-pivot nonzeros `(position, α_i)`, `i ≠ r`.
    pub entries: Vec<(usize, f64)>,
}

impl Eta {
    /// Nonzeros this eta stores (pivot included).
    pub fn nnz(&self) -> usize {
        self.entries.len() + 1
    }

    /// Applies `E·v` in place (ftran direction), `v` in position space.
    pub fn apply(&self, v: &mut [f64]) {
        let vr = v[self.r] / self.pivot;
        if vr != 0.0 {
            for &(i, a) in &self.entries {
                v[i] -= a * vr;
            }
        }
        v[self.r] = vr;
    }

    /// Applies `Eᵀ·v` in place (btran direction), `v` in position space.
    pub fn apply_transposed(&self, v: &mut [f64]) {
        let mut acc = v[self.r];
        for &(i, a) in &self.entries {
            acc -= a * v[i];
        }
        v[self.r] = acc / self.pivot;
    }
}

/// Sparse LU factors of one basis matrix, plus scratch for the solves.
#[derive(Clone, Debug, Default)]
pub(crate) struct LuFactors {
    m: usize,
    /// Per-step L eta column: `(original row, multiplier)`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Per-step U column: `(earlier step, value)` above the diagonal.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// U diagonal, one entry per step.
    u_diag: Vec<f64>,
    /// Original row pivotal at step `k`.
    pivot_row: Vec<usize>,
    /// Basis position eliminated at step `k`.
    col_at: Vec<usize>,
    /// Inverse of `col_at`: step at which a basis position was eliminated.
    step_of: Vec<usize>,
    /// Dense workspace reused across solves (row or position space).
    work: Vec<f64>,
    /// Second workspace for the two-stage solves.
    work2: Vec<f64>,
}

impl LuFactors {
    /// Factorizes the `m×m` basis whose column at position `j` is
    /// produced by `col(j, f)` (calling `f(row, value)` per nonzero).
    /// Columns are eliminated in ascending nonzero count (ties by
    /// position) and rows chosen by threshold partial pivoting.
    ///
    /// Returns `None` when the basis is numerically singular (no pivot
    /// above `pivot_tol` in some column).
    pub fn factorize<F>(m: usize, pivot_tol: f64, col: F) -> Option<LuFactors>
    where
        F: Fn(usize, &mut dyn FnMut(usize, f64)),
    {
        // Gather the columns once; static counts drive both orderings.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut row_count = vec![0usize; m];
        for (j, c) in cols.iter_mut().enumerate() {
            col(j, &mut |r, v| {
                if v != 0.0 {
                    c.push((r, v));
                    row_count[r] += 1;
                }
            });
        }
        // Markowitz-flavoured static order: sparsest column first,
        // position as the deterministic tie-break.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&j| (cols[j].len(), j));

        let mut lu = LuFactors {
            m,
            l_cols: Vec::with_capacity(m),
            u_cols: Vec::with_capacity(m),
            u_diag: Vec::with_capacity(m),
            pivot_row: Vec::with_capacity(m),
            col_at: Vec::with_capacity(m),
            step_of: vec![usize::MAX; m],
            work: vec![0.0; m],
            work2: vec![0.0; m],
        };
        // `row_step[r]` = step at which original row `r` became pivotal.
        let mut row_step = vec![usize::MAX; m];
        let mut x = vec![0.0; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);
        let mut is_touched = vec![false; m];

        for (k, &j) in order.iter().enumerate() {
            // Left-looking: solve the partial L system for column j.
            for &r in &touched {
                is_touched[r] = false;
            }
            touched.clear();
            for &(r, v) in &cols[j] {
                x[r] = v;
                if !is_touched[r] {
                    is_touched[r] = true;
                    touched.push(r);
                }
            }
            let mut u_col = Vec::new();
            for t in 0..k {
                let pr = lu.pivot_row[t];
                let xt = x[pr];
                if xt != 0.0 {
                    u_col.push((t, xt));
                    for &(r, mult) in &lu.l_cols[t] {
                        if !is_touched[r] {
                            is_touched[r] = true;
                            touched.push(r);
                        }
                        x[r] -= mult * xt;
                    }
                }
            }
            // Threshold partial pivot over the not-yet-pivotal rows:
            // admissible = within PIVOT_THRESHOLD of the column max;
            // among admissible, sparsest static row, then lowest index.
            let mut col_max = 0.0f64;
            for &r in &touched {
                if row_step[r] == usize::MAX {
                    col_max = col_max.max(x[r].abs());
                }
            }
            if col_max < pivot_tol {
                for &r in &touched {
                    x[r] = 0.0;
                }
                return None;
            }
            let mut pivot: Option<usize> = None;
            for &r in &touched {
                if row_step[r] != usize::MAX || x[r].abs() < PIVOT_THRESHOLD * col_max {
                    continue;
                }
                let better = match pivot {
                    None => true,
                    Some(p) => (row_count[r], r) < (row_count[p], p),
                };
                if better {
                    pivot = Some(r);
                }
            }
            let pr = pivot.expect("col_max >= pivot_tol guarantees a candidate");
            let piv = x[pr];
            let mut l_col = Vec::new();
            for &r in &touched {
                if r != pr && row_step[r] == usize::MAX && x[r] != 0.0 {
                    l_col.push((r, x[r] / piv));
                }
            }
            // Deterministic storage order regardless of touch order.
            l_col.sort_unstable_by_key(|&(r, _)| r);
            for &r in &touched {
                x[r] = 0.0;
            }
            row_step[pr] = k;
            lu.pivot_row.push(pr);
            lu.l_cols.push(l_col);
            lu.u_cols.push(u_col);
            lu.u_diag.push(piv);
            lu.col_at.push(j);
            lu.step_of[j] = k;
        }
        Some(lu)
    }

    /// Dimension of the factored basis.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Solves `B·x = a`: `a` indexed by original row, `x` by basis
    /// position. `out` must have length `m`; it is fully overwritten.
    pub fn ftran(&mut self, a: &[f64], out: &mut [f64]) {
        let m = self.m;
        self.work[..m].copy_from_slice(&a[..m]);
        // Forward pass through L (skips steps with a zero pivot entry —
        // the sparse-RHS win).
        for t in 0..m {
            let v = self.work[self.pivot_row[t]];
            if v != 0.0 {
                for &(r, mult) in &self.l_cols[t] {
                    self.work[r] -= mult * v;
                }
            }
        }
        // Back-substitute U in step space.
        for k in 0..m {
            self.work2[k] = self.work[self.pivot_row[k]];
        }
        for k in (0..m).rev() {
            let y = self.work2[k] / self.u_diag[k];
            self.work2[k] = y;
            if y != 0.0 {
                for &(t, u) in &self.u_cols[k] {
                    self.work2[t] -= u * y;
                }
            }
        }
        // Scatter step space -> basis-position space.
        for k in 0..m {
            out[self.col_at[k]] = self.work2[k];
        }
    }

    /// Solves `Bᵀ·y = c`: `c` indexed by basis position, `y` by original
    /// row. `out` must have length `m`; it is fully overwritten.
    pub fn btran(&mut self, c: &[f64], out: &mut [f64]) {
        let m = self.m;
        // Gather position space -> step space.
        for k in 0..m {
            self.work2[k] = c[self.col_at[k]];
        }
        // Solve Uᵀ·z = c' by forward substitution in step order.
        for k in 0..m {
            let mut acc = self.work2[k];
            for &(t, u) in &self.u_cols[k] {
                acc -= u * self.work2[t];
            }
            self.work2[k] = acc / self.u_diag[k];
        }
        // Solve Lᵀ: scatter to row space, then apply the transposed
        // eliminations in reverse step order.
        for v in out.iter_mut() {
            *v = 0.0;
        }
        for k in 0..m {
            out[self.pivot_row[k]] = self.work2[k];
        }
        for t in (0..m).rev() {
            let mut acc = out[self.pivot_row[t]];
            for &(r, mult) in &self.l_cols[t] {
                acc -= mult * out[r];
            }
            out[self.pivot_row[t]] = acc;
        }
    }

    /// Total stored nonzeros across both triangles (diagnostics).
    pub fn fill(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Factorizes a dense matrix given row-major, for the tests.
    fn factor_dense(a: &[f64], m: usize) -> Option<LuFactors> {
        LuFactors::factorize(m, 1e-12, |j, f| {
            for r in 0..m {
                let v = a[r * m + j];
                if v != 0.0 {
                    f(r, v);
                }
            }
        })
    }

    fn mat_vec(a: &[f64], m: usize, x: &[f64]) -> Vec<f64> {
        (0..m)
            .map(|r| (0..m).map(|c| a[r * m + c] * x[c]).sum())
            .collect()
    }

    fn mat_t_vec(a: &[f64], m: usize, y: &[f64]) -> Vec<f64> {
        (0..m)
            .map(|c| (0..m).map(|r| a[r * m + c] * y[r]).sum())
            .collect()
    }

    #[test]
    fn ftran_btran_match_dense_solves() {
        let m = 4;
        #[rustfmt::skip]
        let a = [
            2.0, 0.0, 1.0, 0.0,
            0.0, -1.0, 0.0, 3.0,
            1.0, 0.0, 0.0, 0.0,
            0.0, 2.0, 0.0, 1.0,
        ];
        let mut lu = factor_dense(&a, m).expect("nonsingular");
        let rhs = [1.0, 2.0, -1.0, 0.5];
        let mut x = vec![0.0; m];
        lu.ftran(&rhs, &mut x);
        let ax = mat_vec(&a, m, &x);
        for (got, want) in ax.iter().zip(&rhs) {
            assert!((got - want).abs() < 1e-12, "{got} != {want}");
        }
        let c = [0.5, -1.0, 2.0, 0.0];
        let mut y = vec![0.0; m];
        lu.btran(&c, &mut y);
        let aty = mat_t_vec(&a, m, &y);
        for (got, want) in aty.iter().zip(&c) {
            assert!((got - want).abs() < 1e-12, "{got} != {want}");
        }
    }

    #[test]
    fn negative_identity_factors() {
        // The slack basis B = −I, the engine's cold start.
        let m = 3;
        let mut lu = LuFactors::factorize(m, 1e-12, |j, f| f(j, -1.0)).unwrap();
        let rhs = [3.0, -1.0, 2.0];
        let mut x = vec![0.0; m];
        lu.ftran(&rhs, &mut x);
        assert_eq!(x, vec![-3.0, 1.0, -2.0]);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let m = 2;
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(factor_dense(&a, m).is_none());
    }

    #[test]
    fn eta_apply_matches_explicit_pivot() {
        // E from pivoting on position 1 with alpha = [0.5, 2.0, -1.0].
        let eta = Eta {
            r: 1,
            pivot: 2.0,
            entries: vec![(0, 0.5), (2, -1.0)],
        };
        let mut v = [1.0, 4.0, 3.0];
        eta.apply(&mut v);
        // vr = 4/2 = 2; v0 = 1 - 0.5*2 = 0; v2 = 3 + 1*2 = 5.
        assert_eq!(v, [0.0, 2.0, 5.0]);

        // Eᵀ consistency: <E·a, b> == <a, Eᵀ·b> for arbitrary vectors.
        let a = [1.0, -2.0, 0.5];
        let b = [3.0, 1.0, -1.0];
        let mut ea = a;
        eta.apply(&mut ea);
        let mut etb = b;
        eta.apply_transposed(&mut etb);
        let lhs: f64 = ea.iter().zip(&b).map(|(x, y)| x * y).sum();
        let rhs: f64 = a.iter().zip(&etb).map(|(x, y)| x * y).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn factorization_is_deterministic() {
        let m = 5;
        let mut a = vec![0.0; m * m];
        // A seeded sparse-ish matrix with ties in magnitudes.
        let mut s = 12345u64;
        for r in 0..m {
            for c in 0..m {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if s.is_multiple_of(3) || r == c {
                    a[r * m + c] = ((s >> 33) % 7) as f64 - 3.0;
                }
            }
            if a[r * m + r] == 0.0 {
                a[r * m + r] = 1.0;
            }
        }
        let lu1 = factor_dense(&a, m).unwrap();
        let lu2 = factor_dense(&a, m).unwrap();
        assert_eq!(lu1.pivot_row, lu2.pivot_row);
        assert_eq!(lu1.col_at, lu2.col_at);
        assert_eq!(lu1.fill(), lu2.fill());
    }
}
