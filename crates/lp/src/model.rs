//! Public model-building API.

use std::fmt;

use crate::basis::Basis;
use crate::simplex::{LpError, Simplex, Solution, WARM_FALLBACK, WARM_RESOLVE, WARM_START};

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Handle to a decision variable of a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

/// Handle to a constraint row of a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a dense index (must be in range for the
    /// model it is used with).
    pub fn from_index(index: usize) -> Self {
        VarId(index)
    }
}

impl ConId {
    /// The dense index of this constraint.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a dense index (must be in range for the
    /// model it is used with).
    pub fn from_index(index: usize) -> Self {
        ConId(index)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for ConId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A linear program under construction.
///
/// Rows are *ranged*: each row constrains its activity `aᵀx` to
/// `[lower, upper]`; use equal bounds for an equality and an infinite bound
/// for a one-sided constraint. Variables carry bounds and an objective
/// coefficient.
///
/// Coefficients are stored column-wise, which is what both the simplex
/// engine and column generation want.
#[derive(Clone, Debug, Default)]
pub struct Model {
    sense: Option<Sense>,
    pub(crate) obj: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) cols: Vec<Vec<(usize, f64)>>,
    pub(crate) row_lower: Vec<f64>,
    pub(crate) row_upper: Vec<f64>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense: Some(sense),
            ..Model::default()
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense.unwrap_or(Sense::Minimize)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_lower.len()
    }

    /// Adds a variable with bounds `[lower, upper]` and objective
    /// coefficient `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or any argument is NaN.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64) -> VarId {
        assert!(
            !lower.is_nan() && !upper.is_nan() && !obj.is_nan(),
            "NaN in variable"
        );
        assert!(lower <= upper, "variable lower bound exceeds upper bound");
        let id = VarId(self.obj.len());
        self.obj.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        self.cols.push(Vec::new());
        id
    }

    /// Adds a variable together with its column entries (one per row it
    /// appears in). This is the column-generation entry point.
    ///
    /// # Panics
    ///
    /// Panics on NaN, inverted bounds, or an out-of-range row.
    pub fn add_var_with_column(
        &mut self,
        lower: f64,
        upper: f64,
        obj: f64,
        column: &[(ConId, f64)],
    ) -> VarId {
        let id = self.add_var(lower, upper, obj);
        for &(row, coeff) in column {
            self.set_coeff(row, id, coeff);
        }
        id
    }

    /// Adds a ranged row `lower ≤ Σ coeff·var ≤ upper`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`, on NaN, or an out-of-range variable.
    pub fn add_row(&mut self, lower: f64, upper: f64, entries: &[(VarId, f64)]) -> ConId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN in row bounds");
        assert!(lower <= upper, "row lower bound exceeds upper bound");
        let id = ConId(self.row_lower.len());
        self.row_lower.push(lower);
        self.row_upper.push(upper);
        for &(var, coeff) in entries {
            self.set_coeff(id, var, coeff);
        }
        id
    }

    /// Sets (or overwrites) the coefficient of `var` in `row`.
    pub fn set_coeff(&mut self, row: ConId, var: VarId, coeff: f64) {
        assert!(!coeff.is_nan(), "NaN coefficient");
        assert!(row.0 < self.row_lower.len(), "row out of range");
        let col = &mut self.cols[var.0];
        if let Some(entry) = col.iter_mut().find(|(r, _)| *r == row.0) {
            entry.1 = coeff;
        } else if coeff != 0.0 {
            col.push((row.0, coeff));
        }
    }

    /// Changes the objective coefficient of a variable.
    pub fn set_obj(&mut self, var: VarId, obj: f64) {
        assert!(!obj.is_nan(), "NaN objective");
        self.obj[var.0] = obj;
    }

    /// Changes the bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn set_var_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "variable lower bound exceeds upper bound");
        self.lower[var.0] = lower;
        self.upper[var.0] = upper;
    }

    /// Iterator over the sparse columns (row index, coefficient), one per
    /// variable in id order.
    pub fn columns(&self) -> impl Iterator<Item = &[(usize, f64)]> {
        self.cols.iter().map(Vec::as_slice)
    }

    /// Evaluates the objective at a point (in the model's own sense).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.obj.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks whether `x` satisfies all bounds and rows to within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for j in 0..self.num_vars() {
            if x[j] < self.lower[j] - tol || x[j] > self.upper[j] + tol {
                return false;
            }
        }
        let mut activity = vec![0.0; self.num_rows()];
        for (j, col) in self.cols.iter().enumerate() {
            for &(r, a) in col {
                activity[r] += a * x[j];
            }
        }
        activity
            .iter()
            .enumerate()
            .all(|(r, &v)| v >= self.row_lower[r] - tol && v <= self.row_upper[r] + tol)
    }

    /// Solves the model from scratch. The returned solution carries an
    /// independently verified certificate
    /// ([`Solution::certificate`]); a solution that fails verification is
    /// never returned.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`] if no point satisfies all constraints,
    /// [`LpError::Unbounded`] if the objective is unbounded in the model's
    /// sense, [`LpError::Numerical`] if the solver loses too much
    /// precision to certify a result, and [`LpError::NumericalBreakdown`]
    /// if the independent certificate verifier rejects the extracted
    /// solution.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with_context(&jcr_ctx::SolverContext::new())
    }

    /// [`Model::solve`] under an explicit [`jcr_ctx::SolverContext`] — the context
    /// bounds the pivot loop and records simplex statistics plus the
    /// certificate residuals.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`], plus [`LpError::Budget`] when the
    /// context's deadline or simplex iteration cap trips.
    pub fn solve_with_context(&self, ctx: &jcr_ctx::SolverContext) -> Result<Solution, LpError> {
        let sol = Simplex::new(self).solve_with_context(ctx)?;
        attach_certificate(self, sol, ctx)
    }

    /// Creates a reusable solver for this model, allowing columns to be
    /// added between solves (column generation) with warm starts.
    pub fn into_solver(self) -> ModelSolver {
        ModelSolver {
            model: self,
            simplex: None,
        }
    }
}

/// A solver wrapper that supports adding columns between solves and warm
/// starts from the previous basis — the workhorse of column generation.
///
/// # Examples
///
/// ```
/// use jcr_lp::{Model, Sense};
///
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_var(0.0, f64::INFINITY, 2.0);
/// let demand = m.add_row(1.0, 1.0, &[(x, 1.0)]);
/// let mut solver = m.into_solver();
/// let first = solver.solve().unwrap();
/// assert!((first.objective - 2.0).abs() < 1e-9);
/// // Price in a cheaper column and resolve.
/// solver.add_column(0.0, f64::INFINITY, 1.0, &[(demand, 1.0)]);
/// let second = solver.solve().unwrap();
/// assert!((second.objective - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct ModelSolver {
    model: Model,
    simplex: Option<Simplex>,
}

impl ModelSolver {
    /// Read access to the underlying model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Adds a new variable (column) with the given bounds, objective, and
    /// row coefficients. The next [`ModelSolver::solve`] warm-starts from
    /// the previous basis with the new column nonbasic.
    pub fn add_column(
        &mut self,
        lower: f64,
        upper: f64,
        obj: f64,
        column: &[(ConId, f64)],
    ) -> VarId {
        let id = self.model.add_var_with_column(lower, upper, obj, column);
        if let Some(s) = &mut self.simplex {
            s.add_column(&self.model, id.0);
        }
        id
    }

    /// Solves (or re-solves) the model.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve(&mut self) -> Result<Solution, LpError> {
        self.solve_with_context(&jcr_ctx::SolverContext::new())
    }

    /// [`ModelSolver::solve`] under an explicit context (budgets +
    /// instrumentation for the warm-started pivot loop).
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`], plus [`LpError::Budget`] when the
    /// context's deadline or simplex iteration cap trips.
    pub fn solve_with_context(
        &mut self,
        ctx: &jcr_ctx::SolverContext,
    ) -> Result<Solution, LpError> {
        let result = match &mut self.simplex {
            Some(s) => {
                ctx.obs().add_counter(WARM_RESOLVE, 1);
                s.resolve_with_context(&self.model, ctx)
            }
            None => {
                let mut s = Simplex::new(&self.model);
                let result = s.solve_with_context(ctx);
                self.simplex = Some(s);
                result
            }
        };
        attach_certificate(&self.model, result?, ctx)
    }

    /// Snapshots the basis of the most recent solve, or `None` if the
    /// model has never been solved through this wrapper. The snapshot is
    /// cheap to clone and can warm-start a *different* `ModelSolver` over
    /// a same-shaped model via [`ModelSolver::solve_from_basis`].
    pub fn basis(&self) -> Option<Basis> {
        self.simplex.as_ref().map(Simplex::snapshot_basis)
    }

    /// Solves the model warm-started from a [`Basis`] snapshot.
    ///
    /// Restoring is best effort: when the snapshot's dimensions do not
    /// match this model, its statuses are invalid under the current
    /// bounds, or its basic set is singular under the current
    /// coefficients, the solve silently falls back to a cold start — the
    /// result is identical either way, only the pivot count differs. The
    /// outcome is observable via the `lp.warm_start` / `lp.warm_fallback`
    /// context counters.
    ///
    /// # Errors
    ///
    /// Same as [`ModelSolver::solve_with_context`].
    pub fn solve_from_basis(
        &mut self,
        basis: &Basis,
        ctx: &jcr_ctx::SolverContext,
    ) -> Result<Solution, LpError> {
        let s = self
            .simplex
            .get_or_insert_with(|| Simplex::new(&self.model));
        if s.try_restore_basis(basis) {
            ctx.obs().add_counter(WARM_START, 1);
        } else {
            ctx.obs().add_counter(WARM_FALLBACK, 1);
        }
        let result = s.resolve_with_context(&self.model, ctx);
        attach_certificate(&self.model, result?, ctx)
    }
}

/// Runs the independent verifier over a freshly extracted solution,
/// records the certificate's residuals into the context's metrics
/// registry, and refuses to return an unverified "optimal" claim.
fn attach_certificate(
    model: &Model,
    mut sol: Solution,
    ctx: &jcr_ctx::SolverContext,
) -> Result<Solution, LpError> {
    sol.certificate = crate::certify::certify(model, &sol);
    sol.certificate.record(ctx);
    if !sol.certificate.verified() {
        return Err(LpError::NumericalBreakdown(
            sol.certificate.failure_summary(),
        ));
    }
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0);
        let y = m.add_var(0.0, 1.0, 2.0);
        let r = m.add_row(1.0, 1.0, &[(x, 1.0), (y, 1.0)]);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_rows(), 1);
        m.set_coeff(r, y, 3.0);
        assert!(m.is_feasible(&[1.0, 0.0], 1e-9));
        assert!(!m.is_feasible(&[0.0, 0.0], 1e-9));
        assert_eq!(m.objective_value(&[1.0, 0.5]), 2.0);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn inverted_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(1.0, 0.0, 0.0);
    }
}
