//! Presolve: problem reductions applied before the simplex.
//!
//! The cache-network LPs carry easy structure — fixed variables (e.g.
//! items pinned in or out of a cache), singleton rows that are really
//! bounds, and rows emptied by substitution — and eliminating it up front
//! shrinks the basis the simplex must factor. Reductions applied, to a
//! fixed point:
//!
//! 1. **fixed variables** (`l = u`): substituted into every row and the
//!    objective;
//! 2. **empty rows**: dropped after a consistency check (`0 ∈ [L, U]`);
//! 3. **singleton rows** (`a·x ∈ [L, U]`): folded into the variable's
//!    bounds and dropped.
//!
//! [`solve`] runs the reductions, solves the reduced LP, and maps the
//! solution back to the original variable/row spaces, so it is a drop-in
//! replacement for [`Model::solve`].

use crate::model::Model;
use crate::simplex::{LpError, Solution};

/// Outcome of the reduction pass.
#[derive(Clone, Debug)]
pub struct PresolveInfo {
    /// Variables eliminated as fixed.
    pub fixed_vars: usize,
    /// Rows dropped (empty or singleton).
    pub dropped_rows: usize,
}

/// Solves `model` with presolve reductions; results match
/// [`Model::solve`] up to numerical tolerance.
///
/// # Errors
///
/// Same contract as [`Model::solve`]; inconsistencies detected during
/// presolve surface as [`LpError::Infeasible`].
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    let (solution, _info) = solve_with_info(model)?;
    Ok(solution)
}

/// [`solve`] under an explicit [`jcr_ctx::SolverContext`]: the reduced
/// LP's simplex obeys the context's budget and records its statistics.
///
/// # Errors
///
/// Same as [`solve`], plus [`LpError::Budget`] when the budget trips.
pub fn solve_with_context(
    model: &Model,
    ctx: &jcr_ctx::SolverContext,
) -> Result<Solution, LpError> {
    let (solution, _info) = solve_with_info_ctx(model, ctx)?;
    Ok(solution)
}

/// Like [`solve`], also reporting what presolve eliminated.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_info(model: &Model) -> Result<(Solution, PresolveInfo), LpError> {
    solve_with_info_ctx(model, &jcr_ctx::SolverContext::new())
}

/// Like [`solve_with_info`], under an explicit context.
///
/// # Errors
///
/// Same as [`solve_with_context`].
pub fn solve_with_info_ctx(
    model: &Model,
    ctx: &jcr_ctx::SolverContext,
) -> Result<(Solution, PresolveInfo), LpError> {
    let n = model.num_vars();
    let m = model.num_rows();
    let tol = 1e-9;

    // Column-wise coefficients copied into a mutable working form.
    let mut lower = model.lower.clone();
    let mut upper = model.upper.clone();
    let mut row_lower = model.row_lower.clone();
    let mut row_upper = model.row_upper.clone();
    let cols = &model.cols;

    // Row-wise view for counting live entries.
    let mut row_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for (j, col) in cols.iter().enumerate() {
        for &(r, a) in col {
            if a != 0.0 {
                row_entries[r].push((j, a));
            }
        }
    }

    let mut var_fixed: Vec<Option<f64>> = vec![None; n];
    let mut row_dropped = vec![false; m];
    let mut fixed_count = 0usize;
    let mut dropped_count = 0usize;

    // Iterate reductions to a fixed point.
    loop {
        let mut changed = false;
        // 1. Fix variables with collapsed bounds and substitute them.
        for j in 0..n {
            if var_fixed[j].is_none() && (upper[j] - lower[j]).abs() <= tol {
                let v = 0.5 * (lower[j] + upper[j]);
                var_fixed[j] = Some(v);
                fixed_count += 1;
                changed = true;
                if v != 0.0 {
                    for &(r, a) in &cols[j] {
                        if row_lower[r].is_finite() {
                            row_lower[r] -= a * v;
                        }
                        if row_upper[r].is_finite() {
                            row_upper[r] -= a * v;
                        }
                    }
                }
            }
        }
        // Refresh live row entries (drop fixed variables).
        for r in 0..m {
            row_entries[r].retain(|&(j, _)| var_fixed[j].is_none());
        }
        // 2–3. Empty and singleton rows.
        for r in 0..m {
            if row_dropped[r] {
                continue;
            }
            match row_entries[r].len() {
                0 => {
                    if row_lower[r] > tol || row_upper[r] < -tol {
                        return Err(LpError::Infeasible);
                    }
                    row_dropped[r] = true;
                    dropped_count += 1;
                    changed = true;
                }
                1 => {
                    let (j, a) = row_entries[r][0];
                    debug_assert!(var_fixed[j].is_none());
                    // a·x ∈ [L, U] → x ∈ [L/a, U/a] (order by sign of a).
                    let (mut lo, mut hi) = (row_lower[r] / a, row_upper[r] / a);
                    if a < 0.0 {
                        std::mem::swap(&mut lo, &mut hi);
                    }
                    if lo.is_nan() {
                        lo = f64::NEG_INFINITY;
                    }
                    if hi.is_nan() {
                        hi = f64::INFINITY;
                    }
                    lower[j] = lower[j].max(lo);
                    upper[j] = upper[j].min(hi);
                    if lower[j] > upper[j] + tol {
                        return Err(LpError::Infeasible);
                    }
                    // Guard against crossing bounds within tolerance.
                    if lower[j] > upper[j] {
                        let mid = 0.5 * (lower[j] + upper[j]);
                        lower[j] = mid;
                        upper[j] = mid;
                    }
                    row_dropped[r] = true;
                    dropped_count += 1;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Build the reduced model.
    let mut reduced = Model::new(model.sense());
    let mut var_map: Vec<Option<crate::VarId>> = vec![None; n];
    for j in 0..n {
        if var_fixed[j].is_none() {
            var_map[j] = Some(reduced.add_var(lower[j], upper[j], model.obj[j]));
        }
    }
    let mut row_map: Vec<Option<crate::ConId>> = vec![None; m];
    for r in 0..m {
        if !row_dropped[r] {
            row_map[r] = Some(reduced.add_row(row_lower[r], row_upper[r], &[]));
        }
    }
    for j in 0..n {
        if let Some(vj) = var_map[j] {
            for &(r, a) in &cols[j] {
                if let Some(rr) = row_map[r] {
                    reduced.set_coeff(rr, vj, a);
                }
            }
        }
    }

    let sub = reduced.solve_with_context(ctx)?;

    // Map back. `var_map[j]` is Some exactly when `var_fixed[j]` is None —
    // both were filled from the same `var_fixed` scan above.
    let mut x = vec![0.0; n];
    for j in 0..n {
        x[j] = match var_fixed[j] {
            Some(v) => v,
            None => sub.x[var_map[j].expect("live variable").index()],
        };
    }
    let fixed_obj: f64 = var_fixed
        .iter()
        .enumerate()
        .filter_map(|(j, v)| v.map(|v| v * model.obj[j]))
        .sum();
    let mut duals = vec![0.0; m];
    for r in 0..m {
        if let Some(rr) = row_map[r] {
            duals[r] = sub.duals[rr.index()];
        }
    }
    Ok((
        Solution {
            x,
            objective: sub.objective + fixed_obj,
            duals,
            // The reduced solve was certified; the map-back is exact
            // substitution, so its certificate carries over.
            certificate: sub.certificate,
        },
        PresolveInfo {
            fixed_vars: fixed_count,
            dropped_rows: dropped_count,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense};

    #[test]
    fn matches_direct_solve_with_fixed_vars() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 5.0, 2.0);
        let fixed = m.add_var(3.0, 3.0, 1.0); // fixed at 3
        m.add_row(f64::NEG_INFINITY, 10.0, &[(x, 1.0), (fixed, 2.0)]);
        let direct = m.solve().unwrap();
        let (pre, info) = solve_with_info(&m).unwrap();
        assert!((direct.objective - pre.objective).abs() < 1e-9);
        assert_eq!(info.fixed_vars, 1);
        assert!((pre.x[fixed.index()] - 3.0).abs() < 1e-12);
        // x limited by the row: x ≤ 10 − 6 = 4.
        assert!((pre.x[x.index()] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 100.0, 1.0);
        m.add_row(2.0, 7.0, &[(x, 1.0)]); // really a bound
        let (pre, info) = solve_with_info(&m).unwrap();
        assert_eq!(info.dropped_rows, 1);
        assert!((pre.x[x.index()] - 2.0).abs() < 1e-9);
        assert!((pre.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_coefficient_singleton() {
        // −2x ≤ −6 → x ≥ 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 100.0, 1.0);
        m.add_row(f64::NEG_INFINITY, -6.0, &[(x, -2.0)]);
        let pre = solve(&m).unwrap();
        assert!((pre.x[x.index()] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn detects_infeasibility_through_reductions() {
        // x fixed at 1 makes the row 2 ≤ x ≤ 3 empty-and-violated.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0, 1.0, 0.0);
        m.add_row(2.0, 3.0, &[(x, 1.0)]);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn contradictory_singleton_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_row(5.0, 6.0, &[(x, 1.0)]); // x ∈ [5, 6] vs x ≤ 1
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn matches_direct_on_random_lps() {
        use jcr_ctx::rng::{Rng, SeedableRng};
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(44);
        for _case in 0..30 {
            let n = rng.gen_range(2..8usize);
            let mut m = Model::new(Sense::Minimize);
            let vars: Vec<_> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        // Some fixed variables to exercise substitution.
                        let v = rng.gen_range(0.0..2.0);
                        m.add_var(v, v, rng.gen_range(-2.0..2.0))
                    } else {
                        m.add_var(0.0, rng.gen_range(0.5..4.0), rng.gen_range(-2.0..2.0))
                    }
                })
                .collect();
            for _ in 0..rng.gen_range(1..6) {
                if rng.gen_bool(0.25) {
                    // Singleton row.
                    let j = rng.gen_range(0..n);
                    m.add_row(
                        f64::NEG_INFINITY,
                        rng.gen_range(0.5..5.0),
                        &[(vars[j], 1.0)],
                    );
                } else {
                    let entries: Vec<_> =
                        vars.iter().map(|&v| (v, rng.gen_range(0.0..2.0))).collect();
                    m.add_row(f64::NEG_INFINITY, rng.gen_range(2.0..10.0), &entries);
                }
            }
            let direct = m.solve();
            let pre = solve(&m);
            match (direct, pre) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.objective - b.objective).abs() < 1e-6 * (1.0 + a.objective.abs()),
                        "direct {} vs presolved {}",
                        a.objective,
                        b.objective
                    );
                    assert!(m.is_feasible(&b.x, 1e-6));
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("disagreement: direct {a:?} vs presolved {b:?}"),
            }
        }
    }
}
