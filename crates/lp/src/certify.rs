//! Independent LP solution verification (DESIGN.md §11).
//!
//! [`certify`] recomputes, from the model data alone and with compensated
//! (Kahan/TwoSum) arithmetic, everything the simplex *claims* about a
//! returned [`Solution`]: primal feasibility of bounds and ranged rows,
//! the objective value, dual sign conditions, dual feasibility of the
//! reduced costs, complementary slackness, and the weak-duality gap
//! between the primal objective and the dual bound. None of the solver's
//! running sums, basis inverse, or pivot-time values are reused — a
//! drifted basis cannot certify itself.
//!
//! Tolerances are scaled from the solver's advertised tolerances
//! (`FEAS ≈ 1e-7` on activities, `DUAL ≈ 1e-7` on reduced costs): the
//! duality-gap check in particular accepts exactly the gap those
//! per-component slacks can legitimately produce, so a passing
//! certificate means "optimal up to the advertised tolerances" and a
//! failing one means the solver's claim is arithmetically wrong.

use jcr_ctx::cert::{Certificate, Kahan};

use crate::model::Model;
use crate::simplex::Solution;
use crate::Sense;

/// Per-component feasibility tolerance mirrored from the simplex.
const FEAS: f64 = 1e-7;
/// Per-component dual (reduced-cost) tolerance mirrored from the simplex.
const DUAL: f64 = 1e-7;

/// Independently verifies `sol` against `model`. The returned
/// [`Certificate`] carries one residual check per verified property;
/// [`Certificate::verified`] is the overall verdict.
pub fn certify(model: &Model, sol: &Solution) -> Certificate {
    let mut cert = Certificate::new("lp");
    let n = model.num_vars();
    let m = model.num_rows();
    if sol.x.len() != n || sol.duals.len() != m {
        cert.push("shape", f64::INFINITY, 0.0);
        return cert;
    }
    // Work in minimization form: negate the objective and the duals of a
    // maximization model (the solver reports both in the model's sense).
    let minimize = matches!(model.sense(), Sense::Minimize);
    let sgn = if minimize { 1.0 } else { -1.0 };
    let obj_min = sgn * sol.objective;

    // --- primal bounds -----------------------------------------------------
    let mut bound_viol = 0.0f64;
    for j in 0..n {
        let x = sol.x[j];
        if !x.is_finite() {
            cert.push("primal-finite", f64::INFINITY, 0.0);
            return cert;
        }
        let v = (model.lower[j] - x).max(x - model.upper[j]).max(0.0);
        bound_viol = bound_viol.max(v / (1.0 + x.abs()));
    }
    cert.push("primal-bounds", bound_viol, 10.0 * FEAS);

    // --- primal rows (compensated activities) ------------------------------
    let mut act_sum = vec![Kahan::new(); m];
    for (j, col) in model.cols.iter().enumerate() {
        let x = sol.x[j];
        if x != 0.0 {
            for &(r, a) in col {
                act_sum[r].add_prod(a, x);
            }
        }
    }
    let activity: Vec<f64> = act_sum.iter().map(Kahan::total).collect();
    let mut row_viol = 0.0f64;
    for r in 0..m {
        let v = (model.row_lower[r] - activity[r])
            .max(activity[r] - model.row_upper[r])
            .max(0.0);
        row_viol = row_viol.max(v / (1.0 + activity[r].abs()));
    }
    cert.push("primal-rows", row_viol, 10.0 * FEAS);

    // --- objective recompute ------------------------------------------------
    let mut obj = Kahan::new();
    for j in 0..n {
        obj.add_prod(model.obj[j], sol.x[j]);
    }
    let obj_primal_min = sgn * obj.total();
    cert.push(
        "objective",
        (obj_primal_min - obj_min).abs() / (1.0 + obj_min.abs()),
        1e-9,
    );

    // --- dual signs, reduced costs, complementary slackness ----------------
    // Minimization-form duals: y_r > 0 needs a finite row lower bound,
    // y_r < 0 a finite row upper bound, and the product with the slack to
    // the bound the sign points at must vanish.
    let y_min: Vec<f64> = sol.duals.iter().map(|&y| sgn * y).collect();
    let mut sign_viol = 0.0f64;
    let mut cs_rows = 0.0f64;
    for r in 0..m {
        let y = y_min[r];
        if y > DUAL && !model.row_lower[r].is_finite() {
            sign_viol = sign_viol.max(y);
        }
        if y < -DUAL && !model.row_upper[r].is_finite() {
            sign_viol = sign_viol.max(-y);
        }
        let dist = if y > 0.0 && model.row_lower[r].is_finite() {
            (activity[r] - model.row_lower[r]).abs()
        } else if y < 0.0 && model.row_upper[r].is_finite() {
            (model.row_upper[r] - activity[r]).abs()
        } else {
            0.0
        };
        cs_rows = cs_rows.max((y.abs() * dist) / ((1.0 + y.abs()) * (1.0 + activity[r].abs())));
    }
    cert.push("dual-signs", sign_viol, 10.0 * DUAL);
    cert.push("compl-slack-rows", cs_rows, 1e-5);

    // Reduced costs d = c − Aᵀy (compensated, minimization form), checked
    // against the variable's position in its box.
    let mut dual_viol = 0.0f64;
    let mut cs_cols = 0.0f64;
    let mut reduced = Vec::with_capacity(n);
    for j in 0..n {
        let mut d = Kahan::new();
        d.add(sgn * model.obj[j]);
        for &(r, a) in &model.cols[j] {
            d.add_prod(-a, y_min[r]);
        }
        let d = d.total();
        reduced.push(d);
        let x = sol.x[j];
        let lo = model.lower[j];
        let up = model.upper[j];
        let at_lower = lo.is_finite() && x <= lo + 10.0 * FEAS * (1.0 + lo.abs());
        let at_upper = up.is_finite() && x >= up - 10.0 * FEAS * (1.0 + up.abs());
        let scale = 1.0 + d.abs();
        if at_lower && at_upper {
            // Fixed variable: any reduced cost is consistent.
        } else if at_lower {
            dual_viol = dual_viol.max((-d).max(0.0) / scale);
        } else if at_upper {
            dual_viol = dual_viol.max(d.max(0.0) / scale);
        } else {
            // Interior (or free): the reduced cost must vanish.
            cs_cols = cs_cols.max(d.abs() / (scale * (1.0 + x.abs())));
        }
    }
    cert.push("dual-feasibility", dual_viol, 10.0 * DUAL);
    cert.push("compl-slack-cols", cs_cols, 1e-5);

    // --- weak-duality gap ---------------------------------------------------
    // Dual objective for ranged rows and boxed variables (minimization
    // form): Σ_r [y⁺L + y⁻U] + Σ_j [d⁺l + d⁻u]. Multipliers that pair
    // with an infinite bound contribute nothing here — the sign checks
    // above already flag them when they are non-negligible.
    let mut dual_obj = Kahan::new();
    for r in 0..m {
        let y = y_min[r];
        if y > 0.0 && model.row_lower[r].is_finite() {
            dual_obj.add_prod(y, model.row_lower[r]);
        } else if y < 0.0 && model.row_upper[r].is_finite() {
            dual_obj.add_prod(y, model.row_upper[r]);
        }
    }
    for j in 0..n {
        let d = reduced[j];
        if d > 0.0 && model.lower[j].is_finite() {
            dual_obj.add_prod(d, model.lower[j]);
        } else if d < 0.0 && model.upper[j].is_finite() {
            dual_obj.add_prod(d, model.upper[j]);
        }
    }
    let gap = (obj_primal_min - dual_obj.total()).abs();
    // The gap budget the advertised tolerances can legitimately produce:
    // DUAL per variable (scaled by its magnitude) plus FEAS per row
    // (scaled by its dual), plus roundoff headroom on the objective.
    let mut budget = 1e-9 * (1.0 + obj_min.abs());
    for j in 0..n {
        budget += DUAL * (1.0 + sol.x[j].abs());
    }
    for r in 0..m {
        budget += FEAS * (1.0 + y_min[r].abs()) * (1.0 + activity[r].abs());
    }
    cert.push("duality-gap", gap, 10.0 * budget);

    cert
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense};

    fn solve_certified(m: &Model) -> (Solution, Certificate) {
        let sol = m.solve().unwrap();
        let cert = certify(m, &sol);
        (sol, cert)
    }

    #[test]
    fn verifies_simple_min() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 3.0, 2.0);
        let y = m.add_var(0.0, 4.0, 3.0);
        m.add_row(5.0, 5.0, &[(x, 1.0), (y, 1.0)]);
        let (_, cert) = solve_certified(&m);
        assert!(cert.verified(), "{cert}");
    }

    #[test]
    fn verifies_simple_max() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 2.0, 3.0);
        let y = m.add_var(0.0, 3.0, 2.0);
        m.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        let (_, cert) = solve_certified(&m);
        assert!(cert.verified(), "{cert}");
    }

    #[test]
    fn verifies_free_variables_and_ranges() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_row(-7.0, f64::INFINITY, &[(x, 1.0)]);
        let (sol, cert) = solve_certified(&m);
        assert!((sol.x[0] + 7.0).abs() < 1e-6);
        assert!(cert.verified(), "{cert}");
    }

    #[test]
    fn rejects_tampered_primal() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 3.0, 2.0);
        m.add_row(1.0, 1.0, &[(x, 1.0)]);
        let (mut sol, cert) = solve_certified(&m);
        assert!(cert.verified());
        sol.x[0] = 2.5; // violates the equality row
        let cert = certify(&m, &sol);
        assert!(!cert.verified());
        assert!(cert.failures().any(|c| c.name == "primal-rows"), "{cert}");
    }

    #[test]
    fn rejects_tampered_objective() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 3.0, 2.0);
        m.add_row(1.0, 1.0, &[(x, 1.0)]);
        let (mut sol, _) = solve_certified(&m);
        sol.objective += 0.5;
        let cert = certify(&m, &sol);
        assert!(cert.failures().any(|c| c.name == "objective"), "{cert}");
    }

    #[test]
    fn rejects_tampered_duals() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 2.0);
        m.add_row(1.0, 1.0, &[(x, 1.0)]);
        let (mut sol, cert) = solve_certified(&m);
        assert!(cert.verified(), "{cert}");
        // A wildly wrong dual breaks dual feasibility and/or the gap.
        sol.duals[0] = 100.0;
        let cert = certify(&m, &sol);
        assert!(!cert.verified(), "{cert}");
    }

    #[test]
    fn verifies_degenerate_transportation() {
        let mut m = Model::new(Sense::Minimize);
        let c = [[1.0, 2.0], [3.0, 1.0]];
        let mut vars = [[None; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                vars[i][j] = Some(m.add_var(0.0, f64::INFINITY, c[i][j]));
            }
        }
        for i in 0..2 {
            m.add_row(
                10.0,
                10.0,
                &[(vars[i][0].unwrap(), 1.0), (vars[i][1].unwrap(), 1.0)],
            );
        }
        for j in 0..2 {
            m.add_row(
                10.0,
                10.0,
                &[(vars[0][j].unwrap(), 1.0), (vars[1][j].unwrap(), 1.0)],
            );
        }
        let (_, cert) = solve_certified(&m);
        assert!(cert.verified(), "{cert}");
    }
}
