//! Basis snapshots for warm-started solves.
//!
//! A [`Basis`] records, for every column of the computational form
//! (structural variables first, then one slack per row), whether it was
//! basic or at which bound it rested when the snapshot was taken. That
//! is everything a simplex needs to resume: the basic *values* are
//! recomputed from a fresh factorization, so a snapshot stays valid
//! across objective changes, right-hand-side perturbations, and bound
//! tightenings — phase 1 repairs whatever feasibility the new data
//! broke.
//!
//! Restoring is *best effort by design*: a snapshot whose dimensions no
//! longer match the model (columns added or removed, rows changed), or
//! whose basic set is numerically singular under the new coefficients,
//! is silently discarded and the solve proceeds cold from the slack
//! basis. Callers that re-solve near-identical LPs (alternating
//! placement steps, hour-over-hour online re-solves) therefore thread a
//! `Basis` through unconditionally and let incompatible hours fall back
//! on their own.

/// Where one column rested in the snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SnapStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Free variable pinned at zero.
    FreeZero,
}

/// An opaque snapshot of a simplex basis, produced by
/// [`ModelSolver::basis`](crate::ModelSolver::basis) and consumed by
/// [`ModelSolver::solve_from_basis`](crate::ModelSolver::solve_from_basis).
///
/// Snapshots are cheap (`n + m` bytes of status plus two dimensions) and
/// `Clone`; they carry no factorization state.
#[derive(Clone, Debug)]
pub struct Basis {
    /// Structural column count the snapshot was taken at.
    pub(crate) n_struct: usize,
    /// Row (slack) count the snapshot was taken at.
    pub(crate) m: usize,
    /// Per-column status, structural columns then slacks.
    pub(crate) statuses: Vec<SnapStatus>,
}

impl Basis {
    /// Structural-variable count of the model this snapshot came from.
    pub fn num_vars(&self) -> usize {
        self.n_struct
    }

    /// Row count of the model this snapshot came from.
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Number of basic columns (equals [`Basis::num_rows`] for any
    /// snapshot taken from a consistent solver state).
    pub fn num_basic(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| **s == SnapStatus::Basic)
            .count()
    }

    /// Whether this snapshot's dimensions match a model with `n_vars`
    /// structural variables and `n_rows` rows — the cheap first gate of
    /// restore; the factorization gate runs inside the solver.
    pub fn matches_dims(&self, n_vars: usize, n_rows: usize) -> bool {
        self.n_struct == n_vars && self.m == n_rows && self.num_basic() == self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_gate() {
        let b = Basis {
            n_struct: 3,
            m: 2,
            statuses: vec![
                SnapStatus::Basic,
                SnapStatus::AtLower,
                SnapStatus::AtUpper,
                SnapStatus::Basic,
                SnapStatus::FreeZero,
            ],
        };
        assert_eq!(b.num_vars(), 3);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.num_basic(), 2);
        assert!(b.matches_dims(3, 2));
        assert!(!b.matches_dims(4, 2));
        assert!(!b.matches_dims(3, 3));
    }

    #[test]
    fn basic_count_gate() {
        // Right dims, wrong basic count: not restorable.
        let b = Basis {
            n_struct: 1,
            m: 2,
            statuses: vec![SnapStatus::Basic, SnapStatus::AtLower, SnapStatus::AtLower],
        };
        assert!(!b.matches_dims(1, 2));
    }
}
