//! Basis snapshots for warm-started solves.
//!
//! A [`Basis`] records, for every column of the computational form
//! (structural variables first, then one slack per row), whether it was
//! basic or at which bound it rested when the snapshot was taken. That
//! is everything a simplex needs to resume: the basic *values* are
//! recomputed from a fresh factorization, so a snapshot stays valid
//! across objective changes, right-hand-side perturbations, and bound
//! tightenings — phase 1 repairs whatever feasibility the new data
//! broke.
//!
//! Restoring is *best effort by design*: a snapshot whose dimensions no
//! longer match the model (columns added or removed, rows changed), or
//! whose basic set is numerically singular under the new coefficients,
//! is silently discarded and the solve proceeds cold from the slack
//! basis. Callers that re-solve near-identical LPs (alternating
//! placement steps, hour-over-hour online re-solves) therefore thread a
//! `Basis` through unconditionally and let incompatible hours fall back
//! on their own.

/// Where one column rested in the snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SnapStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Free variable pinned at zero.
    FreeZero,
}

/// An opaque snapshot of a simplex basis, produced by
/// [`ModelSolver::basis`](crate::ModelSolver::basis) and consumed by
/// [`ModelSolver::solve_from_basis`](crate::ModelSolver::solve_from_basis).
///
/// Snapshots are cheap (`n + m` bytes of status plus two dimensions) and
/// `Clone`; they carry no factorization state.
#[derive(Clone, Debug)]
pub struct Basis {
    /// Structural column count the snapshot was taken at.
    pub(crate) n_struct: usize,
    /// Row (slack) count the snapshot was taken at.
    pub(crate) m: usize,
    /// Per-column status, structural columns then slacks.
    pub(crate) statuses: Vec<SnapStatus>,
}

impl Basis {
    /// Structural-variable count of the model this snapshot came from.
    pub fn num_vars(&self) -> usize {
        self.n_struct
    }

    /// Row count of the model this snapshot came from.
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Number of basic columns (equals [`Basis::num_rows`] for any
    /// snapshot taken from a consistent solver state).
    pub fn num_basic(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| **s == SnapStatus::Basic)
            .count()
    }

    /// Whether this snapshot's dimensions match a model with `n_vars`
    /// structural variables and `n_rows` rows — the cheap first gate of
    /// restore; the factorization gate runs inside the solver.
    pub fn matches_dims(&self, n_vars: usize, n_rows: usize) -> bool {
        self.n_struct == n_vars && self.m == n_rows && self.num_basic() == self.m
    }

    /// Serializes the snapshot to a flat byte string: two `u32`
    /// little-endian dimensions (`n_struct`, `m`) followed by one status
    /// byte per column. The encoding is self-describing enough for
    /// [`Basis::from_bytes`] to validate it structurally without the
    /// model in hand.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.statuses.len());
        out.extend_from_slice(&(self.n_struct as u32).to_le_bytes());
        out.extend_from_slice(&(self.m as u32).to_le_bytes());
        out.extend(self.statuses.iter().map(|s| match s {
            SnapStatus::Basic => 0u8,
            SnapStatus::AtLower => 1,
            SnapStatus::AtUpper => 2,
            SnapStatus::FreeZero => 3,
        }));
        out
    }

    /// Rebuilds a snapshot from [`Basis::to_bytes`] output, rejecting
    /// anything structurally inconsistent: short headers, status counts
    /// that disagree with the dimensions, bytes outside the status
    /// alphabet, or a basic-column count different from the row count.
    /// Numerical validity (the basic set re-factorizes under the new
    /// coefficients) is still checked at restore time by
    /// [`ModelSolver::solve_from_basis`](crate::ModelSolver::solve_from_basis).
    pub fn from_bytes(bytes: &[u8]) -> Option<Basis> {
        if bytes.len() < 8 {
            return None;
        }
        let n_struct = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let m = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let body = &bytes[8..];
        if body.len() != n_struct.checked_add(m)? {
            return None;
        }
        let statuses: Option<Vec<SnapStatus>> = body
            .iter()
            .map(|b| match b {
                0 => Some(SnapStatus::Basic),
                1 => Some(SnapStatus::AtLower),
                2 => Some(SnapStatus::AtUpper),
                3 => Some(SnapStatus::FreeZero),
                _ => None,
            })
            .collect();
        let basis = Basis {
            n_struct,
            m,
            statuses: statuses?,
        };
        if basis.num_basic() != m {
            return None;
        }
        Some(basis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_gate() {
        let b = Basis {
            n_struct: 3,
            m: 2,
            statuses: vec![
                SnapStatus::Basic,
                SnapStatus::AtLower,
                SnapStatus::AtUpper,
                SnapStatus::Basic,
                SnapStatus::FreeZero,
            ],
        };
        assert_eq!(b.num_vars(), 3);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.num_basic(), 2);
        assert!(b.matches_dims(3, 2));
        assert!(!b.matches_dims(4, 2));
        assert!(!b.matches_dims(3, 3));
    }

    #[test]
    fn bytes_round_trip() {
        let b = Basis {
            n_struct: 3,
            m: 2,
            statuses: vec![
                SnapStatus::Basic,
                SnapStatus::AtLower,
                SnapStatus::AtUpper,
                SnapStatus::Basic,
                SnapStatus::FreeZero,
            ],
        };
        let bytes = b.to_bytes();
        let back = Basis::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.n_struct, b.n_struct);
        assert_eq!(back.m, b.m);
        assert_eq!(back.statuses, b.statuses);
    }

    #[test]
    fn bytes_reject_corruption() {
        let b = Basis {
            n_struct: 2,
            m: 1,
            statuses: vec![SnapStatus::Basic, SnapStatus::AtLower, SnapStatus::AtLower],
        };
        let bytes = b.to_bytes();
        // Truncated header and truncated body.
        assert!(Basis::from_bytes(&bytes[..4]).is_none());
        assert!(Basis::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        // Status byte outside the alphabet.
        let mut bad = bytes.clone();
        *bad.last_mut().expect("non-empty") = 9;
        assert!(Basis::from_bytes(&bad).is_none());
        // Basic count no longer equal to m after a bit flip.
        let mut demoted = bytes.clone();
        demoted[8] = 1; // Basic -> AtLower
        assert!(Basis::from_bytes(&demoted).is_none());
    }

    #[test]
    fn basic_count_gate() {
        // Right dims, wrong basic count: not restorable.
        let b = Basis {
            n_struct: 1,
            m: 2,
            statuses: vec![SnapStatus::Basic, SnapStatus::AtLower, SnapStatus::AtLower],
        };
        assert!(!b.matches_dims(1, 2));
    }
}
