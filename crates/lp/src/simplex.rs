//! The revised-simplex engine.
//!
//! Internally the problem is brought to the computational form
//!
//! ```text
//!     minimize cᵀx   subject to   A·x_struct − s = 0,   l ≤ (x_struct, s) ≤ u
//! ```
//!
//! where one slack `s_r` per ranged row carries the row's activity bounds.
//! The initial basis is the slack basis (B = −I), phase 1 minimizes the sum
//! of bound violations of basic variables (no big-M), and phase 2 optimizes
//! the true objective.
//!
//! The basis is represented by a **sparse LU factorization**
//! ([`crate::factor`]): Markowitz-flavoured column ordering with threshold
//! partial pivoting, product-form eta updates between refactorizations,
//! and sparse ftran/btran. Pricing is **Devex** (reference-framework
//! weights reset per phase) with a Bland anti-cycling fallback, and the
//! ratio test is Harris two-pass. Warm starts restore a
//! [`Basis`](crate::Basis) snapshot and let phase 1 repair whatever
//! feasibility the new data broke.

use std::fmt;
use std::time::Instant;

use jcr_ctx::{BudgetExceeded, Counter, ScratchArena, SolverContext};

use crate::basis::{Basis, SnapStatus};
use crate::factor::{Eta, LuFactors};
use crate::model::Model;

/// `Nanos` histogram of per-iteration pivot-loop latency (pricing, ratio
/// test, and basis update for one entering column).
pub const PIVOT_NS: &str = "lp.pivot_ns";
/// `Count` histogram of nonzeros in the ftran result `B⁻¹·A_q` per pivot.
pub const FTRAN_FILL: &str = "lp.ftran_fill";
/// `Count` histogram of nonzeros in the btran result `cbᵀ·B⁻¹` per pivot.
pub const BTRAN_FILL: &str = "lp.btran_fill";
/// `Count` histogram of basis-residual agreement bits
/// (`−log₂ ‖A·x‖∞ / scale`) sampled by the residual monitor.
pub const BASIS_RESIDUAL_BITS: &str = "lp.basis_residual_bits";
/// `Count` histogram of iterative-refinement correction magnitudes
/// (agreement bits of the largest `δ` applied at extraction).
pub const REFINE_DELTA_BITS: &str = "lp.refine_delta_bits";
/// Obs counter: residual-triggered refactorizations performed *before*
/// the periodic [`REFACTOR_EVERY`] cadence was due.
pub const EARLY_REFACTOR: &str = "lp.early_refactor";
/// Obs counter: iterative-refinement rounds applied at extraction.
pub const REFINE_ROUNDS: &str = "lp.refine_rounds";
/// `Count` histogram of total LU fill (stored nonzeros in both
/// triangles) sampled at each refactorization.
pub const LU_FILL: &str = "lp.lu_fill";
/// Obs counter: solves that successfully restored a warm-start basis.
pub const WARM_START: &str = "lp.warm_start";
/// Obs counter: master re-solves that reused a retained simplex (basis,
/// LU factors, and values carried across `add_column`/objective edits) —
/// the column-generation warm path.
pub const WARM_RESOLVE: &str = "lp.warm_resolve";
/// Obs counter: warm-start attempts that fell back to a cold solve
/// (dimension mismatch, invalid statuses, or a singular restored basis).
pub const WARM_FALLBACK: &str = "lp.warm_fallback";

/// Entries with magnitude above the fill tolerance, for the fill
/// histograms (deterministic: pure arithmetic on deterministic state).
fn fill_count(v: &[f64]) -> u64 {
    v.iter().filter(|x| x.abs() > 1e-12).count() as u64
}

/// Feasibility tolerance on variable bounds and row activities.
const FEAS_TOL: f64 = 1e-7;
/// Dual (reduced-cost) tolerance.
const DUAL_TOL: f64 = 1e-7;
/// Smallest pivot magnitude accepted.
const PIVOT_TOL: f64 = 1e-9;
/// Pivots between basis refactorizations.
const REFACTOR_EVERY: usize = 128;
/// Iterations without objective progress before switching to Bland's rule.
const STALL_LIMIT: usize = 200;
/// Pivots between basis-residual probes (the residual costs one pass over
/// the nonzeros, so it is sampled rather than taken every pivot).
const RESIDUAL_CHECK_EVERY: usize = 16;
/// First rung of the residual ladder: a relative basis residual above
/// this triggers an early refactorization instead of waiting for the
/// [`REFACTOR_EVERY`] cadence.
const RESIDUAL_REFRESH: f64 = 1e-8;
/// Last rung of the residual ladder: a relative residual still above this
/// *after* a fresh refactorization means the basis is numerically beyond
/// repair — the solve aborts with [`LpError::NumericalBreakdown`].
const RESIDUAL_FAIL: f64 = 1e-5;
/// Devex weights above this trigger a reference-framework reset (all
/// weights back to one) — the standard growth guard.
const DEVEX_RESET: f64 = 1e12;

/// Eta-file nonzero budget as a function of the basis dimension: when the
/// product-form file outgrows it, the basis is refactorized early even if
/// the pivot cadence is not due (the Bartels–Golub-style fallback).
fn eta_budget(m: usize) -> usize {
    16 * m + 512
}

/// Why an LP could not be solved to optimality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The solver lost too much numerical precision to certify an answer.
    Numerical(String),
    /// A numerical guardrail tripped: the basis residual stayed above the
    /// failure rung of the tolerance ladder after a fresh refactorization,
    /// or the independent certificate verifier rejected the extracted
    /// solution. Unlike [`LpError::Numerical`] (structural failures such
    /// as a singular basis), this is a *detected drift* — callers should
    /// degrade (retry, fall back, keep the incumbent) rather than trust
    /// any value computed so far.
    NumericalBreakdown(String),
    /// A [`SolverContext`] budget (deadline or simplex iteration cap)
    /// tripped mid-solve.
    Budget(BudgetExceeded),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible linear program"),
            LpError::Unbounded => write!(f, "unbounded linear program"),
            LpError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            LpError::NumericalBreakdown(msg) => write!(f, "numerical breakdown: {msg}"),
            LpError::Budget(b) => write!(f, "{b}"),
        }
    }
}

impl std::error::Error for LpError {}

impl From<BudgetExceeded> for LpError {
    fn from(b: BudgetExceeded) -> Self {
        LpError::Budget(b)
    }
}

/// An optimal solution of a [`Model`](crate::Model).
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal values of the structural variables, indexed by `VarId`.
    pub x: Vec<f64>,
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Row duals `y`, in the model's own sense: the reduced cost of a
    /// candidate column with objective coefficient `c` and entries
    /// `(r, a_r)` is `c − Σ_r y[r]·a_r`. For a maximization model a column
    /// *improves* the objective when its reduced cost is positive; for a
    /// minimization model, when it is negative.
    pub duals: Vec<f64>,
    /// Independent verification of this solution (primal feasibility,
    /// dual signs, complementary slackness, duality gap), recomputed with
    /// compensated arithmetic by [`crate::certify`]. Populated by the
    /// [`Model`](crate::Model)-level entry points; a raw
    /// `Simplex::solve_with_context` leaves it empty (vacuously
    /// verified).
    pub certificate: jcr_ctx::cert::Certificate,
}

impl Solution {
    /// Reduced cost of a candidate column under this solution's duals
    /// (in the model's own sense).
    pub fn reduced_cost(&self, obj: f64, column: &[(usize, f64)]) -> f64 {
        obj - column.iter().map(|&(r, a)| self.duals[r] * a).sum::<f64>()
    }

    /// Row activities `A·x` of this solution under the given model — the
    /// left-hand side each ranged row sees, for slack inspection.
    pub fn row_activity(&self, model: &crate::Model) -> Vec<f64> {
        let mut activity = vec![0.0; model.num_rows()];
        for (j, col) in model.columns().enumerate() {
            let xj = self.x[j];
            if xj != 0.0 {
                for &(r, a) in col {
                    activity[r] += a * xj;
                }
            }
        }
        activity
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ColStatus {
    Basic,
    AtLower,
    AtUpper,
    /// Free variable currently pinned at zero.
    FreeZero,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

/// Revised simplex state; reusable across solves for warm starts.
#[derive(Debug)]
pub struct Simplex {
    m: usize,
    n_struct: usize,
    maximize: bool,
    /// Objective in minimization form, per column (structural then slacks).
    c: Vec<f64>,
    lo: Vec<f64>,
    up: Vec<f64>,
    /// Structural columns (sparse); slack columns are implicit `−1` at
    /// their row.
    cols: Vec<Vec<(usize, f64)>>,
    basis: Vec<usize>,
    status: Vec<ColStatus>,
    /// Value of every column (basic values refreshed after each pivot).
    xval: Vec<f64>,
    /// Sparse LU factors of the current basis.
    lu: LuFactors,
    /// Product-form eta file accumulated since the last refactorization.
    etas: Vec<Eta>,
    /// Total nonzeros stored in the eta file (refactorization trigger).
    eta_nnz: usize,
    /// Devex reference weights, one per column; reset at each phase entry.
    devex: Vec<f64>,
    /// Dense m-length buffer reused by the ftran/btran entry points.
    rhs_buf: Vec<f64>,
    pivots_since_refactor: usize,
}

impl Simplex {
    /// Builds the solver state from a model; does not iterate yet.
    pub fn new(model: &Model) -> Self {
        let m = model.num_rows();
        let n = model.num_vars();
        let maximize = matches!(model.sense(), crate::Sense::Maximize);
        let mut c: Vec<f64> = model
            .obj
            .iter()
            .map(|&v| if maximize { -v } else { v })
            .collect();
        c.extend(std::iter::repeat_n(0.0, m));
        let mut lo = model.lower.clone();
        let mut up = model.upper.clone();
        lo.extend_from_slice(&model.row_lower);
        up.extend_from_slice(&model.row_upper);
        let cols = model.cols.clone();

        let mut s = Simplex {
            m,
            n_struct: n,
            maximize,
            c,
            lo,
            up,
            cols,
            basis: Vec::new(),
            status: Vec::new(),
            xval: Vec::new(),
            lu: LuFactors::default(),
            etas: Vec::new(),
            eta_nnz: 0,
            devex: Vec::new(),
            rhs_buf: vec![0.0; m],
            pivots_since_refactor: 0,
        };
        s.reset_cold();
        s
    }

    /// Registers a column added to the model after construction; the column
    /// enters nonbasic at its bound. The LU factors stay valid — the basis
    /// itself is unchanged (only its column *indices* shift), so a
    /// warm-started re-solve pays no refactorization.
    pub fn add_column(&mut self, model: &Model, var: usize) {
        debug_assert_eq!(var, self.n_struct, "columns must be added in order");
        let j_internal = self.n_struct; // new structural index
        let obj = if self.maximize {
            -model.obj[var]
        } else {
            model.obj[var]
        };
        self.c.insert(j_internal, obj);
        self.lo.insert(j_internal, model.lower[var]);
        self.up.insert(j_internal, model.upper[var]);
        self.cols.push(model.cols[var].clone());
        let st = initial_status(model.lower[var], model.upper[var]);
        self.status.insert(j_internal, st);
        let v0 = match st {
            ColStatus::AtLower => model.lower[var],
            ColStatus::AtUpper => model.upper[var],
            _ => 0.0,
        };
        self.xval.insert(j_internal, v0);
        // Slack indices shift by one.
        for b in &mut self.basis {
            if *b >= j_internal {
                *b += 1;
            }
        }
        self.n_struct += 1;
        if v0 != 0.0 {
            // New nonbasic mass changes the basic values.
            self.recompute_basic_values(&ScratchArena::default());
        }
    }

    /// Solves from the current state; `ctx` bounds the pivot loop
    /// ([`jcr_ctx::Phase::Simplex`] iteration cap and deadline) and records
    /// pivot/refactorization counts and phase wall time.
    pub fn solve_with_context(&mut self, ctx: &SolverContext) -> Result<Solution, LpError> {
        let _s = ctx.span("lp.solve");
        let _t = ctx.time(jcr_ctx::Phase::Simplex);
        {
            let _p1 = ctx.span("lp.phase1");
            self.run(Phase::One, ctx)?;
        }
        if self.infeasibility() > FEAS_TOL * 10.0 {
            return Err(LpError::Infeasible);
        }
        {
            let _p2 = ctx.span("lp.phase2");
            self.run(Phase::Two, ctx)?;
        }
        self.refine(ctx);
        Ok(self.extract(ctx.scratch()))
    }

    /// Re-solves after external modifications (e.g. new columns) under an
    /// explicit context.
    pub fn resolve_with_context(
        &mut self,
        model: &Model,
        ctx: &SolverContext,
    ) -> Result<Solution, LpError> {
        // Pick up objective changes on existing columns.
        for j in 0..self.n_struct {
            self.c[j] = if self.maximize {
                -model.obj[j]
            } else {
                model.obj[j]
            };
        }
        self.solve_with_context(ctx)
    }

    // ----- warm starts ----------------------------------------------------

    /// Snapshots the current basis (statuses only — cheap and `Clone`).
    pub fn snapshot_basis(&self) -> Basis {
        Basis {
            n_struct: self.n_struct,
            m: self.m,
            statuses: self
                .status
                .iter()
                .map(|s| match s {
                    ColStatus::Basic => SnapStatus::Basic,
                    ColStatus::AtLower => SnapStatus::AtLower,
                    ColStatus::AtUpper => SnapStatus::AtUpper,
                    ColStatus::FreeZero => SnapStatus::FreeZero,
                })
                .collect(),
        }
    }

    /// Attempts to adopt a [`Basis`] snapshot. Returns `true` when the
    /// snapshot was restored (statuses adopted, basis refactorized,
    /// basic values recomputed — phase 1 then repairs any residual
    /// infeasibility); `false` when the snapshot is incompatible
    /// (dimension mismatch, statuses invalid under the current bounds,
    /// or a singular basic set), in which case the solver is left on a
    /// consistent cold slack basis.
    pub fn try_restore_basis(&mut self, snap: &Basis) -> bool {
        if !snap.matches_dims(self.n_struct, self.m) {
            return false;
        }
        // Validate every status against the *current* bounds before
        // mutating anything: a bound that went infinite-to-finite (or
        // vice versa) invalidates the resting position.
        for (j, s) in snap.statuses.iter().enumerate() {
            let ok = match s {
                SnapStatus::Basic => true,
                SnapStatus::AtLower => self.lo[j].is_finite(),
                SnapStatus::AtUpper => self.up[j].is_finite(),
                SnapStatus::FreeZero => !self.lo[j].is_finite() && !self.up[j].is_finite(),
            };
            if !ok {
                return false;
            }
        }
        self.status = snap
            .statuses
            .iter()
            .map(|s| match s {
                SnapStatus::Basic => ColStatus::Basic,
                SnapStatus::AtLower => ColStatus::AtLower,
                SnapStatus::AtUpper => ColStatus::AtUpper,
                SnapStatus::FreeZero => ColStatus::FreeZero,
            })
            .collect();
        self.basis = (0..self.n_struct + self.m)
            .filter(|&j| self.status[j] == ColStatus::Basic)
            .collect();
        match self.factor_basis() {
            Some(lu) => {
                self.lu = lu;
                self.etas.clear();
                self.eta_nnz = 0;
                self.pivots_since_refactor = 0;
                self.set_nonbasic_values();
                self.recompute_basic_values(&ScratchArena::default());
                true
            }
            None => {
                // Singular under the new coefficients: fall back cold.
                self.reset_cold();
                false
            }
        }
    }

    /// Resets to the cold slack basis (the `Simplex::new` state).
    fn reset_cold(&mut self) {
        let ncols = self.n_struct + self.m;
        self.basis = (0..self.m).map(|r| self.n_struct + r).collect();
        self.status = (0..ncols)
            .map(|j| {
                if j >= self.n_struct {
                    ColStatus::Basic
                } else {
                    initial_status(self.lo[j], self.up[j])
                }
            })
            .collect();
        self.lu = self
            .factor_basis()
            .expect("the slack basis B = -I is always nonsingular");
        self.etas.clear();
        self.eta_nnz = 0;
        self.pivots_since_refactor = 0;
        self.set_nonbasic_values();
        self.recompute_basic_values(&ScratchArena::default());
    }

    // ----- core machinery -------------------------------------------------

    fn slack_of(&self, j: usize) -> Option<usize> {
        (j >= self.n_struct).then(|| j - self.n_struct)
    }

    fn for_col<F: FnMut(usize, f64)>(&self, j: usize, mut f: F) {
        if let Some(r) = self.slack_of(j) {
            f(r, -1.0);
        } else {
            for &(r, v) in &self.cols[j] {
                if v != 0.0 {
                    f(r, v);
                }
            }
        }
    }

    /// Sparse-LU factorization of the current basis columns.
    fn factor_basis(&self) -> Option<LuFactors> {
        LuFactors::factorize(self.m, PIVOT_TOL, |pos, f| {
            self.for_col(self.basis[pos], f);
        })
    }

    /// Applies `B⁻¹` (LU solve plus the eta file) to a row-space vector,
    /// producing basis-position values in `out`.
    fn apply_basis_inverse(&mut self, rhs: &[f64], out: &mut [f64]) {
        debug_assert_eq!(self.lu.dim(), self.m);
        self.lu.ftran(rhs, out);
        for eta in &self.etas {
            eta.apply(out);
        }
    }

    /// `B⁻¹ · A_j`, written into `out` (reused across pivots).
    fn ftran_into(&mut self, j: usize, out: &mut [f64]) {
        let mut rhs = std::mem::take(&mut self.rhs_buf);
        rhs.resize(self.m, 0.0);
        rhs.fill(0.0);
        self.for_col(j, |r, v| rhs[r] += v);
        self.apply_basis_inverse(&rhs, out);
        self.rhs_buf = rhs;
    }

    /// `yᵀ = cbᵀ · B⁻¹` written into `y` (reused across pivots): eta
    /// transposes in reverse order, then the LU btran.
    fn btran_into(&mut self, cb: &[f64], y: &mut [f64]) {
        let mut u = std::mem::take(&mut self.rhs_buf);
        u.resize(self.m, 0.0);
        u.copy_from_slice(&cb[..self.m]);
        for eta in self.etas.iter().rev() {
            eta.apply_transposed(&mut u);
        }
        self.lu.btran(&u, y);
        self.rhs_buf = u;
    }

    fn dot_col(&self, y: &[f64], j: usize) -> f64 {
        let mut acc = 0.0;
        self.for_col(j, |r, v| acc += y[r] * v);
        acc
    }

    fn set_nonbasic_values(&mut self) {
        let ncols = self.n_struct + self.m;
        if self.xval.len() != ncols {
            self.xval = vec![0.0; ncols];
        }
        for j in 0..ncols {
            match self.status[j] {
                ColStatus::AtLower => self.xval[j] = self.lo[j],
                ColStatus::AtUpper => self.xval[j] = self.up[j],
                ColStatus::FreeZero => self.xval[j] = 0.0,
                ColStatus::Basic => {}
            }
        }
    }

    /// Recomputes basic values `x_B = B⁻¹(0 − N·x_N)` from scratch; the
    /// m-length working vectors come from the arena.
    fn recompute_basic_values(&mut self, scratch: &ScratchArena) {
        let m = self.m;
        let ncols = self.n_struct + m;
        let mut rhs = scratch.take_f64(m, 0.0);
        for j in 0..ncols {
            if self.status[j] != ColStatus::Basic {
                let v = self.xval[j];
                if v != 0.0 {
                    self.for_col(j, |r, a| rhs[r] -= a * v);
                }
            }
        }
        let mut xb = scratch.take_f64(m, 0.0);
        self.apply_basis_inverse(&rhs, &mut xb);
        for i in 0..m {
            self.xval[self.basis[i]] = xb[i];
        }
        scratch.put_f64(xb);
        scratch.put_f64(rhs);
    }

    /// Rebuilds the LU factors from the current basis columns and clears
    /// the eta file (the Bartels–Golub-style fallback of the product-form
    /// update scheme).
    fn refactorize(&mut self, scratch: &ScratchArena) -> Result<(), LpError> {
        let lu = self
            .factor_basis()
            .ok_or_else(|| LpError::Numerical("singular basis".into()))?;
        self.lu = lu;
        self.etas.clear();
        self.eta_nnz = 0;
        self.pivots_since_refactor = 0;
        self.set_nonbasic_values();
        self.recompute_basic_values(scratch);
        Ok(())
    }

    fn infeasibility(&self) -> f64 {
        self.basis
            .iter()
            .map(|&j| {
                let v = self.xval[j];
                (self.lo[j] - v).max(0.0) + (v - self.up[j]).max(0.0)
            })
            .sum()
    }

    /// Relative basis residual `‖A·x‖∞ / max(1, ‖x_B‖∞)`: in computational
    /// form every row of `A·x` (structural columns plus `−1` slacks) must
    /// be zero, so any mass left over is drift accumulated by the
    /// eta-file updates. One pass over the nonzeros.
    fn basis_residual(&self, scratch: &ScratchArena) -> f64 {
        let m = self.m;
        if m == 0 {
            return 0.0;
        }
        let mut res = scratch.take_f64(m, 0.0);
        let ncols = self.n_struct + m;
        for j in 0..ncols {
            let v = self.xval[j];
            if v != 0.0 {
                self.for_col(j, |r, a| res[r] += a * v);
            }
        }
        let norm = res.iter().fold(0.0f64, |acc, r| acc.max(r.abs()));
        scratch.put_f64(res);
        let scale = self
            .basis
            .iter()
            .map(|&j| self.xval[j].abs())
            .fold(1.0f64, f64::max);
        norm / scale
    }

    /// The residual tolerance ladder, probed every
    /// [`RESIDUAL_CHECK_EVERY`] pivots and at the refactorization cadence
    /// (pivot count *or* eta-file nonzero budget): a residual above
    /// [`RESIDUAL_REFRESH`] forces an early refactorization; a residual
    /// still above [`RESIDUAL_FAIL`] on fresh factors is a detected
    /// numerical breakdown.
    fn residual_ladder(&mut self, ctx: &SolverContext) -> Result<(), LpError> {
        let periodic_due =
            self.pivots_since_refactor >= REFACTOR_EVERY || self.eta_nnz > eta_budget(self.m);
        let probe_due = periodic_due
            || self
                .pivots_since_refactor
                .is_multiple_of(RESIDUAL_CHECK_EVERY);
        if !probe_due {
            return Ok(());
        }
        let res = self.basis_residual(ctx.scratch());
        ctx.metric_value(BASIS_RESIDUAL_BITS, jcr_ctx::cert::residual_bits(res));
        if !periodic_due && res <= RESIDUAL_REFRESH {
            return Ok(());
        }
        if !periodic_due {
            ctx.obs().add_counter(EARLY_REFACTOR, 1);
        }
        {
            let _s = ctx.span("lp.refactor");
            self.refactorize(ctx.scratch())?;
        }
        ctx.count(Counter::Refactorizations, 1);
        ctx.metric_value(LU_FILL, self.lu.fill() as u64);
        let fresh = self.basis_residual(ctx.scratch());
        if fresh > RESIDUAL_FAIL {
            return Err(LpError::NumericalBreakdown(format!(
                "basis residual {fresh:.3e} exceeds {RESIDUAL_FAIL:.1e} after refactorization"
            )));
        }
        Ok(())
    }

    /// One round of iterative refinement on the basic values: the row
    /// residual `r = 0 − A·x` is accumulated with compensated summation,
    /// the correction `δ = B⁻¹·r` is applied to `x_B`, and the magnitude
    /// of the largest correction is recorded. Runs once at extraction —
    /// cheap (one nonzero pass plus one `B⁻¹` apply) and squeezes the
    /// drift of the final pivot stretch out of the reported solution.
    fn refine(&mut self, ctx: &SolverContext) {
        let m = self.m;
        if m == 0 {
            return;
        }
        let scratch = ctx.scratch();
        let mut r = scratch.take_f64(m, 0.0);
        let mut comp = scratch.take_f64(m, 0.0);
        let ncols = self.n_struct + m;
        for j in 0..ncols {
            let v = self.xval[j];
            if v != 0.0 {
                self.for_col(j, |row, a| {
                    let (s, e) = jcr_ctx::cert::two_sum(r[row], -(a * v));
                    r[row] = s;
                    comp[row] += e;
                });
            }
        }
        for (ri, ci) in r.iter_mut().zip(comp.iter()) {
            *ri += ci;
        }
        let mut delta = scratch.take_f64(m, 0.0);
        self.apply_basis_inverse(&r, &mut delta);
        let mut delta_max = 0.0f64;
        for i in 0..m {
            let d = delta[i];
            if d != 0.0 {
                self.xval[self.basis[i]] += d;
                delta_max = delta_max.max(d.abs());
            }
        }
        scratch.put_f64(delta);
        scratch.put_f64(comp);
        scratch.put_f64(r);
        ctx.obs().add_counter(REFINE_ROUNDS, 1);
        ctx.metric_value(REFINE_DELTA_BITS, jcr_ctx::cert::residual_bits(delta_max));
    }

    /// Phase-specific cost of column `j` (phase 1: zero for nonbasic; the
    /// gradient of basic violations is handled via `cb`).
    fn phase_cost(&self, phase: Phase, j: usize) -> f64 {
        match phase {
            Phase::One => 0.0,
            Phase::Two => self.c[j],
        }
    }

    fn basic_cost_into(&self, phase: Phase, cb: &mut [f64]) {
        for (i, &j) in self.basis.iter().enumerate() {
            cb[i] = match phase {
                Phase::One => {
                    let v = self.xval[j];
                    if v < self.lo[j] - FEAS_TOL {
                        -1.0
                    } else if v > self.up[j] + FEAS_TOL {
                        1.0
                    } else {
                        0.0
                    }
                }
                Phase::Two => self.c[j],
            };
        }
    }

    /// Enumerates ratio-test candidates for an entering move: calls
    /// `f(i, rate, bound, v, to_upper)` for every basis position whose
    /// value blocks the step (phase-1 violated rows chase their violated
    /// bound; otherwise rows block at their finite bound in the direction
    /// of motion). Shared by both passes of the Harris ratio test.
    fn ratio_candidates<F: FnMut(usize, f64, f64, f64, bool)>(
        &self,
        phase: Phase,
        dir: f64,
        alpha: &[f64],
        mut f: F,
    ) {
        for i in 0..self.m {
            let rate = -dir * alpha[i]; // d x_B[i] / dt
            if rate.abs() < PIVOT_TOL {
                continue;
            }
            let k = self.basis[i];
            let v = self.xval[k];
            let below = v < self.lo[k] - FEAS_TOL;
            let above = v > self.up[k] + FEAS_TOL;
            let (bound, to_upper) = if phase == Phase::One && below {
                if rate > 0.0 {
                    (self.lo[k], false) // rising toward its violated lower bound
                } else {
                    continue; // moving further away: gradient constant, no block
                }
            } else if phase == Phase::One && above {
                if rate < 0.0 {
                    (self.up[k], true)
                } else {
                    continue;
                }
            } else if rate > 0.0 {
                if self.up[k].is_finite() {
                    (self.up[k], true)
                } else {
                    continue;
                }
            } else if self.lo[k].is_finite() {
                (self.lo[k], false)
            } else {
                continue;
            };
            f(i, rate, bound, v, to_upper);
        }
    }

    /// One simplex phase. The four m-length work vectors (basic costs,
    /// duals, pivot column, Devex pivot row) come from the context's
    /// scratch arena so thousands of pivots reuse the same allocations.
    fn run(&mut self, phase: Phase, ctx: &SolverContext) -> Result<(), LpError> {
        // Fresh Devex reference framework per phase: every nonbasic
        // column starts at weight one.
        let ncols = self.n_struct + self.m;
        self.devex.clear();
        self.devex.resize(ncols, 1.0);
        let scratch = ctx.scratch();
        let mut cb = scratch.take_f64(self.m, 0.0);
        let mut y = scratch.take_f64(self.m, 0.0);
        let mut alpha = scratch.take_f64(self.m, 0.0);
        let mut rho = scratch.take_f64(self.m, 0.0);
        let out = self.run_inner(phase, ctx, &mut cb, &mut y, &mut alpha, &mut rho);
        scratch.put_f64(rho);
        scratch.put_f64(alpha);
        scratch.put_f64(y);
        scratch.put_f64(cb);
        out
    }

    fn run_inner(
        &mut self,
        phase: Phase,
        ctx: &SolverContext,
        cb: &mut [f64],
        y: &mut [f64],
        alpha: &mut [f64],
        rho: &mut [f64],
    ) -> Result<(), LpError> {
        let ncols = self.n_struct + self.m;
        let max_iter = 200 * (self.m + ncols) + 20_000;
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;

        for _iter in 0..max_iter {
            ctx.check(jcr_ctx::Phase::Simplex)?;
            let iter_t0 = Instant::now();
            if phase == Phase::One && self.infeasibility() <= FEAS_TOL {
                return Ok(());
            }
            self.basic_cost_into(phase, cb);
            if phase == Phase::One && cb.iter().all(|&v| v == 0.0) {
                return Ok(());
            }
            self.btran_into(cb, y);
            ctx.metric_value(BTRAN_FILL, fill_count(y));

            let bland = stall >= STALL_LIMIT;
            // Devex pricing: pick the entering column maximizing
            // `d² / w` over the eligible nonbasic columns (plain Bland
            // smallest-index under the anti-cycling fallback).
            let mut enter: Option<(usize, f64, i8)> = None; // (col, score, dir)
            for j in 0..ncols {
                if self.status[j] == ColStatus::Basic {
                    continue;
                }
                let d = self.phase_cost(phase, j) - self.dot_col(y, j);
                let (eligible, dir) = match self.status[j] {
                    ColStatus::AtLower => (d < -DUAL_TOL, 1i8),
                    ColStatus::AtUpper => (d > DUAL_TOL, -1i8),
                    ColStatus::FreeZero => {
                        if d < -DUAL_TOL {
                            (true, 1i8)
                        } else {
                            (d > DUAL_TOL, -1i8)
                        }
                    }
                    ColStatus::Basic => unreachable!(),
                };
                if eligible {
                    if bland {
                        enter = Some((j, 0.0, dir));
                        break;
                    }
                    let score = d * d / self.devex[j];
                    if enter.is_none_or(|(_, best, _)| score > best) {
                        enter = Some((j, score, dir));
                    }
                }
            }
            let Some((q, _, dir)) = enter else {
                // Phase-1 optimum with residual infeasibility means the LP
                // is infeasible; phase-2 optimum means done.
                return Ok(());
            };
            let dir = dir as f64;

            self.ftran_into(q, alpha);
            ctx.metric_value(FTRAN_FILL, fill_count(alpha));
            // Harris two-pass ratio test. Pass 1: the largest step
            // admissible when every blocking bound is relaxed by half the
            // feasibility tolerance. Pass 2: among rows whose *exact*
            // ratio fits under that relaxed step, the largest pivot
            // magnitude wins (smallest basis index under Bland) — on
            // degenerate ties this trades a bounded, tolerance-absorbed
            // overshoot for a far better-conditioned basis update.
            let expand = FEAS_TOL * 0.5;
            let mut t_relaxed = f64::INFINITY;
            self.ratio_candidates(phase, dir, alpha, |_i, rate, bound, v, _to_upper| {
                let t = ((bound - v) / rate).max(0.0) + expand / rate.abs();
                if t < t_relaxed {
                    t_relaxed = t;
                }
            });
            let mut t_best = f64::INFINITY;
            let mut leave: Option<usize> = None; // basis position
            let mut leave_to_upper = false;
            let mut best_mag = 0.0f64;
            self.ratio_candidates(phase, dir, alpha, |i, rate, bound, v, to_upper| {
                let t = ((bound - v) / rate).max(0.0);
                if t > t_relaxed {
                    return;
                }
                // `|rate| == |alpha[i]|` (dir is ±1), so the pivot
                // magnitude comes along for free.
                let better = match leave {
                    None => true,
                    Some(cur) => {
                        if bland {
                            self.basis[i] < self.basis[cur]
                        } else {
                            rate.abs() > best_mag
                        }
                    }
                };
                if better {
                    t_best = t;
                    leave = Some(i);
                    leave_to_upper = to_upper;
                    best_mag = rate.abs();
                }
            });
            // Entering variable's own opposite bound (bound flip).
            let span = self.up[q] - self.lo[q];
            let t_flip = if span.is_finite() && self.status[q] != ColStatus::FreeZero {
                span
            } else {
                f64::INFINITY
            };

            if t_flip < t_best - 1e-12 {
                // Bound flip: no basis change.
                let t = t_flip;
                for i in 0..self.m {
                    let k = self.basis[i];
                    self.xval[k] += -dir * alpha[i] * t;
                }
                self.status[q] = if dir > 0.0 {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                self.xval[q] = if dir > 0.0 { self.up[q] } else { self.lo[q] };
            } else {
                let Some(r) = leave else {
                    if phase == Phase::Two {
                        return Err(LpError::Unbounded);
                    }
                    return Err(LpError::Numerical(
                        "unbounded infeasibility direction".into(),
                    ));
                };
                if alpha[r].abs() < PIVOT_TOL {
                    return Err(LpError::Numerical("tiny pivot".into()));
                }

                // Devex reference-framework update (Forrest–Goldfarb):
                // the pivot row `α_r· = eᵣᵀB⁻¹N` prices every nonbasic
                // weight against the entering column's weight. `cb` is
                // recomputed next iteration, so it doubles as the unit
                // vector here.
                let arq = alpha[r];
                let wq = self.devex[q];
                let mut w_overflow = false;
                if !bland {
                    cb.fill(0.0);
                    cb[r] = 1.0;
                    self.btran_into(cb, rho);
                    for j in 0..ncols {
                        if self.status[j] == ColStatus::Basic || j == q {
                            continue;
                        }
                        let arj = self.dot_col(rho, j);
                        if arj != 0.0 {
                            let ratio = arj / arq;
                            let cand = ratio * ratio * wq;
                            if cand > self.devex[j] {
                                self.devex[j] = cand;
                                w_overflow |= cand > DEVEX_RESET;
                            }
                        }
                    }
                }

                let t = t_best;
                // Move all basics, set entering value, swap basis.
                for i in 0..self.m {
                    let k = self.basis[i];
                    self.xval[k] += -dir * alpha[i] * t;
                }
                let old = self.basis[r];
                self.status[old] = if leave_to_upper {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                self.xval[old] = if leave_to_upper {
                    self.up[old]
                } else {
                    self.lo[old]
                };
                let enter_val = self.xval[q] + dir * t;
                self.basis[r] = q;
                self.status[q] = ColStatus::Basic;
                self.xval[q] = enter_val;
                self.devex[old] = (wq / (arq * arq)).max(1.0);
                if w_overflow || self.devex[old] > DEVEX_RESET {
                    // Framework grew stale: start a fresh reference set.
                    self.devex.iter_mut().for_each(|w| *w = 1.0);
                }
                // Update the factorization: append the product-form eta
                // for this pivot (O(nnz(α)) — no dense m² update).
                let mut entries = Vec::new();
                for (i, &a) in alpha.iter().enumerate() {
                    if i != r && a != 0.0 {
                        entries.push((i, a));
                    }
                }
                let eta = Eta {
                    r,
                    pivot: arq,
                    entries,
                };
                self.eta_nnz += eta.nnz();
                self.etas.push(eta);
                ctx.count(Counter::SimplexPivots, 1);
                self.pivots_since_refactor += 1;
                self.residual_ladder(ctx)?;
            }

            // Stall tracking for anti-cycling.
            let obj = match phase {
                Phase::One => self.infeasibility(),
                Phase::Two => self
                    .basis
                    .iter()
                    .map(|&j| self.c[j] * self.xval[j])
                    .sum::<f64>(),
            };
            if obj < last_obj - 1e-10 {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
            ctx.metric_nanos(
                PIVOT_NS,
                iter_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        Err(LpError::Numerical("iteration limit exceeded".into()))
    }

    fn extract(&mut self, scratch: &ScratchArena) -> Solution {
        let x: Vec<f64> = (0..self.n_struct).map(|j| self.xval[j]).collect();
        let obj_min: f64 = (0..self.n_struct).map(|j| self.c[j] * self.xval[j]).sum();
        let mut cb = scratch.take_f64(self.m, 0.0);
        self.basic_cost_into(Phase::Two, &mut cb);
        let mut y = vec![0.0; self.m];
        self.btran_into(&cb, &mut y);
        scratch.put_f64(cb);
        let (objective, duals) = if self.maximize {
            (-obj_min, y.iter().map(|v| -v).collect())
        } else {
            (obj_min, y)
        };
        Solution {
            x,
            objective,
            duals,
            certificate: jcr_ctx::cert::Certificate::new("lp"),
        }
    }
}

fn initial_status(lo: f64, up: f64) -> ColStatus {
    if lo.is_finite() {
        ColStatus::AtLower
    } else if up.is_finite() {
        ColStatus::AtUpper
    } else {
        ColStatus::FreeZero
    }
}

#[cfg(test)]
mod tests {
    use crate::{LpError, Model, Sense};

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_max() {
        // max 3x + 2y s.t. x + y ≤ 4, x ≤ 2, y ≤ 3, x,y ≥ 0 → x=2,y=2, obj 10.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 2.0, 3.0);
        let y = m.add_var(0.0, 3.0, 2.0);
        m.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
        let s = m.solve().unwrap();
        assert_near(s.objective, 10.0);
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 2.0);
    }

    #[test]
    fn simple_min_with_equality() {
        // min 2x + 3y s.t. x + y = 5, x ≤ 3, y ≤ 4 → x=3,y=2, obj 12.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 3.0, 2.0);
        let y = m.add_var(0.0, 4.0, 3.0);
        m.add_row(5.0, 5.0, &[(x, 1.0), (y, 1.0)]);
        let s = m.solve().unwrap();
        assert_near(s.objective, 12.0);
        assert_near(s.x[0], 3.0);
        assert_near(s.x[1], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_row(2.0, 3.0, &[(x, 1.0)]);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 0.0);
        // x - y ≤ 1 does not bound x when y can grow.
        m.add_row(f64::NEG_INFINITY, 1.0, &[(x, 1.0), (y, -1.0)]);
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_variable() {
        // min x s.t. x ≥ -7 via row, x free → x = -7.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_row(-7.0, f64::INFINITY, &[(x, 1.0)]);
        let s = m.solve().unwrap();
        assert_near(s.x[0], -7.0);
    }

    #[test]
    fn ranged_row_binds_correct_side() {
        // max x s.t. 1 ≤ x ≤ 6 via row, 0 ≤ x ≤ 10.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_row(1.0, 6.0, &[(x, 1.0)]);
        let s = m.solve().unwrap();
        assert_near(s.x[0], 6.0);
        // And minimizing binds the lower side.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_row(1.0, 6.0, &[(x, 1.0)]);
        let s = m.solve().unwrap();
        assert_near(s.x[0], 1.0);
    }

    #[test]
    fn degenerate_transportation() {
        // Classic transportation LP with ties.
        // min Σ c_ij x_ij, rows: supplies = [10, 10], demands = [10, 10].
        let mut m = Model::new(Sense::Minimize);
        let c = [[1.0, 2.0], [3.0, 1.0]];
        let mut vars = [[None; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                vars[i][j] = Some(m.add_var(0.0, f64::INFINITY, c[i][j]));
            }
        }
        for i in 0..2 {
            m.add_row(
                10.0,
                10.0,
                &[(vars[i][0].unwrap(), 1.0), (vars[i][1].unwrap(), 1.0)],
            );
        }
        for j in 0..2 {
            m.add_row(
                10.0,
                10.0,
                &[(vars[0][j].unwrap(), 1.0), (vars[1][j].unwrap(), 1.0)],
            );
        }
        let s = m.solve().unwrap();
        assert_near(s.objective, 20.0);
    }

    #[test]
    fn duals_price_columns_correctly_min() {
        // min 2x s.t. x = 1 → dual on the row is 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 2.0);
        m.add_row(1.0, 1.0, &[(x, 1.0)]);
        let s = m.solve().unwrap();
        assert_near(s.duals[0], 2.0);
        // A column with cost 1 on the same row has negative reduced cost.
        assert!(s.reduced_cost(1.0, &[(0, 1.0)]) < 0.0);
        // A column with cost 3 does not improve.
        assert!(s.reduced_cost(3.0, &[(0, 1.0)]) > 0.0);
    }

    #[test]
    fn warm_start_column_generation() {
        // min 5a s.t. a + b = 2 with b added later at cost 1.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var(0.0, f64::INFINITY, 5.0);
        let row = m.add_row(2.0, 2.0, &[(a, 1.0)]);
        let mut solver = m.into_solver();
        let s1 = solver.solve().unwrap();
        assert_near(s1.objective, 10.0);
        solver.add_column(0.0, f64::INFINITY, 1.0, &[(row, 1.0)]);
        let s2 = solver.solve().unwrap();
        assert_near(s2.objective, 2.0);
        assert_near(s2.x[1], 2.0);
    }

    #[test]
    fn zero_rows_model() {
        // Pure box: max x + y with x ∈ [0, 3], y ∈ [-1, 2].
        let mut m = Model::new(Sense::Maximize);
        m.add_var(0.0, 3.0, 1.0);
        m.add_var(-1.0, 2.0, 1.0);
        let s = m.solve().unwrap();
        assert_near(s.objective, 5.0);
    }

    #[test]
    fn negative_bounds() {
        // min x + y s.t. x + y ≥ -4, x ∈ [-3, 0], y ∈ [-3, 0] → obj = -4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(-3.0, 0.0, 1.0);
        let y = m.add_var(-3.0, 0.0, 1.0);
        m.add_row(-4.0, f64::INFINITY, &[(x, 1.0), (y, 1.0)]);
        let s = m.solve().unwrap();
        assert_near(s.objective, -4.0);
    }

    #[test]
    fn medium_random_lp_is_feasible_and_not_worse_than_samples() {
        use jcr_ctx::rng::{Rng, SeedableRng};
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(7);
        for _case in 0..20 {
            let n = rng.gen_range(3..10);
            let rows = rng.gen_range(1..8);
            let mut m = Model::new(Sense::Minimize);
            let vars: Vec<_> = (0..n)
                .map(|_| m.add_var(0.0, rng.gen_range(0.5..4.0), rng.gen_range(-2.0..3.0)))
                .collect();
            // Rows of the form Σ a x ≤ U with a ≥ 0, always feasible at x = 0.
            for _ in 0..rows {
                let entries: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.0..2.0))).collect();
                m.add_row(f64::NEG_INFINITY, rng.gen_range(1.0..6.0), &entries);
            }
            let s = m.solve().unwrap();
            assert!(m.is_feasible(&s.x, 1e-6));
            // Sample random feasible points; none may beat the optimum.
            for _ in 0..50 {
                let mut x: Vec<f64> = (0..n)
                    .map(|j| rng.gen_range(0.0..1.0) * m.upper[j])
                    .collect();
                // Scale down until feasible.
                while !m.is_feasible(&x, 1e-9) {
                    for v in &mut x {
                        *v *= 0.5;
                    }
                }
                assert!(m.objective_value(&x) >= s.objective - 1e-6);
            }
        }
    }

    #[test]
    fn warm_restart_reaches_same_objective_with_fewer_pivots() {
        use jcr_ctx::rng::{Rng, SeedableRng};
        use jcr_ctx::{Counter, SolverContext};
        // A dense-ish LP solved cold, snapshotted, then re-solved from
        // the snapshot after a small objective perturbation: the warm
        // solve must agree on the perturbed optimum and pivot less.
        let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(99);
        let n = 24;
        let rows = 14;
        let build = |perturb: f64| {
            let mut rng = jcr_ctx::rng::StdRng::seed_from_u64(99);
            let mut m = Model::new(Sense::Minimize);
            let vars: Vec<_> = (0..n)
                .map(|_| {
                    m.add_var(
                        0.0,
                        rng.gen_range(0.5..4.0),
                        rng.gen_range(-2.0..3.0) + perturb,
                    )
                })
                .collect();
            for _ in 0..rows {
                let entries: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.0..2.0))).collect();
                m.add_row(f64::NEG_INFINITY, rng.gen_range(1.0..6.0), &entries);
            }
            m
        };
        let _ = &mut rng;

        let ctx_cold = SolverContext::new();
        let mut cold = build(1e-3).into_solver();
        let cold_sol = cold.solve_with_context(&ctx_cold).unwrap();
        let cold_pivots = ctx_cold.stats().counter(Counter::SimplexPivots);

        // Solve the unperturbed LP, snapshot, warm start the perturbed one.
        let mut base = build(0.0).into_solver();
        base.solve().unwrap();
        let snap = base.basis().expect("solved at least once");

        let ctx_warm = SolverContext::new();
        let mut warm = build(1e-3).into_solver();
        let warm_sol = warm.solve_from_basis(&snap, &ctx_warm).unwrap();
        let warm_pivots = ctx_warm.stats().counter(Counter::SimplexPivots);

        assert_near(warm_sol.objective, cold_sol.objective);
        assert!(
            warm_pivots <= cold_pivots,
            "warm start pivoted more ({warm_pivots}) than cold ({cold_pivots})"
        );
    }

    #[test]
    fn incompatible_basis_falls_back_cold() {
        // Snapshot from a 2-var model restored against a 3-var model:
        // dimension gate rejects it, solve still succeeds cold.
        let mut m2 = Model::new(Sense::Minimize);
        let x = m2.add_var(0.0, 2.0, 1.0);
        m2.add_row(1.0, 1.0, &[(x, 1.0)]);
        let mut s2 = m2.into_solver();
        s2.solve().unwrap();
        let snap = s2.basis().unwrap();

        let mut m3 = Model::new(Sense::Minimize);
        let a = m3.add_var(0.0, 2.0, 1.0);
        let b = m3.add_var(0.0, 2.0, 3.0);
        m3.add_row(1.0, 1.0, &[(a, 1.0), (b, 1.0)]);
        let mut s3 = m3.into_solver();
        let sol = s3
            .solve_from_basis(&snap, &jcr_ctx::SolverContext::new())
            .unwrap();
        assert_near(sol.objective, 1.0);
    }
}
