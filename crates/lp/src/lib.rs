//! A self-contained linear-programming solver.
//!
//! The joint caching and routing stack solves several families of LPs — the
//! concave-relaxation placement LPs of Algorithm 1 and the alternating
//! optimization, and the path-based masters of the column-generation
//! multicommodity flow solver — so this crate implements a **revised
//! simplex** method from scratch with the features those callers need:
//!
//! * **bounded variables** (`l ≤ x ≤ u`, either side may be infinite), so
//!   box constraints cost nothing;
//! * **ranged rows** (`L ≤ aᵀx ≤ U`, equalities as `L == U`), handled via
//!   bounded slacks;
//! * a **phase-1 infeasibility minimization** start (no big-M constants);
//! * a **sparse LU basis factorization** with threshold partial pivoting,
//!   product-form eta updates between refactorizations, and sparse
//!   ftran/btran;
//! * **Devex pricing** with a Bland anti-cycling fallback;
//! * **duals and reduced costs**, **incremental column addition**, and
//!   **warm starts from a saved [`Basis`]** — the primitives column
//!   generation and repeated re-solves need.
//!
//! # Examples
//!
//! ```
//! use jcr_lp::{Model, Sense};
//!
//! // max 3x + 2y  s.t.  x + y ≤ 4,  0 ≤ x ≤ 2,  0 ≤ y ≤ 3
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var(0.0, 2.0, 3.0);
//! let y = m.add_var(0.0, 3.0, 2.0);
//! m.add_row(f64::NEG_INFINITY, 4.0, &[(x, 1.0), (y, 1.0)]);
//! let sol = m.solve().expect("bounded and feasible");
//! assert!((sol.objective - 10.0).abs() < 1e-7); // x = 2, y = 2
//! ```

// Numerical kernels index several parallel arrays in lock-step; iterator
// chains would obscure the linear-algebra structure.
#![allow(clippy::needless_range_loop)]

mod basis;
pub mod certify;
mod factor;
mod model;
pub mod presolve;
mod simplex;

pub use basis::Basis;
pub use model::{ConId, Model, ModelSolver, Sense, VarId};
pub use simplex::{LpError, Solution};
