//! Structured stress tests for the simplex solver: problem families with
//! independently computable optima (assignment, max-flow duality,
//! knapsack relaxations) and degeneracy-prone constructions.

use jcr_lp::{Model, Sense};

fn assert_near(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
}

/// n×n assignment LP; its optimum equals the best permutation (total
/// unimodularity), which we brute-force for small n.
#[test]
fn assignment_lp_matches_brute_force() {
    let n = 5;
    // Deterministic pseudo-random cost matrix.
    let cost = |i: usize, j: usize| ((i * 31 + j * 17 + i * j * 7) % 23) as f64 + 1.0;

    let mut m = Model::new(Sense::Minimize);
    let mut vars = vec![Vec::new(); n];
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            row.push(m.add_var(0.0, 1.0, cost(i, j)));
        }
    }
    for row in vars.iter().take(n) {
        let entries: Vec<_> = (0..n).map(|j| (row[j], 1.0)).collect();
        m.add_row(1.0, 1.0, &entries);
    }
    for j in 0..n {
        let entries: Vec<_> = vars.iter().take(n).map(|row| (row[j], 1.0)).collect();
        m.add_row(1.0, 1.0, &entries);
    }
    let lp = m.solve().unwrap();

    // Brute force over permutations.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut perm, 0, &mut |p| {
        let total: f64 = p.iter().enumerate().map(|(i, &j)| cost(i, j)).sum();
        if total < best {
            best = total;
        }
    });
    assert_near(lp.objective, best, 1e-6);
    // Total unimodularity: the LP solution is integral.
    for row in &vars {
        for &v in row {
            let x = lp.x[v.index()];
            assert!(
                !(1e-6..=1.0 - 1e-6).contains(&x),
                "fractional assignment {x}"
            );
        }
    }
}

fn permute(p: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == p.len() {
        f(p);
        return;
    }
    for i in k..p.len() {
        p.swap(k, i);
        permute(p, k + 1, f);
        p.swap(k, i);
    }
}

/// Max-flow as an LP agrees with Dinic (weak duality exercised through a
/// completely different algorithm in another crate is covered elsewhere;
/// here we check a hand-computed cut).
#[test]
fn max_flow_lp_hits_the_cut() {
    // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (1): max flow 5.
    let arcs = [
        (0usize, 1usize, 3.0),
        (0, 2, 2.0),
        (1, 3, 2.0),
        (2, 3, 3.0),
        (1, 2, 1.0),
    ];
    let mut m = Model::new(Sense::Maximize);
    let f: Vec<_> = arcs
        .iter()
        .map(|&(_, _, c)| m.add_var(0.0, c, 0.0))
        .collect();
    let value = m.add_var(0.0, f64::INFINITY, 1.0);
    // Conservation at interior nodes 1, 2; source emits `value`.
    for node in [1usize, 2] {
        let mut entries = Vec::new();
        for (k, &(u, v, _)) in arcs.iter().enumerate() {
            if u == node {
                entries.push((f[k], 1.0));
            }
            if v == node {
                entries.push((f[k], -1.0));
            }
        }
        m.add_row(0.0, 0.0, &entries);
    }
    let mut out_of_source = Vec::new();
    for (k, &(u, _, _)) in arcs.iter().enumerate() {
        if u == 0 {
            out_of_source.push((f[k], 1.0));
        }
    }
    out_of_source.push((value, -1.0));
    m.add_row(0.0, 0.0, &out_of_source);
    let lp = m.solve().unwrap();
    assert_near(lp.objective, 5.0, 1e-7);
}

/// Heavily degenerate LP: many redundant copies of the same constraint
/// must not cycle.
#[test]
fn redundant_constraints_do_not_cycle() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    let y = m.add_var(0.0, f64::INFINITY, 1.0);
    for _ in 0..40 {
        m.add_row(f64::NEG_INFINITY, 10.0, &[(x, 1.0), (y, 1.0)]);
    }
    for _ in 0..40 {
        m.add_row(f64::NEG_INFINITY, 10.0, &[(x, 2.0), (y, 2.0)]);
    }
    let lp = m.solve().unwrap();
    assert_near(lp.objective, 5.0, 1e-6); // 2x + 2y ≤ 10 binds
}

/// Fractional-knapsack LP: the optimum fills items by value density.
#[test]
fn knapsack_relaxation_fills_by_density() {
    // (value, weight): densities 5, 3, 2, 1.
    let items = [(10.0, 2.0), (9.0, 3.0), (8.0, 4.0), (4.0, 4.0)];
    let budget = 7.0;
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = items.iter().map(|&(v, _)| m.add_var(0.0, 1.0, v)).collect();
    let entries: Vec<_> = vars
        .iter()
        .zip(&items)
        .map(|(&x, &(_, w))| (x, w))
        .collect();
    m.add_row(f64::NEG_INFINITY, budget, &entries);
    let lp = m.solve().unwrap();
    // Take items 1 and 2 fully (weight 5), half of item 3 → 10 + 9 + 4 = 23.
    assert_near(lp.objective, 23.0, 1e-6);
    assert_near(lp.x[vars[0].index()], 1.0, 1e-6);
    assert_near(lp.x[vars[1].index()], 1.0, 1e-6);
    assert_near(lp.x[vars[2].index()], 0.5, 1e-6);
    assert_near(lp.x[vars[3].index()], 0.0, 1e-6);
}

/// A chain of equalities forcing long pivoting sequences.
#[test]
fn equality_chain() {
    let n = 60;
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(0.0, 10.0, (i % 3) as f64))
        .collect();
    // x_0 = 1; x_{i+1} = x_i.
    m.add_row(1.0, 1.0, &[(vars[0], 1.0)]);
    for i in 0..n - 1 {
        m.add_row(0.0, 0.0, &[(vars[i], 1.0), (vars[i + 1], -1.0)]);
    }
    let lp = m.solve().unwrap();
    for &v in &vars {
        assert_near(lp.x[v.index()], 1.0, 1e-6);
    }
    let expect: f64 = (0..n).map(|i| (i % 3) as f64).sum();
    assert_near(lp.objective, expect, 1e-6);
}

/// Bounds tighter than rows; the optimum sits on variable bounds.
#[test]
fn variable_bounds_dominate() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(1.0, 2.0, 5.0);
    let y = m.add_var(-1.0, 0.5, -3.0);
    m.add_row(f64::NEG_INFINITY, 100.0, &[(x, 1.0), (y, 1.0)]);
    let lp = m.solve().unwrap();
    assert_near(lp.x[x.index()], 2.0, 1e-9);
    assert_near(lp.x[y.index()], -1.0, 1e-9);
    assert_near(lp.objective, 13.0, 1e-9);
}

/// Warm-started column generation over many rounds stays consistent with
/// cold solves of the final model (a long-horizon version of the unit
/// test, mimicking the MMSFP master's usage pattern).
#[test]
fn long_column_generation_session() {
    let mut m = Model::new(Sense::Minimize);
    let a = m.add_var(0.0, f64::INFINITY, 100.0);
    let demand_rows: Vec<_> = (0..5).map(|_| m.add_row(1.0, 1.0, &[(a, 1.0)])).collect();
    let cap_row = m.add_row(f64::NEG_INFINITY, 3.0, &[]);
    let mut cold = m.clone();
    let mut solver = m.into_solver();
    solver.solve().unwrap();
    // Price in 25 columns of decreasing cost across the demand rows.
    let mut k = 0usize;
    for round in 0..5 {
        for (r, &row) in demand_rows.iter().enumerate() {
            let obj = 50.0 - (round * 5 + r) as f64;
            let column = vec![(row, 1.0), (cap_row, 1.0)];
            solver.add_column(0.0, f64::INFINITY, obj, &column);
            let v = cold.add_var_with_column(0.0, f64::INFINITY, obj, &column);
            assert_eq!(v.index(), solver.model().num_vars() - 1);
            k += 1;
        }
        let warm = solver.solve().unwrap();
        let cold_sol = cold.solve().unwrap();
        assert_near(warm.objective, cold_sol.objective, 1e-6);
    }
    assert_eq!(k, 25);
}
