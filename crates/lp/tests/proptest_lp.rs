//! Property-based tests for the simplex solver: feasibility, optimality
//! certificates, and warm-start consistency on random LPs.

use proptest::prelude::*;

use jcr_lp::{Model, Sense};

/// A random minimization LP that is always feasible at x = 0: variables in
/// [0, u], rows Σ a x ≤ U with a ≥ 0, plus optional ≥ rows that 0 also
/// satisfies (lower bound ≤ 0).
#[derive(Debug, Clone)]
struct RandomLp {
    upper: Vec<f64>,
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..8).prop_flat_map(|n| {
        let upper = proptest::collection::vec(0.2f64..5.0, n..=n);
        let obj = proptest::collection::vec(-3.0f64..3.0, n..=n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(0.0f64..2.0, n..=n), 0.5f64..8.0),
            0..6,
        );
        (upper, obj, rows).prop_map(|(upper, obj, rows)| RandomLp { upper, obj, rows })
    })
}

fn build(lp: &RandomLp) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = lp
        .upper
        .iter()
        .zip(&lp.obj)
        .map(|(&u, &c)| m.add_var(0.0, u, c))
        .collect();
    for (coefs, ub) in &lp.rows {
        let entries: Vec<_> = vars.iter().copied().zip(coefs.iter().copied()).collect();
        m.add_row(f64::NEG_INFINITY, *ub, &entries);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solution is feasible and no sampled feasible point beats it.
    #[test]
    fn optimal_beats_sampled_points(lp in random_lp(), samples in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 8), 20)) {
        let m = build(&lp);
        let sol = m.solve().expect("always feasible at 0");
        prop_assert!(m.is_feasible(&sol.x, 1e-6));
        for s in samples {
            // Scale the sample into the box, then shrink until feasible.
            let mut x: Vec<f64> = lp.upper.iter().enumerate()
                .map(|(j, &u)| s.get(j).copied().unwrap_or(0.0) * u)
                .collect();
            let mut guard = 0;
            while !m.is_feasible(&x, 1e-9) {
                for v in &mut x { *v *= 0.5; }
                guard += 1;
                if guard > 60 { break; }
            }
            if m.is_feasible(&x, 1e-9) {
                prop_assert!(m.objective_value(&x) >= sol.objective - 1e-6,
                    "sampled point beats 'optimal': {} < {}", m.objective_value(&x), sol.objective);
            }
        }
    }

    /// Maximization is consistent with minimizing the negated objective.
    #[test]
    fn max_equals_negated_min(lp in random_lp()) {
        let min_model = build(&lp);
        let min_sol = min_model.solve().unwrap();
        let mut max_model = Model::new(Sense::Maximize);
        let vars: Vec<_> = lp.upper.iter().zip(&lp.obj)
            .map(|(&u, &c)| max_model.add_var(0.0, u, -c))
            .collect();
        for (coefs, ub) in &lp.rows {
            let entries: Vec<_> = vars.iter().copied().zip(coefs.iter().copied()).collect();
            max_model.add_row(f64::NEG_INFINITY, *ub, &entries);
        }
        let max_sol = max_model.solve().unwrap();
        prop_assert!((max_sol.objective + min_sol.objective).abs() < 1e-6,
            "max {} vs -min {}", max_sol.objective, -min_sol.objective);
    }

    /// Adding a column and re-solving warm equals solving the extended
    /// model cold.
    #[test]
    fn warm_start_matches_cold_solve(lp in random_lp(), extra_obj in -3.0f64..3.0, extra_coef in 0.0f64..2.0) {
        let m = build(&lp);
        let mut solver = m.clone().into_solver();
        let _ = solver.solve().unwrap();
        let column: Vec<_> = (0..lp.rows.len()).map(|r| (jcr_lp::ConId::from_index(r), extra_coef)).collect();
        solver.add_column(0.0, 2.0, extra_obj, &column);
        let warm = solver.solve().unwrap();

        let mut cold = build(&lp);
        let v = cold.add_var(0.0, 2.0, extra_obj);
        for r in 0..lp.rows.len() {
            cold.set_coeff(jcr_lp::ConId::from_index(r), v, extra_coef);
        }
        let cold_sol = cold.solve().unwrap();
        prop_assert!((warm.objective - cold_sol.objective).abs() < 1e-6,
            "warm {} vs cold {}", warm.objective, cold_sol.objective);
    }

    /// Duals price the columns consistently: at optimality no nonbasic
    /// column at its lower bound has a negative reduced cost.
    #[test]
    fn reduced_costs_certify_optimality(lp in random_lp()) {
        let m = build(&lp);
        let sol = m.solve().unwrap();
        for j in 0..lp.upper.len() {
            // Column entries of variable j.
            let column: Vec<(usize, f64)> = lp.rows.iter().enumerate()
                .map(|(r, (coefs, _))| (r, coefs[j]))
                .collect();
            let rc = sol.reduced_cost(lp.obj[j], &column);
            let at_lower = sol.x[j] < 1e-7;
            let at_upper = sol.x[j] > lp.upper[j] - 1e-7;
            if at_lower && !at_upper {
                prop_assert!(rc >= -1e-5, "var {j} at lower with rc {rc}");
            } else if at_upper && !at_lower {
                prop_assert!(rc <= 1e-5, "var {j} at upper with rc {rc}");
            }
        }
    }
}
