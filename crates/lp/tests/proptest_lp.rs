//! Randomized property tests for the simplex solver: feasibility,
//! optimality certificates, and warm-start consistency on random LPs
//! drawn from the in-tree seeded PRNG (same cases every run).

use jcr_ctx::rng::{Rng, SeedableRng, StdRng};
use jcr_lp::{Model, Sense};

const CASES: u64 = 64;

/// A random minimization LP that is always feasible at x = 0: variables in
/// [0, u], rows Σ a x ≤ U with a ≥ 0, plus optional ≥ rows that 0 also
/// satisfies (lower bound ≤ 0).
#[derive(Debug, Clone)]
struct RandomLp {
    upper: Vec<f64>,
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn random_lp(rng: &mut StdRng) -> RandomLp {
    let n = rng.gen_range(2..8usize);
    let upper = (0..n).map(|_| rng.gen_range(0.2..5.0)).collect();
    let obj = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let n_rows = rng.gen_range(0..6usize);
    let rows = (0..n_rows)
        .map(|_| {
            let coefs = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
            (coefs, rng.gen_range(0.5..8.0))
        })
        .collect();
    RandomLp { upper, obj, rows }
}

fn build(lp: &RandomLp) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = lp
        .upper
        .iter()
        .zip(&lp.obj)
        .map(|(&u, &c)| m.add_var(0.0, u, c))
        .collect();
    for (coefs, ub) in &lp.rows {
        let entries: Vec<_> = vars.iter().copied().zip(coefs.iter().copied()).collect();
        m.add_row(f64::NEG_INFINITY, *ub, &entries);
    }
    m
}

/// The solution is feasible and no sampled feasible point beats it.
#[test]
fn optimal_beats_sampled_points() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6c70_3031 + case);
        let lp = random_lp(&mut rng);
        let m = build(&lp);
        let sol = m.solve().expect("always feasible at 0");
        assert!(m.is_feasible(&sol.x, 1e-6));
        for _ in 0..20 {
            // Scale a random box sample, then shrink until feasible.
            let mut x: Vec<f64> = lp
                .upper
                .iter()
                .map(|&u| rng.gen_range(0.0..1.0) * u)
                .collect();
            let mut guard = 0;
            while !m.is_feasible(&x, 1e-9) {
                for v in &mut x {
                    *v *= 0.5;
                }
                guard += 1;
                if guard > 60 {
                    break;
                }
            }
            if m.is_feasible(&x, 1e-9) {
                assert!(
                    m.objective_value(&x) >= sol.objective - 1e-6,
                    "case {case}: sampled point beats 'optimal': {} < {}",
                    m.objective_value(&x),
                    sol.objective
                );
            }
        }
    }
}

/// Maximization is consistent with minimizing the negated objective.
#[test]
fn max_equals_negated_min() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6c70_3032 + case);
        let lp = random_lp(&mut rng);
        let min_model = build(&lp);
        let min_sol = min_model.solve().unwrap();
        let mut max_model = Model::new(Sense::Maximize);
        let vars: Vec<_> = lp
            .upper
            .iter()
            .zip(&lp.obj)
            .map(|(&u, &c)| max_model.add_var(0.0, u, -c))
            .collect();
        for (coefs, ub) in &lp.rows {
            let entries: Vec<_> = vars.iter().copied().zip(coefs.iter().copied()).collect();
            max_model.add_row(f64::NEG_INFINITY, *ub, &entries);
        }
        let max_sol = max_model.solve().unwrap();
        assert!(
            (max_sol.objective + min_sol.objective).abs() < 1e-6,
            "case {case}: max {} vs -min {}",
            max_sol.objective,
            -min_sol.objective
        );
    }
}

/// Adding a column and re-solving warm equals solving the extended
/// model cold.
#[test]
fn warm_start_matches_cold_solve() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6c70_3033 + case);
        let lp = random_lp(&mut rng);
        let extra_obj = rng.gen_range(-3.0..3.0);
        let extra_coef = rng.gen_range(0.0..2.0);
        let m = build(&lp);
        let mut solver = m.clone().into_solver();
        let _ = solver.solve().unwrap();
        let column: Vec<_> = (0..lp.rows.len())
            .map(|r| (jcr_lp::ConId::from_index(r), extra_coef))
            .collect();
        solver.add_column(0.0, 2.0, extra_obj, &column);
        let warm = solver.solve().unwrap();

        let mut cold = build(&lp);
        let v = cold.add_var(0.0, 2.0, extra_obj);
        for r in 0..lp.rows.len() {
            cold.set_coeff(jcr_lp::ConId::from_index(r), v, extra_coef);
        }
        let cold_sol = cold.solve().unwrap();
        assert!(
            (warm.objective - cold_sol.objective).abs() < 1e-6,
            "case {case}: warm {} vs cold {}",
            warm.objective,
            cold_sol.objective
        );
    }
}

/// Duals price the columns consistently: at optimality no nonbasic
/// column at its lower bound has a negative reduced cost.
#[test]
fn reduced_costs_certify_optimality() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6c70_3034 + case);
        let lp = random_lp(&mut rng);
        let m = build(&lp);
        let sol = m.solve().unwrap();
        for j in 0..lp.upper.len() {
            // Column entries of variable j.
            let column: Vec<(usize, f64)> = lp
                .rows
                .iter()
                .enumerate()
                .map(|(r, (coefs, _))| (r, coefs[j]))
                .collect();
            let rc = sol.reduced_cost(lp.obj[j], &column);
            let at_lower = sol.x[j] < 1e-7;
            let at_upper = sol.x[j] > lp.upper[j] - 1e-7;
            if at_lower && !at_upper {
                assert!(rc >= -1e-5, "case {case}: var {j} at lower with rc {rc}");
            } else if at_upper && !at_lower {
                assert!(rc <= 1e-5, "case {case}: var {j} at upper with rc {rc}");
            }
        }
    }
}
