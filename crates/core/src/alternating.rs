//! The general case (§4.3.3): alternating optimization of content
//! placement and routing under arbitrary link/cache capacities.
//!
//! Starting from the feasible "serve everything from the origin" solution,
//! each iteration (i) re-optimizes the placement against the current
//! path-level routing (`(1 − 1/e)` pipage LP for equal-sized items, lazy
//! greedy for heterogeneous sizes — §4.3.1 / §5.2.3), then (ii)
//! re-optimizes source selection + routing against the new placement by
//! solving MMSFP in the auxiliary graph `G^x` (§4.3.2), randomized-rounded
//! to a single path per request under integral routing (IC-IR). A new
//! iterate is kept only if it lowers the routing cost (the paper's
//! acceptance rule, §4.3.3); the loop stops when no improvement remains
//! (the paper observes convergence within 10 iterations).
//!
//! Proposition 4.8: this scheme is a heuristic — it can stall in Nash
//! equilibria arbitrarily worse than the optimum (see
//! `tests/prop48_gadget.rs`) — but matches the paper's strong empirical
//! behaviour.

use jcr_ctx::rng::SeedableRng;
use jcr_ctx::rng::StdRng;
use jcr_ctx::{Phase, SolverContext};

use jcr_flow::multicommodity::{self, Commodity};

use crate::auxiliary::AuxiliaryGraph;
use crate::error::JcrError;
use crate::hetero;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::placement_opt;
use crate::routing::{Routing, Solution};

/// How the placement subproblem is solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementMethod {
    /// LP on Eq. (15) + pipage rounding (`1 − 1/e`; equal-sized items).
    PipageLp,
    /// Lazy greedy under knapsack constraints (`1/(1+p)`; any sizes).
    Greedy,
}

/// How the MMUFP (integral-routing) subproblem is approached — the two
/// heuristics the paper cites from \[26\] (§4.3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMethod {
    /// LP relaxation (MMSFP by column generation) + randomized rounding.
    LpRandomizedRounding,
    /// Greedy sequential routing: commodities in decreasing demand order,
    /// each on the cheapest path with enough residual capacity.
    GreedySequential,
}

/// Configuration of the alternating optimization.
#[derive(Clone, Debug)]
pub struct Alternating {
    /// Maximum iterations (the paper converges within 10).
    pub max_iters: usize,
    /// Randomized-rounding draws per routing step (IC-IR).
    pub rounding_draws: usize,
    /// Integral (IC-IR) vs fractional (IC-FR) routing.
    pub integral_routing: bool,
    /// Placement subroutine; `None` picks by item-size homogeneity.
    pub placement: Option<PlacementMethod>,
    /// MMUFP heuristic used when routing is integral.
    pub routing: RoutingMethod,
    /// RNG seed for the randomized rounding.
    pub seed: u64,
}

impl Default for Alternating {
    fn default() -> Self {
        Alternating {
            max_iters: 15,
            rounding_draws: 10,
            integral_routing: true,
            placement: None,
            routing: RoutingMethod::LpRandomizedRounding,
            seed: 0,
        }
    }
}

/// Outcome of the alternating optimization.
#[derive(Clone, Debug)]
pub struct AlternatingSolution {
    /// The best solution found.
    pub solution: Solution,
    /// `(cost, congestion)` of the accepted iterate after each iteration
    /// (starting with the initial origin-only solution).
    pub history: Vec<(f64, f64)>,
    /// Iterations executed before convergence.
    pub iterations: usize,
    /// Independent certificate the returned solution was verified against
    /// (link capacities not enforced: the randomized rounding is
    /// bicriteria, so slight overloads are legitimate and the residual is
    /// recorded rather than gated).
    pub certificate: jcr_ctx::cert::Certificate,
}

impl Alternating {
    /// Creates the default configuration (IC-IR, auto placement method).
    pub fn new() -> Self {
        Alternating::default()
    }

    /// Runs the alternating optimization from the empty-cache,
    /// origin-routing initial solution.
    ///
    /// # Errors
    ///
    /// [`JcrError::Infeasible`] if even the origin-only routing cannot
    /// satisfy the demands within the link capacities.
    pub fn solve(&self, inst: &Instance) -> Result<AlternatingSolution, JcrError> {
        self.solve_from(inst, Placement::empty(inst))
    }

    /// [`Alternating::solve`] under an explicit [`SolverContext`]: the
    /// context's deadline and `Phase::Alternating` iteration cap bound the
    /// outer loop, and the inner LP/flow solvers inherit its budgets and
    /// record their statistics.
    ///
    /// # Errors
    ///
    /// Same as [`Alternating::solve`], plus [`JcrError::BudgetExceeded`]
    /// when a budget trips — carrying the best feasible incumbent found so
    /// far whenever at least one iterate completed.
    pub fn solve_with_context(
        &self,
        inst: &Instance,
        ctx: &SolverContext,
    ) -> Result<AlternatingSolution, JcrError> {
        self.solve_from_with_context(inst, Placement::empty(inst), ctx)
    }

    /// Runs the alternating optimization from a given initial placement —
    /// the warm start used by hourly re-optimization
    /// ([`crate::online`]), where the previous hour's placement seeds the
    /// next hour's search.
    ///
    /// # Errors
    ///
    /// Same as [`Alternating::solve`]; the initial placement must be
    /// capacity-feasible.
    pub fn solve_from(
        &self,
        inst: &Instance,
        initial: Placement,
    ) -> Result<AlternatingSolution, JcrError> {
        self.solve_from_with_context(inst, initial, &SolverContext::new())
    }

    /// [`Alternating::solve_from`] under an explicit [`SolverContext`].
    ///
    /// # Errors
    ///
    /// Same as [`Alternating::solve_with_context`].
    pub fn solve_from_with_context(
        &self,
        inst: &Instance,
        initial: Placement,
        ctx: &SolverContext,
    ) -> Result<AlternatingSolution, JcrError> {
        self.solve_from_with_basis(inst, initial, None, ctx)
            .map(|(solution, _)| solution)
    }

    /// [`Alternating::solve_from_with_context`] with LP warm-start
    /// plumbing: `warm` seeds the first placement LP from a prior basis
    /// snapshot (e.g. the previous online hour's), and the returned
    /// snapshot — from the last placement LP this run solved — feeds the
    /// next call. Within the run, each alternating iteration's placement
    /// LP warm-starts from the previous iteration's basis; incompatible
    /// snapshots (the segment structure moved with the routing) silently
    /// fall back to a cold solve, so the optimization trajectory is
    /// unaffected — only the simplex pivot counts change.
    ///
    /// # Errors
    ///
    /// Same as [`Alternating::solve_from_with_context`].
    pub fn solve_from_with_basis(
        &self,
        inst: &Instance,
        initial: Placement,
        warm: Option<&jcr_lp::Basis>,
        ctx: &SolverContext,
    ) -> Result<(AlternatingSolution, Option<jcr_lp::Basis>), JcrError> {
        self.solve_from_with_carry(inst, initial, warm, &[], ctx)
            .map(|(solution, basis, _)| (solution, basis))
    }

    /// [`Alternating::solve_from_with_basis`] with full state carryover:
    /// `seed_columns` is a CG column pool from a previous, near-identical
    /// solve (`(request index, auxiliary-graph node sequence)` pairs, see
    /// [`multicommodity::min_cost_multicommodity_seeded`]), used to warm
    /// the *initial* routing solve; iteration-internal routing re-solves
    /// stay unseeded so the optimization trajectory with empty seeds is
    /// bit-identical to [`Alternating::solve_from_with_basis`]. Returns
    /// the active column pool of the accepted routing for the next hour
    /// to carry.
    ///
    /// # Errors
    ///
    /// Same as [`Alternating::solve_from_with_context`]; stale seed
    /// columns are dropped by revalidation, never an error.
    #[allow(clippy::type_complexity)]
    pub fn solve_from_with_carry(
        &self,
        inst: &Instance,
        initial: Placement,
        warm: Option<&jcr_lp::Basis>,
        seed_columns: &[(usize, Vec<jcr_graph::NodeId>)],
        ctx: &SolverContext,
    ) -> Result<
        (
            AlternatingSolution,
            Option<jcr_lp::Basis>,
            Vec<(usize, Vec<jcr_graph::NodeId>)>,
        ),
        JcrError,
    > {
        let _span = ctx.span("alt.solve");
        let method = self.placement.unwrap_or(if inst.homogeneous() {
            PlacementMethod::PipageLp
        } else {
            PlacementMethod::Greedy
        });
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x616c_7465_726e);
        let mut lp_basis: Option<jcr_lp::Basis> = warm.cloned();

        // Warm the all-pairs cache through the context so the per-source
        // Dijkstra runs fan out over the pool (and are counted) instead of
        // materializing serially inside some later helper.
        inst.all_pairs_with_context(ctx);

        // Initial feasible solution: the given placement, routed optimally.
        // A budget tripping here surfaces without an incumbent — nothing
        // feasible has been constructed yet.
        let mut best_placement = initial;
        let (mut best_routing, mut best_pool) = {
            let _r = ctx.span("alt.routing");
            self.route(inst, &best_placement, seed_columns, &mut rng, ctx)?
        };
        let mut best_key = solution_key(inst, &best_routing);
        let mut history = vec![best_key];
        let mut iterations = 0;

        for _t in 0..self.max_iters {
            // An `Alternating` phase cap of k admits exactly k full
            // iterations; the deadline is re-checked here too. Either way
            // the initial (or best prior) iterate is a feasible incumbent.
            if let Err(b) = ctx.check(Phase::Alternating) {
                return Err(budget_with_incumbent(b, best_placement, best_routing));
            }
            iterations += 1;
            let _round = ctx.span("alt.round");
            // (1) placement step against the current routing.
            let placement = {
                let _p = ctx.span("alt.placement");
                match method {
                    PlacementMethod::PipageLp => {
                        match placement_opt::optimize_placement_warm(
                            inst,
                            &best_routing,
                            false,
                            ctx,
                            lp_basis.as_ref(),
                        ) {
                            Ok((p, basis)) => {
                                if basis.is_some() {
                                    lp_basis = basis;
                                }
                                p
                            }
                            Err(e) => {
                                return Err(attach_incumbent(e, best_placement, best_routing))
                            }
                        }
                    }
                    PlacementMethod::Greedy => {
                        hetero::greedy_placement_given_routing(inst, &best_routing)
                    }
                }
            };
            // (2) routing step against the new placement. Unseeded: only
            // the initial route above consumes the carried pool, so the
            // no-carry trajectory is unchanged.
            let (routing, pool) = {
                let _r = ctx.span("alt.routing");
                match self.route(inst, &placement, &[], &mut rng, ctx) {
                    Ok(r) => r,
                    Err(e) => return Err(attach_incumbent(e, best_placement, best_routing)),
                }
            };
            let key = solution_key(inst, &routing);
            // Retain the new solution only if it lowers the cost (§4.3.3).
            // The MMSFP step respects capacities, so the randomized
            // rounding keeps congestion near 1 — matching the paper's
            // "low congestion" observation — without gating acceptance.
            let improves = key.1 < best_key.1 * (1.0 - 1e-9) - 1e-12;
            if improves {
                best_key = key;
                best_placement = placement;
                best_routing = routing;
                best_pool = pool;
                history.push(key);
            } else {
                history.push(best_key);
                break;
            }
        }
        let solution = Solution {
            placement: best_placement,
            routing: best_routing,
        };
        let certificate = crate::certify::certify_solution(inst, &solution, false);
        certificate.record(ctx);
        if !certificate.verified() {
            return Err(JcrError::NumericalBreakdown(certificate.failure_summary()));
        }
        Ok((
            AlternatingSolution {
                solution,
                history,
                iterations,
                certificate,
            },
            lp_basis,
            best_pool,
        ))
    }

    /// The routing subproblem given a placement (§4.3.2), exposed for
    /// ablations and the Proposition 4.8 analysis.
    ///
    /// # Errors
    ///
    /// [`JcrError::Infeasible`] if the demands cannot be routed (even
    /// fractionally) within the link capacities.
    pub fn route_given_placement(
        &self,
        inst: &Instance,
        placement: &Placement,
    ) -> Result<Routing, JcrError> {
        self.route_given_placement_with_context(inst, placement, &SolverContext::new())
    }

    /// [`Alternating::route_given_placement`] under an explicit
    /// [`SolverContext`].
    ///
    /// # Errors
    ///
    /// Same as [`Alternating::route_given_placement`], plus
    /// [`JcrError::BudgetExceeded`] when a budget trips.
    pub fn route_given_placement_with_context(
        &self,
        inst: &Instance,
        placement: &Placement,
        ctx: &SolverContext,
    ) -> Result<Routing, JcrError> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0072_6f75_7465);
        self.route(inst, placement, &[], &mut rng, ctx)
            .map(|(routing, _)| routing)
    }

    /// The routing subproblem: MMSFP in `G^x` by column generation, plus
    /// an MMUFP heuristic for integral routing. Returns the routing and
    /// the active CG column pool (empty for greedy routing).
    #[allow(clippy::type_complexity)]
    fn route(
        &self,
        inst: &Instance,
        placement: &Placement,
        seeds: &[(usize, Vec<jcr_graph::NodeId>)],
        rng: &mut StdRng,
        ctx: &SolverContext,
    ) -> Result<(Routing, Vec<(usize, Vec<jcr_graph::NodeId>)>), JcrError> {
        let aux = AuxiliaryGraph::per_item(inst, placement);
        let commodities: Vec<Commodity> = inst
            .requests
            .iter()
            .map(|r| Commodity {
                source: aux.item_source[r.item],
                dest: r.node,
                demand: r.rate,
            })
            .collect();
        if self.integral_routing && self.routing == RoutingMethod::GreedySequential {
            let greedy = multicommodity::greedy_unsplittable_with_context(
                &aux.graph,
                &aux.cost,
                &aux.cap,
                &commodities,
                ctx,
            )?;
            return Ok((
                Routing {
                    per_request: greedy
                        .paths
                        .iter()
                        .zip(&inst.requests)
                        .map(|(p, r)| {
                            vec![jcr_flow::PathFlow {
                                path: aux.strip_virtual(p),
                                amount: r.rate,
                            }]
                        })
                        .collect(),
                },
                Vec::new(),
            ));
        }
        let (mcf, pool) = multicommodity::min_cost_multicommodity_seeded(
            &aux.graph,
            &aux.cost,
            &aux.cap,
            &commodities,
            seeds,
            ctx,
        )?;
        if self.integral_routing {
            let rounded = multicommodity::randomized_rounding_with_context(
                &aux.graph,
                &aux.cost,
                &aux.cap,
                &commodities,
                &mcf,
                self.rounding_draws.max(1),
                rng,
                ctx,
            );
            Ok((
                Routing {
                    per_request: rounded
                        .paths
                        .iter()
                        .zip(&inst.requests)
                        .map(|(p, r)| {
                            vec![jcr_flow::PathFlow {
                                path: aux.strip_virtual(p),
                                amount: r.rate,
                            }]
                        })
                        .collect(),
                },
                pool,
            ))
        } else {
            Ok((
                Routing {
                    per_request: mcf
                        .path_flows
                        .iter()
                        .map(|flows| {
                            flows
                                .iter()
                                .map(|pf| jcr_flow::PathFlow {
                                    path: aux.strip_virtual(&pf.path),
                                    amount: pf.amount,
                                })
                                .collect()
                        })
                        .collect(),
                },
                pool,
            ))
        }
    }
}

/// Wraps a tripped budget into [`JcrError::BudgetExceeded`] carrying the
/// given feasible incumbent.
fn budget_with_incumbent(
    b: jcr_ctx::BudgetExceeded,
    placement: Placement,
    routing: Routing,
) -> JcrError {
    JcrError::BudgetExceeded {
        phase: b.phase,
        best_so_far: Some(Box::new(Solution { placement, routing })),
    }
}

/// Attaches the incumbent to a budget error bubbling up from an inner
/// solver (which has no feasible solution to offer); other errors pass
/// through unchanged.
fn attach_incumbent(e: JcrError, placement: Placement, routing: Routing) -> JcrError {
    match e {
        JcrError::BudgetExceeded {
            phase,
            best_so_far: None,
        } => JcrError::BudgetExceeded {
            phase,
            best_so_far: Some(Box::new(Solution { placement, routing })),
        },
        other => other,
    }
}

/// Lexicographic quality key: congestion beyond capacity first, then cost.
fn solution_key(inst: &Instance, routing: &Routing) -> (f64, f64) {
    let congestion = routing.congestion(inst);
    (congestion.max(1.0), routing.cost(inst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::rnr;
    use jcr_topo::{Topology, TopologyKind};

    fn chunk_inst(seed: u64) -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
            .items(10)
            .cache_capacity(3.0)
            .zipf_demand(0.8, 1000.0, seed)
            .link_capacity_fraction(0.02)
            .build()
            .unwrap()
    }

    #[test]
    fn improves_over_origin_only_and_converges() {
        let inst = chunk_inst(7);
        let result = Alternating::new().solve(&inst).unwrap();
        let sol = &result.solution;
        assert!(sol.placement.is_feasible(&inst));
        assert!(sol.routing.serves_all(&inst));
        assert!(sol.routing.is_integral());
        assert!(sol.routing.sources_valid(&inst, &sol.placement));
        // The first history entry is origin-only; the final must be
        // cheaper, with congestion staying near capacity (the paper's
        // "low congestion" observation).
        let first = result.history[0];
        let last = *result.history.last().unwrap();
        assert!(
            last.1 < first.1,
            "cost should strictly improve: {first:?} → {last:?}"
        );
        assert!(last.0 < 3.0, "congestion should stay low, got {}", last.0);
        // Convergence within the budget.
        assert!(result.iterations <= 15);
    }

    #[test]
    fn fractional_routing_never_costlier_than_integral() {
        let inst = chunk_inst(9);
        let integral = Alternating {
            seed: 1,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap();
        let fractional = Alternating {
            integral_routing: false,
            seed: 1,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap();
        // IC-FR lower-bounds IC-IR when both use the same placements; with
        // independent runs we only assert the robust direction: fractional
        // congestion stays within capacity.
        assert!(fractional.solution.congestion(&inst) <= 1.0 + 1e-6);
        assert!(fractional.solution.cost(&inst) > 0.0);
        assert!(integral.solution.cost(&inst) > 0.0);
    }

    #[test]
    fn hetero_uses_greedy_automatically() {
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 11).unwrap())
            .item_sizes(vec![4.5, 6.1, 7.5, 3.9, 8.5])
            .cache_capacity(12.0)
            .zipf_demand(0.8, 500.0, 11)
            .link_capacity_fraction(0.05)
            .build()
            .unwrap();
        let result = Alternating::new().solve(&inst).unwrap();
        assert!(result.solution.placement.is_feasible(&inst));
        assert!(result.solution.routing.serves_all(&inst));
    }

    #[test]
    fn greedy_routing_method_also_works() {
        let inst = chunk_inst(21);
        let result = Alternating {
            routing: RoutingMethod::GreedySequential,
            ..Alternating::default()
        }
        .solve(&inst)
        .unwrap();
        let sol = &result.solution;
        assert!(sol.routing.serves_all(&inst));
        assert!(sol.routing.is_integral());
        assert!(sol.routing.sources_valid(&inst, &sol.placement));
        // Both heuristics should land in the same ballpark.
        let lp_based = Alternating::new().solve(&inst).unwrap();
        let (g, l) = (sol.cost(&inst), lp_based.solution.cost(&inst));
        assert!(g < 3.0 * l && l < 3.0 * g, "greedy {g} vs LP-rounding {l}");
    }

    #[test]
    fn respects_capacity_better_than_rnr() {
        // Tight capacities: RNR piles load on cheap links; alternating
        // keeps congestion low.
        let inst = chunk_inst(13);
        let result = Alternating::new().solve(&inst).unwrap();
        let alt_congestion = result.solution.congestion(&inst);
        // Compare against RNR with the same placement.
        let rnr_routing = rnr::route_to_nearest_replica(&inst, &result.solution.placement).unwrap();
        let rnr_congestion = rnr_routing.congestion(&inst);
        assert!(
            alt_congestion <= rnr_congestion + 1e-9,
            "alternating {alt_congestion} vs RNR {rnr_congestion}"
        );
    }
}
