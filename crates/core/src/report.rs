//! Human-readable solution reports: what an operator would inspect after
//! a re-optimization round.

use crate::instance::Instance;
use crate::routing::Solution;

/// A formatted multi-section report of a joint caching/routing solution.
///
/// # Examples
///
/// ```
/// use jcr_core::prelude::*;
/// use jcr_core::report;
/// use jcr_topo::{Topology, TopologyKind};
///
/// let topo = Topology::generate(TopologyKind::Abovenet, 1).unwrap();
/// let inst = InstanceBuilder::new(topo)
///     .items(6)
///     .cache_capacity(2.0)
///     .zipf_demand(0.8, 100.0, 3)
///     .build()
///     .unwrap();
/// let solution = Algorithm1::new().solve(&inst).unwrap();
/// let text = report::solution_report(&inst, &solution);
/// assert!(text.contains("routing cost"));
/// ```
pub fn solution_report(inst: &Instance, solution: &Solution) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let cost = solution.cost(inst);
    let congestion = solution.congestion(inst);
    writeln!(out, "== joint caching/routing solution ==").expect("write to string");
    writeln!(
        out,
        "requests: {}   items: {}   total rate: {:.3}",
        inst.requests.len(),
        inst.num_items(),
        inst.total_rate()
    )
    .expect("write to string");
    writeln!(out, "routing cost: {cost:.3}").expect("write to string");
    if inst.link_cap.iter().any(|c| c.is_finite()) {
        writeln!(out, "congestion (max load/capacity): {congestion:.3}").expect("write to string");
    } else {
        writeln!(out, "congestion: n/a (uncapacitated links)").expect("write to string");
    }

    writeln!(out, "\n-- placement --").expect("write to string");
    for v in inst.cache_nodes() {
        let items: Vec<String> = solution
            .placement
            .items_at(v)
            .map(|i| i.to_string())
            .collect();
        writeln!(
            out,
            "  {v}: [{}]  ({:.2}/{:.2} used)",
            items.join(", "),
            solution.placement.occupancy(inst, v),
            inst.cache_cap[v.index()]
        )
        .expect("write to string");
    }

    // Top loaded links.
    let loads = solution.routing.link_loads(inst);
    let mut ranked: Vec<(usize, f64)> = loads
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, l)| *l > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    writeln!(out, "\n-- busiest links --").expect("write to string");
    for (e, load) in ranked.into_iter().take(5) {
        let edge = jcr_graph::EdgeId::new(e);
        let (u, v) = inst.graph.endpoints(edge);
        let cap = inst.link_cap[e];
        if cap.is_finite() {
            writeln!(
                out,
                "  {u} -> {v}: load {load:.2} / cap {cap:.2} ({:.0}%)",
                100.0 * load / cap
            )
            .expect("write to string");
        } else {
            writeln!(out, "  {u} -> {v}: load {load:.2} (uncapacitated)").expect("write to string");
        }
    }
    out
}

/// [`solution_report`] with a trailing "-- solver stats --" section: the
/// [`jcr_ctx::SolverStats`] snapshot of the [`jcr_ctx::SolverContext`] the
/// solution was computed under (simplex pivots, refactorizations, Dijkstra
/// calls, generated columns, decomposition paths, rounding passes, and
/// per-phase wall-clock).
pub fn solution_report_with_stats(
    inst: &Instance,
    solution: &Solution,
    stats: &jcr_ctx::SolverStats,
) -> String {
    use std::fmt::Write;
    let mut out = solution_report(inst, solution);
    writeln!(out, "\n-- solver stats --").expect("write to string");
    for line in stats.to_string().lines() {
        writeln!(out, "  {line}").expect("write to string");
    }
    out
}

/// A summary of an online run: realized cost and churn per hour plus the
/// degradation-ladder rung histogram ("how often did the anytime loop
/// have to fall back, and how far") and the total repair work. What an
/// operator would check after a faulty day.
pub fn online_report(outcomes: &[crate::online::HourOutcome]) -> String {
    use crate::online::Rung;
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== online anytime run ({} hours) ==", outcomes.len()).expect("write to string");
    if outcomes.is_empty() {
        return out;
    }
    let n = outcomes.len() as f64;
    let cost: f64 = outcomes.iter().map(|o| o.realized_cost).sum::<f64>() / n;
    let churn: f64 = outcomes
        .iter()
        .map(|o| o.placement_churn as f64)
        .sum::<f64>()
        / n;
    writeln!(
        out,
        "mean realized cost: {cost:.3}   mean churn: {churn:.1}"
    )
    .expect("write to string");
    writeln!(out, "\n-- rung histogram --").expect("write to string");
    let mut hist = [0usize; Rung::ALL.len()];
    for o in outcomes {
        hist[o.rung.index()] += 1;
    }
    for (rung, count) in Rung::ALL.iter().zip(hist) {
        writeln!(out, "  {:>13}: {count}", rung.name()).expect("write to string");
    }
    let repaired: Vec<&crate::repair::RepairStats> =
        outcomes.iter().filter_map(|o| o.repair.as_ref()).collect();
    if !repaired.is_empty() {
        writeln!(
            out,
            "\n-- repair work ({} hours repaired) --",
            repaired.len()
        )
        .expect("write to string");
        writeln!(
            out,
            "  evicted: {}   dropped flows: {}   rerouted: {}",
            repaired.iter().map(|r| r.evicted).sum::<usize>(),
            repaired.iter().map(|r| r.dropped_flows).sum::<usize>(),
            repaired.iter().map(|r| r.rerouted).sum::<usize>(),
        )
        .expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::Algorithm1;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    #[test]
    fn report_mentions_all_sections() {
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 2).unwrap())
            .items(5)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 100.0, 2)
            .link_capacity_fraction(0.05)
            .build()
            .unwrap();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        let text = solution_report(&inst, &sol);
        assert!(text.contains("routing cost"));
        assert!(text.contains("-- placement --"));
        assert!(text.contains("-- busiest links --"));
        assert!(text.contains("congestion"));
        // One placement line per cache node.
        let placement_lines = text
            .lines()
            .skip_while(|l| !l.contains("-- placement --"))
            .take_while(|l| !l.contains("busiest"))
            .filter(|l| l.trim_start().starts_with('n'))
            .count();
        assert_eq!(placement_lines, inst.cache_nodes().len());
    }

    #[test]
    fn online_report_shows_rungs_and_repair_work() {
        use crate::alternating::Alternating;
        use crate::online::{AnytimeConfig, OnlineSimulator, Rung};
        use jcr_ctx::Budget;
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 4).unwrap())
            .items(6)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 200.0, 4)
            .link_capacity_fraction(0.1)
            .build()
            .unwrap();
        let truth: Vec<f64> = inst.requests.iter().map(|r| r.rate).collect();
        let mut sim = OnlineSimulator::new(Alternating::new());
        let mut outcomes = Vec::new();
        outcomes.push(
            sim.step_anytime(&inst, &truth, &AnytimeConfig::new())
                .unwrap(),
        );
        let starved = AnytimeConfig::new().with_budget(Budget::deadline(std::time::Duration::ZERO));
        outcomes.push(sim.step_anytime(&inst, &truth, &starved).unwrap());
        assert_eq!(outcomes[1].rung, Rung::CarryForward);
        let text = online_report(&outcomes);
        assert!(
            text.contains("== online anytime run (2 hours) =="),
            "{text}"
        );
        assert!(text.contains("-- rung histogram --"), "{text}");
        assert!(text.contains("carry-forward: 1"), "{text}");
        assert!(text.contains("repair work"), "{text}");
    }

    #[test]
    fn uncapacitated_report_says_so() {
        let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 2).unwrap())
            .items(3)
            .build()
            .unwrap();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        let text = solution_report(&inst, &sol);
        assert!(text.contains("uncapacitated"));
    }
}
