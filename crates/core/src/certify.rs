//! Independent certification of joint caching/routing solutions.
//!
//! [`certify_solution`] recomputes every constraint of optimization (1)
//! with compensated (Neumaier–Kahan) arithmetic — never the solver's own
//! running sums — and returns a [`Certificate`] whose checks either pass
//! their explicit tolerances or name the violated constraint. Unlike
//! [`crate::validate::validate_solution`], which enumerates violations
//! for repair, the certificate is the machine-checkable artifact solvers
//! attach to their results: a solver must refuse to report success on a
//! certificate that does not verify.

use jcr_ctx::cert::{Certificate, Kahan};

use crate::instance::Instance;
use crate::routing::Solution;

/// Independently verifies `solution` against `inst`.
///
/// Checks, in order: response shape, placement integrality (witnessed by
/// the bitset representation), compensated cache occupancy vs capacity,
/// path validity (chain structure, requester endpoint, storing source),
/// per-request service residuals, flow non-negativity, link capacity
/// residuals, and a finite compensated cost recomputation.
///
/// `enforce_link_caps` controls whether the link-capacity check can fail
/// the certificate: solvers with a capacity guarantee (MMSFP-based
/// routing, repaired solutions) pass `true`; uncapacitated or bicriteria
/// solvers (Algorithm 1's RNR routing, randomized rounding) pass `false`,
/// which still *records* the capacity residual but accepts any value.
pub fn certify_solution(
    inst: &Instance,
    solution: &Solution,
    enforce_link_caps: bool,
) -> Certificate {
    let mut cert = Certificate::new("jcr");
    if solution.routing.per_request.len() != inst.requests.len() {
        cert.push("shape", f64::INFINITY, 0.0);
        return cert;
    }

    // Integrality witness: `Placement` is a bitset, so x ∈ {0,1} holds by
    // representation. The zero-residual check documents the witness in
    // the certificate rather than leaving it implicit.
    cert.push("placement-integral", 0.0, 0.0);

    // Cache occupancy (1f)/(16): compensated size sum per node, worst
    // relative overflow.
    let mut worst_occ = 0.0f64;
    for v in inst.graph.nodes() {
        let capacity = inst.cache_cap[v.index()];
        let mut occ = Kahan::new();
        for i in solution.placement.items_at(v) {
            occ.add(inst.item_size[i]);
        }
        worst_occ = worst_occ.max((occ.total() - capacity) / (1.0 + capacity));
    }
    cert.push("cache-capacity", worst_occ, 1e-7);

    // Path structure (chains ending at the requester) and source storage
    // (1e), plus flow finiteness/non-negativity and per-request service
    // (1d).
    let mut paths_ok = true;
    let mut neg = 0.0f64;
    let mut worst_service = 0.0f64;
    for (req, flows) in inst.requests.iter().zip(&solution.routing.per_request) {
        let mut served = Kahan::new();
        for pf in flows {
            served.add(pf.amount);
            if !pf.amount.is_finite() {
                neg = f64::INFINITY;
            }
            neg = neg.max(-pf.amount);
            if !pf.path.is_valid(&inst.graph)
                || (!pf.path.is_empty() && pf.path.target(&inst.graph) != Some(req.node))
            {
                paths_ok = false;
                continue;
            }
            let source = pf.path.source(&inst.graph).unwrap_or(req.node);
            if !solution.placement.has_with_origin(inst, source, req.item) {
                paths_ok = false;
            }
        }
        let r = (served.total() - req.rate).abs();
        worst_service = worst_service.max(r / (1.0 + req.rate));
    }
    cert.push(
        "paths-valid",
        if paths_ok { 0.0 } else { f64::INFINITY },
        0.0,
    );
    cert.push("flow-nonneg", neg, 1e-9);
    cert.push("service", worst_service, 2e-6);

    // Link capacity (1b): compensated loads, worst relative overload. Can
    // only fail when the caller claims a capacity guarantee.
    let mut loads: Vec<Kahan> = vec![Kahan::new(); inst.graph.edge_count()];
    for pf in solution.routing.per_request.iter().flatten() {
        for e in pf.path.edges() {
            loads[e.index()].add(pf.amount);
        }
    }
    let mut worst_link = 0.0f64;
    for e in inst.graph.edges() {
        let c = inst.link_cap[e.index()];
        if c.is_finite() {
            worst_link = worst_link.max((loads[e.index()].total() - c) / (1.0 + c));
        }
    }
    cert.push(
        "link-capacity",
        worst_link,
        if enforce_link_caps {
            1e-5
        } else {
            f64::INFINITY
        },
    );

    // Objective (1a): the compensated cost must be finite.
    let mut cost = Kahan::new();
    for pf in solution.routing.per_request.iter().flatten() {
        cost.add_prod(pf.amount, pf.path.cost(&inst.link_cost));
    }
    cert.push(
        "cost-finite",
        if cost.total().is_finite() {
            0.0
        } else {
            f64::INFINITY
        },
        0.0,
    );
    cert
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::Algorithm1;
    use crate::alternating::Alternating;
    use crate::instance::InstanceBuilder;
    use crate::placement::Placement;
    use jcr_topo::{Topology, TopologyKind};

    fn inst() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 4).unwrap())
            .items(6)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 150.0, 4)
            .link_capacity_fraction(0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn alg1_solution_certifies() {
        let inst = inst();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        let cert = certify_solution(&inst, &sol, false);
        assert!(cert.verified(), "{}", cert.failure_summary());
    }

    #[test]
    fn alternating_solution_certifies() {
        let inst = inst();
        let alt = Alternating::new().solve(&inst).unwrap();
        let cert = certify_solution(&inst, &alt.solution, false);
        assert!(cert.verified(), "{}", cert.failure_summary());
    }

    #[test]
    fn tampered_service_fails() {
        let inst = inst();
        let mut sol = Algorithm1::new().solve(&inst).unwrap();
        sol.routing.per_request[0][0].amount *= 0.5;
        let cert = certify_solution(&inst, &sol, false);
        assert!(!cert.verified());
        assert!(cert.failures().any(|c| c.name == "service"));
    }

    #[test]
    fn tampered_placement_fails_capacity() {
        let inst = inst();
        let mut sol = Algorithm1::new().solve(&inst).unwrap();
        let v = inst.cache_nodes()[0];
        for i in 0..inst.num_items() {
            sol.placement.set(v, i, true); // 6 items in a 2-item cache
        }
        let cert = certify_solution(&inst, &sol, false);
        assert!(cert
            .failures()
            .any(|c| c.name == "cache-capacity" || c.name == "paths-valid"));
    }

    #[test]
    fn invalid_source_fails_paths() {
        let inst = inst();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        // Strip the placement: cached sources become invalid while the
        // routing still points at them.
        let stripped = Solution {
            placement: Placement::empty(&inst),
            routing: sol.routing.clone(),
        };
        let routed_from_cache = sol
            .routing
            .per_request
            .iter()
            .flatten()
            .any(|pf| pf.path.source(&inst.graph) != inst.origin);
        if routed_from_cache {
            let cert = certify_solution(&inst, &stripped, false);
            assert!(!cert.verified());
        }
    }

    #[test]
    fn shape_mismatch_fails() {
        let inst = inst();
        let sol = Solution {
            placement: Placement::empty(&inst),
            routing: crate::routing::Routing {
                per_request: Vec::new(),
            },
        };
        if !inst.requests.is_empty() {
            let cert = certify_solution(&inst, &sol, false);
            assert!(!cert.verified());
            assert!(cert.failures().any(|c| c.name == "shape"));
        }
    }

    #[test]
    fn link_cap_enforcement_is_opt_in() {
        let inst = inst();
        let mut sol = Algorithm1::new().solve(&inst).unwrap();
        // Inflate one flow far past every link capacity.
        if let Some(pf) = sol
            .routing
            .per_request
            .iter_mut()
            .flatten()
            .find(|pf| !pf.path.is_empty())
        {
            pf.amount *= 1e6;
        }
        let lax = certify_solution(&inst, &sol, false);
        assert!(!lax.failures().any(|c| c.name == "link-capacity"));
        let strict = certify_solution(&inst, &sol, true);
        assert!(strict.failures().any(|c| c.name == "link-capacity"));
    }
}
