//! The crate-wide error type.

use std::fmt;

/// Errors surfaced by the joint caching and routing algorithms.
#[derive(Clone, Debug, PartialEq)]
pub enum JcrError {
    /// The instance itself is malformed (mismatched lengths, negative
    /// rates, unreachable requesters, …).
    InvalidInstance(String),
    /// No feasible joint solution exists (demands exceed capacities even
    /// with the origin fallback).
    Infeasible,
    /// A substrate solver lost numerical precision.
    Numerical(String),
}

impl fmt::Display for JcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JcrError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            JcrError::Infeasible => write!(f, "no feasible joint caching/routing solution"),
            JcrError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for JcrError {}

impl From<jcr_flow::FlowError> for JcrError {
    fn from(e: jcr_flow::FlowError) -> Self {
        match e {
            jcr_flow::FlowError::Infeasible => JcrError::Infeasible,
            jcr_flow::FlowError::Numerical(m) => JcrError::Numerical(m),
        }
    }
}

impl From<jcr_lp::LpError> for JcrError {
    fn from(e: jcr_lp::LpError) -> Self {
        match e {
            jcr_lp::LpError::Infeasible => JcrError::Infeasible,
            jcr_lp::LpError::Unbounded => JcrError::Numerical("unexpected unbounded LP".into()),
            jcr_lp::LpError::Numerical(m) => JcrError::Numerical(m),
        }
    }
}
