//! The crate-wide error type.

use std::fmt;

use crate::routing::Solution;

/// Errors surfaced by the joint caching and routing algorithms.
#[derive(Clone, Debug, PartialEq)]
pub enum JcrError {
    /// The instance itself is malformed (mismatched lengths, negative
    /// rates, unreachable requesters, …).
    InvalidInstance(String),
    /// No feasible joint solution exists (demands exceed capacities even
    /// with the origin fallback).
    Infeasible,
    /// A substrate solver lost numerical precision.
    Numerical(String),
    /// A numerical guardrail tripped: a basis residual exceeded its
    /// failure threshold, or an independent certificate verifier rejected
    /// a solution. Unlike [`JcrError::Numerical`], this means a solver
    /// *produced* an answer that failed verification — callers must
    /// degrade (retry, fall back, keep an incumbent) rather than trust
    /// partial results. The payload names the failing residual checks.
    NumericalBreakdown(String),
    /// A [`jcr_ctx::SolverContext`] budget (deadline or phase iteration
    /// cap) tripped before the solver finished. `best_so_far` carries the
    /// best feasible incumbent found before the budget ran out, when one
    /// exists (e.g. the previous iterate of the alternating optimization).
    BudgetExceeded {
        /// The phase whose budget tripped.
        phase: jcr_ctx::Phase,
        /// Best feasible solution found before the budget ran out, if any.
        best_so_far: Option<Box<Solution>>,
    },
}

impl JcrError {
    /// Extracts the feasible incumbent carried by a budget error, if any.
    /// Non-budget errors (and budget errors without an incumbent) yield
    /// `None`. Used by the online degradation ladder to serve an hour
    /// from the best solution an interrupted solve produced.
    pub fn into_incumbent(self) -> Option<Box<Solution>> {
        match self {
            JcrError::BudgetExceeded { best_so_far, .. } => best_so_far,
            _ => None,
        }
    }
}

impl fmt::Display for JcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JcrError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            JcrError::Infeasible => write!(f, "no feasible joint caching/routing solution"),
            JcrError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            JcrError::NumericalBreakdown(msg) => write!(f, "numerical breakdown: {msg}"),
            JcrError::BudgetExceeded { phase, best_so_far } => write!(
                f,
                "solver budget exceeded in phase {phase} ({} incumbent)",
                if best_so_far.is_some() { "with" } else { "no" }
            ),
        }
    }
}

impl std::error::Error for JcrError {}

impl From<jcr_ctx::BudgetExceeded> for JcrError {
    fn from(b: jcr_ctx::BudgetExceeded) -> Self {
        JcrError::BudgetExceeded {
            phase: b.phase,
            best_so_far: None,
        }
    }
}

impl From<jcr_flow::FlowError> for JcrError {
    fn from(e: jcr_flow::FlowError) -> Self {
        match e {
            jcr_flow::FlowError::Infeasible => JcrError::Infeasible,
            jcr_flow::FlowError::Numerical(m) => JcrError::Numerical(m),
            jcr_flow::FlowError::NumericalBreakdown(m) => JcrError::NumericalBreakdown(m),
            jcr_flow::FlowError::Budget(b) => b.into(),
        }
    }
}

impl From<jcr_lp::LpError> for JcrError {
    fn from(e: jcr_lp::LpError) -> Self {
        match e {
            jcr_lp::LpError::Infeasible => JcrError::Infeasible,
            jcr_lp::LpError::Unbounded => JcrError::Numerical("unexpected unbounded LP".into()),
            jcr_lp::LpError::Numerical(m) => JcrError::Numerical(m),
            jcr_lp::LpError::NumericalBreakdown(m) => JcrError::NumericalBreakdown(m),
            jcr_lp::LpError::Budget(b) => b.into(),
        }
    }
}
