//! Structured validation of joint solutions against the constraints of
//! optimization (1): every violated constraint is reported with its
//! location and magnitude, rather than a bare boolean.

use std::fmt;

use jcr_graph::{EdgeId, NodeId};

use crate::instance::Instance;
use crate::routing::Solution;

/// One violated constraint of optimization (1).
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Constraint (1b): a link carries more than its capacity.
    LinkOverload {
        /// The overloaded link.
        edge: EdgeId,
        /// Load placed on it.
        load: f64,
        /// Its capacity.
        capacity: f64,
    },
    /// Constraint (1d): a request is not fully served.
    UnderServed {
        /// Index into the instance's request list.
        request: usize,
        /// Amount actually served.
        served: f64,
        /// The requested rate.
        rate: f64,
    },
    /// Constraint (1e): a path starts at a node that does not store the
    /// requested item.
    InvalidSource {
        /// Index into the instance's request list.
        request: usize,
        /// The offending path source.
        source: NodeId,
    },
    /// Constraint (1f)/(16): a cache holds more than its capacity.
    CacheOverflow {
        /// The overflowing node.
        node: NodeId,
        /// Size-weighted occupancy.
        occupancy: f64,
        /// Its capacity.
        capacity: f64,
    },
    /// A routing path is not a valid chain in the graph, or does not end
    /// at its requester.
    MalformedPath {
        /// Index into the instance's request list.
        request: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LinkOverload {
                edge,
                load,
                capacity,
            } => {
                write!(
                    f,
                    "link {edge} overloaded: {load:.3} > capacity {capacity:.3}"
                )
            }
            Violation::UnderServed {
                request,
                served,
                rate,
            } => {
                write!(
                    f,
                    "request {request} under-served: {served:.3} of {rate:.3}"
                )
            }
            Violation::InvalidSource { request, source } => {
                write!(f, "request {request} served from non-storing node {source}")
            }
            Violation::CacheOverflow {
                node,
                occupancy,
                capacity,
            } => {
                write!(
                    f,
                    "cache {node} overflows: {occupancy:.3} > capacity {capacity:.3}"
                )
            }
            Violation::MalformedPath { request } => {
                write!(f, "request {request} has a malformed routing path")
            }
        }
    }
}

/// Checks a solution against every constraint of optimization (1) and
/// returns all violations (empty = feasible).
///
/// # Examples
///
/// ```
/// use jcr_core::prelude::*;
/// use jcr_core::validate::validate_solution;
/// use jcr_topo::{Topology, TopologyKind};
///
/// let inst = InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 1).unwrap())
///     .items(6)
///     .cache_capacity(2.0)
///     .zipf_demand(0.8, 100.0, 3)
///     .build()
///     .unwrap();
/// let solution = Algorithm1::new().solve(&inst).unwrap();
/// assert!(validate_solution(&inst, &solution).is_empty());
/// ```
pub fn validate_solution(inst: &Instance, solution: &Solution) -> Vec<Violation> {
    let tol = 1e-6;
    let mut violations = Vec::new();

    // (1f)/(16) cache capacities.
    for v in inst.graph.nodes() {
        let occupancy = solution.placement.occupancy(inst, v);
        let capacity = inst.cache_cap[v.index()];
        if occupancy > capacity + tol {
            violations.push(Violation::CacheOverflow {
                node: v,
                occupancy,
                capacity,
            });
        }
    }

    // Path structure, service, and sources.
    let routing = &solution.routing;
    if routing.per_request.len() != inst.requests.len() {
        violations.push(Violation::MalformedPath {
            request: routing.per_request.len(),
        });
        return violations;
    }
    for (ri, (req, flows)) in inst.requests.iter().zip(&routing.per_request).enumerate() {
        let mut served = 0.0;
        for pf in flows {
            served += pf.amount;
            if !pf.path.is_valid(&inst.graph)
                || (!pf.path.is_empty() && pf.path.target(&inst.graph) != Some(req.node))
            {
                violations.push(Violation::MalformedPath { request: ri });
                continue;
            }
            let source = pf.path.source(&inst.graph).unwrap_or(req.node);
            if !solution.placement.has_with_origin(inst, source, req.item) {
                violations.push(Violation::InvalidSource {
                    request: ri,
                    source,
                });
            }
        }
        if (served - req.rate).abs() > tol * req.rate.max(1.0) {
            violations.push(Violation::UnderServed {
                request: ri,
                served,
                rate: req.rate,
            });
        }
    }

    // (1b) link capacities.
    let loads = routing.link_loads(inst);
    for e in inst.graph.edges() {
        let capacity = inst.link_cap[e.index()];
        let load = loads[e.index()];
        if capacity.is_finite() && load > capacity * (1.0 + tol) {
            violations.push(Violation::LinkOverload {
                edge: e,
                load,
                capacity,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg1::Algorithm1;
    use crate::instance::InstanceBuilder;
    use crate::placement::Placement;
    use crate::rnr;
    use jcr_flow::PathFlow;
    use jcr_topo::{Topology, TopologyKind};

    fn inst() -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, 6).unwrap())
            .items(5)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 100.0, 6)
            .link_capacity_fraction(0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn feasible_solutions_have_no_violations() {
        let inst = inst();
        let sol = Algorithm1::new().solve(&inst).unwrap();
        // Algorithm 1 ignores link capacities, so only check the
        // constraints it promises; on this instance its RNR routing may
        // overload, so rebuild with the alternating solver for a fully
        // feasible check.
        let alt = crate::alternating::Alternating::new().solve(&inst).unwrap();
        let violations = validate_solution(&inst, &alt.solution);
        let hard: Vec<_> = violations
            .iter()
            .filter(|v| !matches!(v, Violation::LinkOverload { .. }))
            .collect();
        assert!(hard.is_empty(), "{hard:?}");
        let _ = sol;
    }

    #[test]
    fn detects_cache_overflow() {
        let inst = inst();
        let mut placement = Placement::empty(&inst);
        let v = inst.cache_nodes()[0];
        for i in 0..inst.num_items() {
            placement.set(v, i, true); // 5 items in a 2-item cache
        }
        let routing = rnr::route_to_nearest_replica(&inst, &placement).unwrap();
        let violations = validate_solution(&inst, &Solution { placement, routing });
        assert!(violations
            .iter()
            .any(|x| matches!(x, Violation::CacheOverflow { .. })));
    }

    #[test]
    fn detects_under_service_and_bad_source() {
        let inst = inst();
        let placement = Placement::empty(&inst);
        let mut routing = rnr::route_to_nearest_replica(&inst, &placement).unwrap();
        routing.per_request[0][0].amount *= 0.5;
        // Reroute request 1 from a non-storing edge node.
        let bogus = inst.cache_nodes()[0];
        if let Some(p) = inst.all_pairs().path(bogus, inst.requests[1].node) {
            if !p.is_empty() {
                routing.per_request[1] = vec![PathFlow {
                    path: p,
                    amount: inst.requests[1].rate,
                }];
            }
        }
        let violations = validate_solution(&inst, &Solution { placement, routing });
        assert!(violations
            .iter()
            .any(|x| matches!(x, Violation::UnderServed { request: 0, .. })));
        assert!(violations
            .iter()
            .any(|x| matches!(x, Violation::InvalidSource { request: 1, .. })));
    }

    #[test]
    fn detects_link_overload() {
        let inst = inst();
        // RNR ignoring capacities typically overloads something under the
        // tight default κ.
        let placement = Placement::empty(&inst);
        let routing = rnr::route_to_nearest_replica(&inst, &placement).unwrap();
        let sol = Solution { placement, routing };
        let violations = validate_solution(&inst, &sol);
        if sol.congestion(&inst) > 1.0 + 1e-6 {
            assert!(violations
                .iter()
                .any(|x| matches!(x, Violation::LinkOverload { .. })));
        }
    }

    #[test]
    fn violations_display() {
        let v = Violation::UnderServed {
            request: 3,
            served: 1.0,
            rate: 2.0,
        };
        assert!(v.to_string().contains("request 3"));
        let v = Violation::MalformedPath { request: 1 };
        assert!(v.to_string().contains("malformed"));
    }
}
