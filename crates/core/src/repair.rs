//! Solution repair: make a carried decision survive topology and demand
//! changes.
//!
//! The online loop's last degradation rung (see [`crate::online`]) keeps
//! serving from the previous hour's solution when every re-solve attempt
//! failed. The carried solution, however, was optimized for a different
//! instance — links may have failed, capacities shrunk, caches changed.
//! [`repair_solution`] turns it into a feasible solution for the *current*
//! instance by a violation-driven loop:
//!
//! 1. evict overflowing cache items ([`Placement::repair`], least locally
//!    demanded first);
//! 2. drop path flows that are malformed, start at a non-storing source,
//!    or traverse a failed/overloaded link (rip-up, smallest request
//!    first);
//! 3. greedily re-route the underserved requests, heaviest first, on the
//!    cheapest path with enough residual capacity (falling back to any
//!    alive path when nothing fits).
//!
//! The loop re-validates with [`validate_solution`] after each pass and
//! stops when clean (or after a bounded number of passes for genuinely
//! unservable instances — the caller re-validates before serving).

use std::collections::BTreeSet;

use jcr_flow::PathFlow;
use jcr_graph::{shortest, EdgeId, NodeId, Path};

use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::routing::{Routing, Solution};
use crate::validate::{validate_solution, Violation};

/// Work performed by [`repair_solution`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// (node, item) pairs evicted from overflowing caches.
    pub evicted: usize,
    /// Path flows dropped (malformed, invalid source, or ripped up from
    /// an overloaded link).
    pub dropped_flows: usize,
    /// Requests re-routed onto a fresh path.
    pub rerouted: usize,
    /// Violation-fixing passes performed (0 = already feasible).
    pub passes: usize,
}

impl RepairStats {
    /// Whether the repair changed anything at all.
    pub fn changed(&self) -> bool {
        self.evicted > 0 || self.dropped_flows > 0 || self.rerouted > 0
    }
}

const MAX_PASSES: usize = 8;
const TOL: f64 = 1e-6;

/// Repairs `solution` against `inst` (see the module docs for the
/// strategy). Returns the repaired solution and the work done; the result
/// is *usually* feasible but callers must re-check with
/// [`validate_solution`] — an instance whose demands are simply
/// unservable stays infeasible no matter the repair.
pub fn repair_solution(inst: &Instance, solution: &Solution) -> (Solution, RepairStats) {
    let mut stats = RepairStats::default();
    let mut sol = solution.clone();

    // Dimension mismatches are fixed up-front so every index below is in
    // range: the placement resets via `Placement::repair`, the routing by
    // dropping all flows.
    stats.evicted += sol.placement.repair(inst);
    if sol.routing.per_request.len() != inst.requests.len() {
        stats.dropped_flows += sol.routing.per_request.iter().map(Vec::len).sum::<usize>();
        sol.routing = Routing {
            per_request: vec![Vec::new(); inst.requests.len()],
        };
    }

    // Requests proven unservable (no alive path from any replica): give
    // up on them instead of looping.
    let mut hopeless: BTreeSet<usize> = BTreeSet::new();
    for pass in 1..=MAX_PASSES {
        let violations = validate_solution(inst, &sol);
        let actionable = violations.iter().any(
            |v| !matches!(v, Violation::UnderServed { request, .. } if hopeless.contains(request)),
        );
        if !actionable {
            break;
        }
        stats.passes = pass;

        let mut to_reroute: BTreeSet<usize> = BTreeSet::new();
        let mut overloaded: Vec<EdgeId> = Vec::new();
        let mut overflowed = false;
        for v in &violations {
            match v {
                Violation::CacheOverflow { .. } => overflowed = true,
                Violation::MalformedPath { request }
                | Violation::InvalidSource { request, .. }
                | Violation::UnderServed { request, .. } => {
                    if !hopeless.contains(request) {
                        to_reroute.insert(*request);
                    }
                }
                Violation::LinkOverload { edge, .. } => overloaded.push(*edge),
            }
        }

        if overflowed {
            stats.evicted += sol.placement.repair(inst);
        }
        for &ri in &to_reroute {
            stats.dropped_flows += sol.routing.per_request[ri].len();
            sol.routing.per_request[ri].clear();
        }

        let mut loads = sol.routing.link_loads(inst);
        for e in overloaded {
            rip_up(
                inst,
                &mut sol.routing,
                e,
                &mut loads,
                &mut to_reroute,
                &mut stats,
            );
        }

        let mut order: Vec<usize> = to_reroute.into_iter().collect();
        order.sort_by(|&a, &b| {
            inst.requests[b]
                .rate
                .partial_cmp(&inst.requests[a].rate)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for ri in order {
            match greedy_reroute(inst, &sol.placement, &loads, ri) {
                Some(path) => {
                    let amount = inst.requests[ri].rate;
                    for e in path.edges() {
                        loads[e.index()] += amount;
                    }
                    sol.routing.per_request[ri] = vec![PathFlow { path, amount }];
                    stats.rerouted += 1;
                }
                None => {
                    hopeless.insert(ri);
                }
            }
        }
    }
    (sol, stats)
}

/// [`repair_solution`] with the feasibility re-check built in: returns the
/// repaired solution only when it passes [`validate_solution`], and a
/// typed error otherwise — a repair that cannot restore feasibility must
/// never hand back a silently invalid solution.
///
/// # Errors
///
/// [`JcrError::Infeasible`] when the repaired solution still violates a
/// constraint of optimization (1) — i.e. the instance is genuinely
/// unservable (e.g. a requester cut off from every replica and the
/// origin), which no amount of eviction or re-routing can fix.
pub fn repair_solution_checked(
    inst: &Instance,
    solution: &Solution,
) -> Result<(Solution, RepairStats), JcrError> {
    let (repaired, stats) = repair_solution(inst, solution);
    if validate_solution(inst, &repaired).is_empty() {
        Ok((repaired, stats))
    } else {
        Err(JcrError::Infeasible)
    }
}

/// Drops whole requests crossing `e` (smallest rate first) until its load
/// fits the capacity; dropped requests are queued for re-routing.
fn rip_up(
    inst: &Instance,
    routing: &mut Routing,
    e: EdgeId,
    loads: &mut [f64],
    to_reroute: &mut BTreeSet<usize>,
    stats: &mut RepairStats,
) {
    let cap = inst.link_cap[e.index()];
    if !cap.is_finite() {
        return;
    }
    while loads[e.index()] > cap * (1.0 + TOL) {
        let mut pick: Option<(f64, usize)> = None;
        for (ri, flows) in routing.per_request.iter().enumerate() {
            let crosses = flows.iter().any(|pf| pf.path.edges().contains(&e));
            if crosses {
                let amount: f64 = flows.iter().map(|f| f.amount).sum();
                if pick.is_none_or(|(a, _)| amount < a) {
                    pick = Some((amount, ri));
                }
            }
        }
        let Some((_, ri)) = pick else {
            break; // residual load is not ours to drop
        };
        for pf in &routing.per_request[ri] {
            for pe in pf.path.edges() {
                loads[pe.index()] -= pf.amount;
            }
        }
        stats.dropped_flows += routing.per_request[ri].len();
        routing.per_request[ri].clear();
        to_reroute.insert(ri);
    }
}

/// The cheapest path serving request `ri` from any replica (or the
/// origin) whose links all have residual capacity for the full rate;
/// falls back to the cheapest path over alive links outright. `None`
/// when no alive finite-cost path reaches the requester.
fn greedy_reroute(
    inst: &Instance,
    placement: &Placement,
    loads: &[f64],
    ri: usize,
) -> Option<Path> {
    let req = inst.requests[ri];
    if placement.has_with_origin(inst, req.node, req.item) {
        return Some(Path::new(Vec::new())); // local hit
    }
    let mut sources: Vec<NodeId> = placement.holders(req.item).collect();
    if let Some(o) = inst.origin {
        if !sources.contains(&o) {
            sources.push(o);
        }
    }
    let fitting = best_path(inst, &sources, req.node, |e| {
        let c = inst.link_cap[e.index()];
        !c.is_finite() || c - loads[e.index()] + 1e-9 >= req.rate
    });
    fitting.or_else(|| best_path(inst, &sources, req.node, |e| inst.link_cap[e.index()] > 0.0))
}

/// The cheapest finite-cost path to `target` from any of `sources` using
/// only links accepted by `usable`.
fn best_path<F: Fn(EdgeId) -> bool>(
    inst: &Instance,
    sources: &[NodeId],
    target: NodeId,
    usable: F,
) -> Option<Path> {
    let mut best: Option<(f64, Path)> = None;
    for &s in sources {
        let tree = shortest::dijkstra_filtered(&inst.graph, s, &inst.link_cost, &usable);
        if let Some(p) = tree.path(target) {
            let c = p.cost(&inst.link_cost);
            if c.is_finite() && best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, p));
            }
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::Alternating;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn capped_inst(seed: u64) -> Instance {
        InstanceBuilder::new(Topology::generate(TopologyKind::Abovenet, seed).unwrap())
            .items(6)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 200.0, seed)
            .link_capacity_fraction(0.5)
            .build()
            .unwrap()
    }

    /// Rebuilds `inst` with edge `e` failed (zero capacity, infinite
    /// cost).
    fn fail_link(inst: &Instance, e: EdgeId) -> Instance {
        let mut cost = inst.link_cost.clone();
        let mut cap = inst.link_cap.clone();
        cost[e.index()] = f64::INFINITY;
        cap[e.index()] = 0.0;
        Instance::new(
            inst.graph.clone(),
            cost,
            cap,
            inst.cache_cap.clone(),
            inst.item_size.clone(),
            inst.requests.clone(),
            inst.origin,
        )
        .unwrap()
    }

    #[test]
    fn clean_solutions_pass_through_unchanged() {
        let inst = capped_inst(3);
        let sol = Alternating::new().solve(&inst).unwrap().solution;
        assert!(validate_solution(&inst, &sol).is_empty());
        let (repaired, stats) = repair_solution(&inst, &sol);
        assert_eq!(repaired, sol);
        assert!(!stats.changed());
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn reroutes_around_a_failed_link() {
        let inst = capped_inst(11);
        let sol = Alternating::new().solve(&inst).unwrap().solution;
        // Fail the most loaded link the solution uses whose loss keeps the
        // instance servable (the origin can still reach every requester
        // over alive links) — the same guard the fault injector applies.
        let loads = sol.routing.link_loads(&inst);
        let mut candidates: Vec<EdgeId> = inst
            .graph
            .edges()
            .filter(|e| loads[e.index()] > 0.0)
            .collect();
        candidates.sort_by(|a, b| loads[b.index()].partial_cmp(&loads[a.index()]).unwrap());
        let victim = candidates
            .into_iter()
            .find(|&e| {
                let tree = shortest::dijkstra_filtered(
                    &inst.graph,
                    inst.origin.unwrap(),
                    &inst.link_cost,
                    |f| f != e && inst.link_cap[f.index()] > 0.0,
                );
                inst.requests.iter().all(|r| tree.path(r.node).is_some())
            })
            .expect("some loaded link is expendable");
        let faulted = fail_link(&inst, victim);

        let (repaired, stats) = repair_solution(&faulted, &sol);
        let violations = validate_solution(&faulted, &repaired);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(stats.dropped_flows > 0, "{stats:?}");
        assert!(stats.rerouted > 0, "{stats:?}");
        let new_loads = repaired.routing.link_loads(&faulted);
        assert_eq!(new_loads[victim.index()], 0.0, "dead link still loaded");
    }

    #[test]
    fn evicts_overflow_and_fixes_sources() {
        let inst = capped_inst(5);
        let mut sol = Alternating::new().solve(&inst).unwrap().solution;
        // Overfill one cache; the eviction invalidates any path sourced at
        // the evicted replicas, which the repair must then re-route.
        let v = inst.cache_nodes()[0];
        for i in 0..inst.num_items() {
            sol.placement.set(v, i, true);
        }
        let (repaired, stats) = repair_solution(&inst, &sol);
        let violations = validate_solution(&inst, &repaired);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(stats.evicted > 0, "{stats:?}");
        assert!(repaired.placement.is_feasible(&inst));
    }

    #[test]
    fn empty_placement_repairs_to_origin_routing() {
        // A carried decision with empty caches and no routing at all must
        // come back fully served from the origin.
        let inst = capped_inst(7);
        let bare = Solution {
            placement: Placement::empty(&inst),
            routing: Routing {
                per_request: vec![Vec::new(); inst.requests.len()],
            },
        };
        let (repaired, stats) = repair_solution_checked(&inst, &bare).unwrap();
        assert!(validate_solution(&inst, &repaired).is_empty());
        assert_eq!(stats.rerouted, inst.requests.len());
        assert!(repaired.routing.serves_all(&inst));
    }

    #[test]
    fn every_cache_failed_evicts_everything() {
        // The current instance lost all cache capacity: every cached copy
        // must be evicted and all traffic re-routed to the origin.
        let old = capped_inst(9);
        let sol = Alternating::new().solve(&old).unwrap().solution;
        assert!(!sol.placement.is_empty(), "solver should cache something");
        let no_caches = crate::instance::Instance::new(
            old.graph.clone(),
            old.link_cost.clone(),
            old.link_cap.clone(),
            vec![0.0; old.graph.node_count()],
            old.item_size.clone(),
            old.requests.clone(),
            old.origin,
        )
        .unwrap();
        let (repaired, stats) = repair_solution_checked(&no_caches, &sol).unwrap();
        assert_eq!(repaired.placement.len(), 0, "all items must be evicted");
        assert!(stats.evicted > 0, "{stats:?}");
        assert!(validate_solution(&no_caches, &repaired).is_empty());
    }

    #[test]
    fn unrestorable_instance_yields_typed_error() {
        // Zero link capacity everywhere: nothing can be routed, so the
        // checked repair must surface a typed error instead of a silently
        // invalid solution.
        let inst = capped_inst(4);
        let sol = Alternating::new().solve(&inst).unwrap().solution;
        let dead = crate::instance::Instance::new(
            inst.graph.clone(),
            inst.link_cost.clone(),
            vec![0.0; inst.graph.edge_count()],
            inst.cache_cap.clone(),
            inst.item_size.clone(),
            inst.requests.clone(),
            inst.origin,
        )
        .unwrap();
        let err = repair_solution_checked(&dead, &sol).unwrap_err();
        assert_eq!(err, crate::error::JcrError::Infeasible);
        // The unchecked variant still reports what it tried.
        let (_, stats) = repair_solution(&dead, &sol);
        assert!(stats.passes > 0);
    }

    #[test]
    fn repairs_a_stale_solution_from_another_instance() {
        // A solution carried across a topology change (different node and
        // request counts) must come back valid for the new instance.
        let old = capped_inst(2);
        let new = InstanceBuilder::new(Topology::generate(TopologyKind::Tinet, 2).unwrap())
            .items(4)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 150.0, 7)
            .link_capacity_fraction(0.5)
            .build()
            .unwrap();
        let sol = Alternating::new().solve(&old).unwrap().solution;
        let (repaired, stats) = repair_solution(&new, &sol);
        let violations = validate_solution(&new, &repaired);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(stats.rerouted, new.requests.len());
    }
}
