//! Exact IC-IR solving by exhaustive enumeration — a ground-truth oracle
//! for *tiny* instances only (both caching and routing are NP-hard, §3),
//! used to quantify the heuristics' optimality gaps in tests and
//! experiments.
//!
//! Enumerates every capacity-feasible integral placement; for each, every
//! combination of candidate paths (the `max_paths` cheapest simple paths
//! from each replica to the requester) is checked against the link
//! capacities, keeping the cheapest feasible assignment.

use jcr_graph::{shortest, Path};

use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::routing::{Routing, Solution};

/// Configuration of the exhaustive search.
#[derive(Clone, Copy, Debug)]
pub struct ExactIcIr {
    /// Candidate simple paths enumerated per (replica, requester) pair.
    pub max_paths: usize,
    /// Hard cap on placement-slot count (`|cache nodes| × |items|`); the
    /// solver refuses larger instances instead of running forever.
    pub max_slots: usize,
    /// Hard cap on per-placement routing combinations.
    pub max_combinations: usize,
}

impl Default for ExactIcIr {
    fn default() -> Self {
        ExactIcIr {
            max_paths: 3,
            max_slots: 12,
            max_combinations: 200_000,
        }
    }
}

impl ExactIcIr {
    /// Creates the default configuration.
    pub fn new() -> Self {
        ExactIcIr::default()
    }

    /// Finds the optimal IC-IR solution by exhaustive search.
    ///
    /// # Errors
    ///
    /// [`JcrError::InvalidInstance`] if the instance exceeds the
    /// enumeration caps, [`JcrError::Infeasible`] if no feasible joint
    /// solution exists within the candidate paths.
    pub fn solve(&self, inst: &Instance) -> Result<Solution, JcrError> {
        let cache_nodes = inst.cache_nodes();
        let n_items = inst.num_items();
        let slots: Vec<(usize, usize)> = cache_nodes
            .iter()
            .enumerate()
            .flat_map(|(vi, _)| (0..n_items).map(move |i| (vi, i)))
            .collect();
        if slots.len() > self.max_slots {
            return Err(JcrError::InvalidInstance(format!(
                "{} placement slots exceed the exact solver's cap of {}",
                slots.len(),
                self.max_slots
            )));
        }

        let mut best: Option<(f64, Solution)> = None;
        'mask: for mask in 0u32..(1 << slots.len()) {
            let mut placement = Placement::empty(inst);
            let mut used = vec![0.0; cache_nodes.len()];
            for (b, &(vi, i)) in slots.iter().enumerate() {
                if mask & (1 << b) != 0 {
                    used[vi] += inst.item_size[i];
                    if used[vi] > inst.cache_cap[cache_nodes[vi].index()] + 1e-9 {
                        continue 'mask;
                    }
                    placement.set(cache_nodes[vi], i, true);
                }
            }
            if let Some((cost, routing)) = self.best_routing(inst, &placement)? {
                if best.as_ref().is_none_or(|(bc, _)| cost < *bc - 1e-12) {
                    best = Some((cost, Solution { placement, routing }));
                }
            }
        }
        best.map(|(_, s)| s).ok_or(JcrError::Infeasible)
    }

    /// The cheapest capacity-feasible integral routing for a fixed
    /// placement, or `None` if no candidate combination fits.
    fn best_routing(
        &self,
        inst: &Instance,
        placement: &Placement,
    ) -> Result<Option<(f64, Routing)>, JcrError> {
        // Candidate paths per request: the cheapest simple paths from every
        // replica (cache holders + origin).
        let mut candidates: Vec<Vec<Path>> = Vec::with_capacity(inst.requests.len());
        for req in &inst.requests {
            let mut paths: Vec<Path> = Vec::new();
            let mut sources: Vec<_> = placement.holders(req.item).collect();
            if let Some(o) = inst.origin {
                if !sources.contains(&o) {
                    sources.push(o);
                }
            }
            for src in sources {
                for p in shortest::k_shortest_paths(
                    &inst.graph,
                    src,
                    req.node,
                    self.max_paths,
                    &inst.link_cost,
                ) {
                    if !paths.contains(&p) {
                        paths.push(p);
                    }
                }
            }
            if paths.is_empty() {
                return Ok(None); // request unservable under this placement
            }
            paths.sort_by(|a, b| {
                a.cost(&inst.link_cost)
                    .partial_cmp(&b.cost(&inst.link_cost))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            paths.truncate(self.max_paths);
            candidates.push(paths);
        }
        let combos: usize = candidates.iter().map(Vec::len).product();
        if combos > self.max_combinations {
            return Err(JcrError::InvalidInstance(format!(
                "{combos} routing combinations exceed the exact solver's cap"
            )));
        }

        // Depth-first enumeration with incremental load tracking and
        // cost-based pruning.
        let mut loads = vec![0.0; inst.graph.edge_count()];
        let mut choice = vec![0usize; candidates.len()];
        let mut best: Option<(f64, Vec<usize>)> = None;
        dfs(
            inst,
            &candidates,
            0,
            0.0,
            &mut loads,
            &mut choice,
            &mut best,
        );
        Ok(best.map(|(cost, picks)| {
            let paths: Vec<Path> = picks
                .iter()
                .zip(&candidates)
                .map(|(&k, c)| c[k].clone())
                .collect();
            (cost, Routing::from_paths(inst, paths))
        }))
    }
}

fn dfs(
    inst: &Instance,
    candidates: &[Vec<Path>],
    depth: usize,
    cost_so_far: f64,
    loads: &mut Vec<f64>,
    choice: &mut Vec<usize>,
    best: &mut Option<(f64, Vec<usize>)>,
) {
    if let Some((bc, _)) = best {
        if cost_so_far >= *bc - 1e-12 {
            return; // prune
        }
    }
    if depth == candidates.len() {
        *best = Some((cost_so_far, choice.clone()));
        return;
    }
    let rate = inst.requests[depth].rate;
    for (k, path) in candidates[depth].iter().enumerate() {
        // Capacity check.
        let fits = path
            .edges()
            .iter()
            .all(|e| loads[e.index()] + rate <= inst.link_cap[e.index()] + 1e-9);
        if !fits {
            continue;
        }
        for e in path.edges() {
            loads[e.index()] += rate;
        }
        choice[depth] = k;
        let step_cost = rate * path.cost(&inst.link_cost);
        dfs(
            inst,
            candidates,
            depth + 1,
            cost_so_far + step_cost,
            loads,
            choice,
            best,
        );
        for e in path.edges() {
            loads[e.index()] -= rate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::Alternating;
    use crate::instance::{InstanceBuilder, Request};
    use jcr_graph::DiGraph;
    use jcr_topo::Topology;

    #[test]
    fn finds_the_gadget_optimum() {
        // The Prop. 4.8 gadget: exact must find cost ε(λ + w).
        let eps = 0.01;
        let mut g = DiGraph::new();
        let vs = g.add_node();
        let v1 = g.add_node();
        let v2 = g.add_node();
        let s = g.add_node();
        let mut cost = Vec::new();
        for (u, v, c) in [(vs, v1, 1.0), (vs, v2, 1.0), (v1, s, eps), (v2, s, 1.0)] {
            g.add_edge(u, v);
            cost.push(c);
        }
        let inst = Instance::new(
            g,
            cost,
            vec![2.0; 4],
            vec![0.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0],
            vec![
                Request {
                    item: 0,
                    node: s,
                    rate: 1.0,
                },
                Request {
                    item: 1,
                    node: s,
                    rate: eps,
                },
            ],
            Some(vs),
        )
        .unwrap();
        let sol = ExactIcIr::new().solve(&inst).unwrap();
        assert!((sol.cost(&inst) - eps * 2.0).abs() < 1e-9);
        assert!(sol.placement.has(v1, 0));
        assert!(sol.placement.has(v2, 1));
    }

    #[test]
    fn heuristics_bounded_by_exact_optimum() {
        for seed in 0..3 {
            let inst = InstanceBuilder::new(Topology::generate_custom(7, 8, 2, seed).unwrap())
                .items(3)
                .cache_capacity(1.0)
                .zipf_demand(0.9, 50.0, seed)
                .link_capacity_fraction(0.3)
                .build()
                .unwrap();
            let exact = ExactIcIr {
                max_paths: 4,
                ..ExactIcIr::default()
            }
            .solve(&inst)
            .unwrap();
            let alt = Alternating {
                seed,
                ..Alternating::default()
            }
            .solve(&inst)
            .unwrap();
            // Exact is a true lower bound among capacity-feasible IC-IR
            // solutions; the alternating heuristic can only undercut by
            // violating capacities.
            let alt_cost = alt.solution.cost(&inst);
            if alt_cost + 1e-9 < exact.cost(&inst) {
                assert!(
                    alt.solution.congestion(&inst) > 1.0,
                    "seed {seed}: heuristic beat the exact optimum while feasible"
                );
            }
            assert!(exact.routing.serves_all(&inst));
            assert!(exact.congestion(&inst) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn refuses_oversized_instances() {
        let inst = InstanceBuilder::new(Topology::generate_custom(10, 13, 3, 1).unwrap())
            .items(10)
            .cache_capacity(2.0)
            .zipf_demand(0.8, 50.0, 1)
            .build()
            .unwrap();
        assert!(matches!(
            ExactIcIr::new().solve(&inst),
            Err(JcrError::InvalidInstance(_))
        ));
    }
}
