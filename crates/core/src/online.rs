//! Hourly online re-optimization (§6's evaluation protocol): each hour,
//! re-solve joint caching and routing against the *forecast* demand —
//! warm-started from the previous hour's placement — and account the
//! realized cost/congestion under the *true* demand.
//!
//! The paper runs this loop with GPR forecasts ("the network provider
//! adjusts caching and routing decisions on an hourly basis based on the
//! predicted demand"); this module packages it as a reusable driver and
//! additionally reports cache churn (how many items move per hour), the
//! operational cost a provider would watch.

use crate::alternating::Alternating;
use crate::error::JcrError;
use crate::instance::Instance;
use crate::placement::Placement;
use crate::routing::Solution;

/// Outcome of one online step.
#[derive(Clone, Debug)]
pub struct HourOutcome {
    /// Cost of the decision under the demand it was optimized for.
    pub decided_cost: f64,
    /// Cost realized under the true demand.
    pub realized_cost: f64,
    /// Congestion realized under the true demand.
    pub realized_congestion: f64,
    /// Items inserted plus evicted relative to the previous hour's
    /// placement (cache churn).
    pub placement_churn: usize,
    /// The decision itself.
    pub solution: Solution,
}

/// The hour-by-hour re-optimization driver.
#[derive(Clone, Debug)]
pub struct OnlineSimulator {
    solver: Alternating,
    /// Warm-start each hour from the previous placement (vs from empty
    /// caches).
    pub warm_start: bool,
    previous: Option<Placement>,
    hour: usize,
}

impl OnlineSimulator {
    /// Creates a driver around an [`Alternating`] configuration.
    pub fn new(solver: Alternating) -> Self {
        OnlineSimulator {
            solver,
            warm_start: true,
            previous: None,
            hour: 0,
        }
    }

    /// Number of steps executed so far.
    pub fn hour(&self) -> usize {
        self.hour
    }

    /// Executes one hour: optimize against `decision_inst` (built from the
    /// forecast demand), then evaluate against `true_rates` (aligned with
    /// `decision_inst.requests`, as produced by flooring the demand matrix
    /// — see the bench harness).
    ///
    /// # Errors
    ///
    /// Propagates solver failures; the previous placement is kept so a
    /// failed hour can be retried.
    pub fn step(
        &mut self,
        decision_inst: &Instance,
        true_rates: &[f64],
    ) -> Result<HourOutcome, JcrError> {
        let mut solver = self.solver.clone();
        solver.seed = self.solver.seed.wrapping_add(self.hour as u64);
        let initial = match (&self.previous, self.warm_start) {
            (Some(p), true) if p.is_feasible(decision_inst) => p.clone(),
            _ => Placement::empty(decision_inst),
        };
        let result = solver.solve_from(decision_inst, initial)?;
        let solution = result.solution;

        let decided_cost = solution.cost(decision_inst);
        let (realized_cost, realized_congestion) =
            solution.evaluate_under(decision_inst, true_rates);
        let placement_churn = match &self.previous {
            Some(prev) => churn(prev, &solution.placement, decision_inst),
            None => solution.placement.len(),
        };
        self.previous = Some(solution.placement.clone());
        self.hour += 1;
        Ok(HourOutcome {
            decided_cost,
            realized_cost,
            realized_congestion,
            placement_churn,
            solution,
        })
    }

    /// The placement carried into the next hour, if any step succeeded.
    pub fn current_placement(&self) -> Option<&Placement> {
        self.previous.as_ref()
    }
}

/// Symmetric-difference size between two placements.
fn churn(a: &Placement, b: &Placement, inst: &Instance) -> usize {
    let mut changes = 0;
    for v in inst.graph.nodes() {
        for i in 0..inst.num_items() {
            if a.has(v, i) != b.has(v, i) {
                changes += 1;
            }
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use jcr_topo::{Topology, TopologyKind};

    fn hourly_instance(scale: f64, seed: u64) -> Instance {
        let topo = Topology::generate(TopologyKind::Abovenet, 5).unwrap();
        let n_edges = topo.edge_nodes.len();
        // Deterministic demand matrix scaled per hour.
        let rates: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..n_edges)
                    .map(|k| scale * (1.0 + ((i * 7 + k * 3 + seed as usize) % 5) as f64))
                    .collect()
            })
            .collect();
        InstanceBuilder::new(topo)
            .items(6)
            .cache_capacity(2.0)
            .demand_matrix(rates)
            .link_capacity_fraction(0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn steps_accumulate_and_report() {
        let mut sim = OnlineSimulator::new(Alternating::new());
        for hour in 0..3 {
            let decision = hourly_instance(100.0 + 10.0 * hour as f64, hour);
            let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate * 1.1).collect();
            let outcome = sim.step(&decision, &truth).unwrap();
            assert!(outcome.decided_cost > 0.0);
            // Truth is a uniform 1.1× scaling of the decision demand.
            assert!(
                (outcome.realized_cost - 1.1 * outcome.decided_cost).abs()
                    < 1e-6 * outcome.decided_cost
            );
            assert!(outcome.solution.placement.is_feasible(&decision));
        }
        assert_eq!(sim.hour(), 3);
        assert!(sim.current_placement().is_some());
    }

    #[test]
    fn warm_start_reduces_churn_on_stable_demand() {
        // Identical demand every hour: after the first hour the placement
        // should stabilize (zero or near-zero churn) with warm starts.
        let mut sim = OnlineSimulator::new(Alternating::new());
        let decision = hourly_instance(100.0, 1);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let first = sim.step(&decision, &truth).unwrap();
        assert!(first.placement_churn > 0, "first hour fills the caches");
        let second = sim.step(&decision, &truth).unwrap();
        assert!(
            second.placement_churn <= first.placement_churn,
            "stable demand must not increase churn"
        );
        // The realized cost must not degrade from warm starting.
        assert!(second.realized_cost <= first.realized_cost + 1e-6);
    }

    #[test]
    fn cold_start_still_works() {
        let mut sim = OnlineSimulator::new(Alternating::new());
        sim.warm_start = false;
        let decision = hourly_instance(100.0, 2);
        let truth: Vec<f64> = decision.requests.iter().map(|r| r.rate).collect();
        let a = sim.step(&decision, &truth).unwrap();
        let b = sim.step(&decision, &truth).unwrap();
        assert!(a.realized_cost > 0.0 && b.realized_cost > 0.0);
    }
}
